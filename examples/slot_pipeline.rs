//! RQ2: chaining STAUB with SLOT-style compiler optimization.
//!
//! Transforms an unbounded constraint to bitvectors, then runs the SLOT
//! pass pipeline over the bounded term graph and shows what each pass
//! contributed.
//!
//! ```text
//! cargo run --release --example slot_pipeline
//! ```

use staub::core::Staub;
use staub::slot::Slot;
use staub::smtlib::Script;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately sloppy constraint with foldable and reducible parts.
    let src = "\
(set-logic QF_NIA)
(declare-fun a () Int)
(declare-fun b () Int)
(assert (= (* (+ a 0) 1) (* b 8)))
(assert (<= (* a a) (+ 100 44)))
(assert (>= (- a a) 0))
(check-sat)";
    let script = Script::parse(src)?;
    println!("Original (unbounded):\n{script}");

    let transformed = Staub::default().transform(&script)?;
    let mut bounded = transformed.script.clone();
    println!(
        "After STAUB (width {}):\n{bounded}",
        transformed.bv_width.expect("integer constraint")
    );

    let slot = Slot::standard();
    let report = slot.optimize(&mut bounded);
    println!("After SLOT ({report}):\n{bounded}");
    for (pass, rewrites) in &report.per_pass {
        println!("  {pass:20} {rewrites} rewrites");
    }

    // The optimized constraint is equisatisfiable with the bounded one.
    use staub::solver::{Solver, SolverProfile};
    let solver = Solver::new(SolverProfile::Zed);
    let before = solver.solve(&transformed.script).result;
    let after = solver.solve(&bounded).result;
    println!("\nbounded: {before} / optimized: {after}");
    assert_eq!(before.is_sat(), after.is_sat());
    Ok(())
}
