//! The client analysis of the paper's RQ3: proving loop termination by
//! reduction to SMT, with constraints optionally routed through STAUB.
//!
//! ```text
//! cargo run --release --example termination_proving
//! ```

use staub::core::StaubConfig;
use staub::termination::{Program, TerminationProver, Verdict};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let programs = [
        ("countdown", "vars x; while (x > 0) { x = x - 1; }"),
        (
            "coupled",
            "vars x, y; while (x + y > 0) { x = x - 1; y = y - 2; }",
        ),
        (
            "bounded-window",
            "vars i; while (i > 0 && i < 10) { i = i + 1; }",
        ),
        (
            "nonlinear-double",
            "vars x, y; while (x < 64 && x > 1 && y == 2) { x = x * y; }",
        ),
        ("diverging", "vars x; while (x > 0) { x = x + 1; }"),
    ];

    let baseline = TerminationProver::default();
    let with_staub = TerminationProver::with_staub(StaubConfig {
        timeout: Duration::from_millis(800),
        steps: 1_000_000,
        ..Default::default()
    });

    for (name, src) in programs {
        let program = Program::parse(name, src)?;
        println!("== {name} ==\n{src}");
        let outcome = baseline.prove(&program);
        match outcome.verdict {
            Verdict::Terminating => match &outcome.ranking {
                Some(f) => println!("  TERMINATING — ranking function {f}"),
                None => println!("  TERMINATING — proven by bounded unrolling"),
            },
            Verdict::Unknown => println!("  UNKNOWN — no proof found"),
        }
        println!(
            "  {} constraints solved in {:?} (baseline backend)",
            outcome.constraints.len(),
            outcome.total_solve_time
        );
        let staub_outcome = with_staub.prove(&program);
        assert_eq!(outcome.verdict, staub_outcome.verdict, "backends agree");
        println!(
            "  {} constraints solved in {:?} (STAUB backend)\n",
            staub_outcome.constraints.len(),
            staub_outcome.total_solve_time
        );
    }
    Ok(())
}
