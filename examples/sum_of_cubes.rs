//! The paper's motivating example (§2): `x³ + y³ + z³ = 855`.
//!
//! Reproduces the comparison of Fig. 1: the unbounded original versus the
//! bounded translation versus the original with bounds merely imposed —
//! showing that theory arbitrage, not bound imposition, is what helps.
//!
//! ```text
//! cargo run --release --example sum_of_cubes
//! ```

use staub::benchgen::sum_of_cubes;
use staub::core::{Staub, StaubConfig, WidthChoice};
use staub::numeric::BigInt;
use staub::solver::{Solver, SolverProfile};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = sum_of_cubes(855);
    println!("Fig. 1a (unbounded original):\n{original}");

    let staub = Staub::new(StaubConfig {
        width_choice: WidthChoice::Inferred,
        timeout: Duration::from_secs(8),
        steps: u64::MAX,
        ..Default::default()
    });
    let transformed = staub.transform(&original)?;
    println!(
        "Fig. 1b (bounded, width {}):\n{}",
        transformed.bv_width.expect("integer constraint"),
        transformed.script
    );

    // Fig. 1c: bounds imposed as integer constraints.
    let mut imposed = original.clone();
    for name in ["x", "y", "z"] {
        let sym = imposed.store().symbol(name).expect("declared");
        let s = imposed.store_mut();
        let v = s.var(sym);
        let lo = s.int(BigInt::from(-2048));
        let hi = s.int(BigInt::from(2047));
        let ge = s.ge(v, lo)?;
        let le = s.le(v, hi)?;
        imposed.assert(ge);
        imposed.assert(le);
    }

    let solver = Solver::new(SolverProfile::Zed)
        .with_timeout(Duration::from_secs(8))
        .with_steps(u64::MAX);
    for (label, script) in [
        ("unbounded original ", &original),
        ("bounded translation", &transformed.script),
        ("bounds imposed     ", &imposed),
    ] {
        let start = Instant::now();
        let outcome = solver.solve(script);
        println!("{label}: {} in {:?}", outcome.result, start.elapsed());
    }

    // Verify the bounded model against the original, as STAUB does.
    let outcome = solver.solve(&transformed.script);
    if let staub::solver::SatResult::Sat(bounded_model) = outcome.result {
        let lifted = staub::core::verify::lift_and_verify(&original, &transformed, &bounded_model)
            .expect("guards force a genuine solution");
        println!("\nverified model of the original constraint:");
        println!("{}", lifted.to_smtlib(original.store()));
    }
    Ok(())
}
