//! Quickstart: run the STAUB pipeline on an SMT-LIB constraint.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use staub::core::{Session, Staub, StaubOutcome, Via};
use staub::smtlib::Script;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "\
(set-logic QF_NIA)
(declare-fun x () Int)
(declare-fun y () Int)
(assert (= (+ (* x x) (* y y)) 6724))
(assert (> x 0))
(assert (> y x))
(check-sat)";
    println!("Input constraint:\n{src}\n");

    let script = Script::parse(src)?;
    let staub = Staub::default();

    // Inspect the inferred bounds and the transformed constraint.
    let bounds = staub.infer(&script);
    println!(
        "Inferred bounds: assumption width x = {}, root width [S] = {}",
        bounds.assumption_width, bounds.root_width
    );
    let transformed = staub.transform(&script)?;
    println!(
        "Translated to {}-bit bitvectors with {} overflow guards:\n{}",
        transformed.bv_width.expect("integer constraint"),
        transformed.guard_count,
        transformed.script
    );

    // Run the full pipeline (bounded path + fallback) in a session —
    // repeated or widened checks would warm-start from this one.
    let mut session = Session::default();
    match session.run(&script)? {
        StaubOutcome::Sat {
            model,
            via,
            provenance,
        } => {
            println!(
                "sat (via the {} constraint, lane {})",
                if via == Via::Bounded {
                    "bounded"
                } else {
                    "original"
                },
                provenance.label
            );
            println!("model:\n{}", model.to_smtlib(script.store()));
        }
        StaubOutcome::Unsat { .. } => println!("unsat"),
        StaubOutcome::Unknown { .. } => println!("unknown"),
    }
    Ok(())
}
