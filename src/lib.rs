//! STAUB — SMT Theory Arbitrage in Rust.
//!
//! Umbrella crate re-exporting the whole workspace. Start with
//! [`staub_core::Session`] (re-exported as [`core::Session`]) — the
//! incremental end-to-end pipeline entrypoint — or see the crate-level
//! docs of each member:
//!
//! * [`numeric`] — exact arithmetic (bigints, rationals, bitvectors, floats).
//! * [`smtlib`] — SMT-LIB v2 parsing, terms, and printing.
//! * [`solver`] — the from-scratch SMT solver (SAT core, bit-blasting,
//!   simplex, interval propagation).
//! * [`core`] — theory arbitrage: bound inference, transformation,
//!   verification, portfolio.
//! * [`lint`] — the certifying checker re-validating pipeline invariants.
//! * [`slot`] — compiler-optimization-style simplification of bounded
//!   constraints.
//! * [`termination`] — the termination-proving client analysis.
//! * [`benchgen`] — seeded benchmark-suite generators.
//! * [`service`] — `staub serve`: the solver-as-a-service daemon with the
//!   canonical-constraint answer cache, plus client/loadgen drivers.
//!
//! # Quickstart
//!
//! ```
//! use staub::core::{Session, StaubOutcome};
//! use staub::smtlib::Script;
//!
//! let src = "\
//! (declare-fun x () Int)
//! (assert (= (* x x) 49))
//! (check-sat)";
//! let script = Script::parse(src)?;
//! let mut session = Session::default();
//! let outcome = session.run(&script)?;
//! assert!(matches!(outcome, StaubOutcome::Sat { .. }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Repeated or widened checks through the same [`core::Session`]
//! warm-start from earlier ones; see its docs for the incremental
//! `push`/`pop`/`assert_text`/`check` surface.

#![forbid(unsafe_code)]

pub use staub_benchgen as benchgen;
pub use staub_core as core;
pub use staub_lint as lint;
pub use staub_numeric as numeric;
pub use staub_service as service;
pub use staub_slot as slot;
pub use staub_smtlib as smtlib;
pub use staub_solver as solver;
pub use staub_termination as termination;
