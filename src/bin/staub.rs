//! The STAUB command-line tool.
//!
//! Reads an SMT-LIB script over QF_LIA / QF_NIA / QF_LRA / QF_NRA and
//! either solves it with theory arbitrage (default) or emits the bounded
//! translation for use with any other SMT-LIB solver (`--emit`, the paper's
//! output flag).
//!
//! ```text
//! staub [OPTIONS] <file.smt2>
//! staub lint [--width N] <file.smt2>
//! staub stats [--width N] [--profile P] [--timeout-ms N] <file.smt2>
//! staub batch [BATCH OPTIONS] <dir|file.smt2>...
//! staub serve [SERVE OPTIONS]
//! staub client [--addr A] [--health | --shutdown | <file.smt2>...]
//! staub loadgen [LOADGEN OPTIONS] <dir|file.smt2>...
//!
//! OPTIONS:
//!   --emit             print the bounded SMT-LIB constraint and exit
//!   --width <N>        fixed bitvector width instead of inference
//!   --profile <P>      solver profile: zed (default) or cove
//!   --timeout-ms <N>   per-solver-call wall-clock budget (default 1000)
//!   --refine <N>       iterative width refinement rounds (default 0)
//!   --reduce           width-reduce an already-bounded QF_BV input (§6.4)
//!   --race             run the two-core portfolio race (default: sequential)
//!   --stats            print inference and timing details
//! ```
//!
//! The `lint` subcommand runs the `staub-lint` certifying checker: it
//! re-sorts the parsed input and, when the input is transformable,
//! re-certifies the bounded translation (boundedness, guard domination,
//! correspondence). Exits nonzero iff error-severity findings exist.
//!
//! The `stats` subcommand runs the pipeline once with the metrics
//! registry enabled and prints the verdict followed by per-stage
//! wall-clock spans and solver-internal counters.
//!
//! The `batch` subcommand drives every given constraint through the
//! multi-lane portfolio scheduler (baseline + STAUB width-escalation
//! lanes racing on a work-stealing pool) and emits one JSON report line
//! per constraint; see `staub batch --help` for the lane options. Batch
//! metrics are on by default (`--no-stats` disables them); with `--out
//! FILE` the aggregate snapshot is written to `FILE.stats.json`.
//!
//! The `serve` subcommand runs the solver as a long-lived daemon speaking
//! newline-delimited JSON over TCP (and optionally a Unix socket), with a
//! canonical-constraint answer cache in front of the scheduler; `client`
//! and `loadgen` are the matching drivers. See `staub serve --help`.

use std::process::ExitCode;
use std::time::Duration;

use staub::core::{Session, Staub, StaubConfig, StaubOutcome, Via, WidthChoice};
use staub::smtlib::Script;
use staub::solver::SolverProfile;

struct Options {
    file: String,
    emit: bool,
    width: WidthChoice,
    profile: SolverProfile,
    timeout: Duration,
    race: bool,
    stats: bool,
    refine: u32,
    reduce: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut file = None;
    let mut options = Options {
        file: String::new(),
        emit: false,
        width: WidthChoice::Inferred,
        profile: SolverProfile::Zed,
        timeout: Duration::from_millis(1000),
        race: false,
        stats: false,
        refine: 0,
        reduce: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit" => options.emit = true,
            "--reduce" => options.reduce = true,
            "--race" => options.race = true,
            "--stats" => options.stats = true,
            "--width" => {
                let w = args
                    .next()
                    .ok_or("--width needs a value")?
                    .parse::<u32>()
                    .map_err(|e| format!("invalid width: {e}"))?;
                options.width = WidthChoice::Fixed(w);
            }
            "--profile" => match args.next().as_deref() {
                Some("zed") => options.profile = SolverProfile::Zed,
                Some("cove") => options.profile = SolverProfile::Cove,
                other => return Err(format!("unknown profile {other:?}")),
            },
            "--refine" => {
                options.refine = args
                    .next()
                    .ok_or("--refine needs a value")?
                    .parse::<u32>()
                    .map_err(|e| format!("invalid refinement rounds: {e}"))?;
            }
            "--timeout-ms" => {
                let ms = args
                    .next()
                    .ok_or("--timeout-ms needs a value")?
                    .parse::<u64>()
                    .map_err(|e| format!("invalid timeout: {e}"))?;
                options.timeout = Duration::from_millis(ms);
            }
            "--help" | "-h" => return Err("help".to_string()),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    options.file = file.ok_or("missing input file")?;
    Ok(options)
}

const USAGE: &str = "usage: staub [--emit] [--reduce] [--width N] \
[--profile zed|cove] [--timeout-ms N] [--refine N] [--race] [--stats] <file.smt2>
       staub lint [--width N] <file.smt2>
       staub stats [--width N] [--profile zed|cove] [--timeout-ms N] <file.smt2>
       staub batch [--threads N] [--timeout-ms N] [--steps N] [--width N] \
[--profile zed|cove|both] [--escalate M,M,...] [--refine] [--refine-depth N] \
[--no-baseline] [--no-cancel] [--retry] [--no-stats] [--out FILE] \
<dir|file.smt2>...
       staub serve [--addr ENDPOINT] [--unix PATH] [--persist DIR] \
[SERVE OPTIONS]
       staub route --backend ENDPOINT [--backend ENDPOINT ...] [ROUTE OPTIONS]
       staub client [--addr ENDPOINT] [--health | --shutdown | <file.smt2>...]
       staub loadgen [--addr ENDPOINT] [--concurrency N] [--repeat N] \
[--no-cache] [--out FILE] <dir|file.smt2>...";

const STATS_USAGE: &str = "usage: staub stats [--width N] [--profile zed|cove] \
[--timeout-ms N] <file.smt2>

Runs the full arbitrage pipeline once with the metrics registry enabled and
prints the verdict followed by per-stage wall-clock spans (parse, absint,
transform, lint, solve, verify) and solver-internal counters (SAT
decisions/conflicts/propagations/restarts, bit-blasted clauses, simplex
pivots, branch-and-bound nodes, ICP contractions, FP local-search moves).";

/// `staub stats`: one observed pipeline run, then the metrics snapshot.
fn stats_main(args: Vec<String>) -> ExitCode {
    use staub::core::Metrics;
    use std::sync::Arc;

    let mut width = WidthChoice::Inferred;
    let mut profile = SolverProfile::Zed;
    let mut timeout = Duration::from_millis(1000);
    let mut file = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--width" => {
                let Some(w) = iter.next().and_then(|v| v.parse::<u32>().ok()) else {
                    eprintln!("error: --width needs a numeric value\n{STATS_USAGE}");
                    return ExitCode::from(2);
                };
                width = WidthChoice::Fixed(w);
            }
            "--profile" => match iter.next().as_deref() {
                Some("zed") => profile = SolverProfile::Zed,
                Some("cove") => profile = SolverProfile::Cove,
                other => {
                    eprintln!("error: unknown profile {other:?}\n{STATS_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--timeout-ms" => {
                let Some(ms) = iter.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("error: --timeout-ms needs a numeric value\n{STATS_USAGE}");
                    return ExitCode::from(2);
                };
                timeout = Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!("{STATS_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument `{other}`\n{STATS_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: missing input file\n{STATS_USAGE}");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let metrics = Arc::new(Metrics::new());
    let script = match metrics.time("stage.parse", || Script::parse(&source)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut session = Session::new(StaubConfig {
        width_choice: width,
        profile,
        timeout,
        ..Default::default()
    })
    .with_metrics(Arc::clone(&metrics));
    match session.run(&script) {
        Ok(outcome) => {
            println!("{}", outcome.verdict_name());
            let p = outcome.provenance();
            println!(
                "; lane {} (x{}) in {} steps",
                p.label, p.multiplier, p.steps
            );
            if outcome.verdict_name() == "unknown" {
                // Distinguish a recoverable unknown (more budget could
                // decide it) from a structural one, using the scheduler's
                // own lane-eligibility test so both surfaces agree: a
                // certificate wider than the lane limit is not eligible.
                let limits = staub::core::correspond::SortLimits::default();
                let cert = staub::core::certify(&script);
                let reason = if staub::core::difference_logic(&script).is_some() {
                    "budget exhausted (difference-logic fragment; retry with more steps)"
                        .to_string()
                } else {
                    match (
                        staub::core::complete_width(&script, &limits),
                        cert.certified_width,
                    ) {
                        (Some(_), _) => {
                            "budget exhausted (certified lia fragment; retry with more steps)"
                                .to_string()
                        }
                        (None, Some(w)) => format!(
                            "linear but not difference logic; certified width {w} exceeds \
                             the {}-bit lane limit",
                            limits.max_bv_width
                        ),
                        (None, None) => {
                            format!("ineligible fragment ({})", cert.fragment.name())
                        }
                    }
                };
                println!("; unknown reason: {reason}");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    print!("{}", metrics.snapshot());
    ExitCode::SUCCESS
}

const BATCH_USAGE: &str = "usage: staub batch [BATCH OPTIONS] <dir|file.smt2>...

Runs every constraint through the multi-lane portfolio scheduler and prints
one JSON report line per constraint (winner lane, per-lane timings and
verdicts, cancellation latency).

BATCH OPTIONS:
  --threads <N>       worker threads (default: one per core)
  --timeout-ms <N>    per-lane wall-clock budget (default 1000)
  --steps <N>         per-lane deterministic step budget (default 4000000)
  --width <N>         fixed base width instead of inference
  --profile <P>       zed (default), cove, or both (doubles the lanes)
  --escalate <M,...>  STAUB width-escalation multipliers (default 2,4)
  --refine            counterexample-guided per-variable refinement lane
                      instead of the blind escalation fan-out
  --refine-depth <N>  maximum refinement rungs after the base attempt
                      (default 5; implies --refine)
  --no-baseline       skip the baseline lane (bounded lanes only)
  --no-cancel         let losing lanes run to completion (full timings)
  --retry             one bounded retry for lanes that exhaust their steps
  --no-stats          skip the metrics registry (per-record stats remain)
  --out <FILE>        write the JSONL to FILE instead of stdout
                      (with stats on, the aggregate metrics snapshot goes
                      to FILE.stats.json)";

/// `staub batch`: the multi-lane scheduler over a corpus of files.
fn batch_main(args: Vec<String>) -> ExitCode {
    use staub::core::{run_batch_with, BatchConfig, BatchItem, Metrics, RunOptions};
    use std::sync::Arc;

    let mut config = BatchConfig::default();
    let mut out_path = None;
    let mut with_stats = true;
    let mut inputs = Vec::new();
    let mut iter = args.into_iter();
    macro_rules! value_of {
        ($flag:literal, $ty:ty) => {
            match iter.next().and_then(|v| v.parse::<$ty>().ok()) {
                Some(v) => v,
                None => {
                    eprintln!("error: {} needs a numeric value\n{BATCH_USAGE}", $flag);
                    return ExitCode::from(2);
                }
            }
        };
    }
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => config.threads = value_of!("--threads", usize),
            "--timeout-ms" => {
                config.timeout = Duration::from_millis(value_of!("--timeout-ms", u64));
            }
            "--steps" => config.steps = value_of!("--steps", u64),
            "--width" => config.width_choice = WidthChoice::Fixed(value_of!("--width", u32)),
            "--refine" => config.refine = true,
            "--refine-depth" => {
                config.refine = true;
                config.refine_depth = value_of!("--refine-depth", u32);
            }
            "--profile" => match iter.next().as_deref() {
                Some("zed") => config.profiles = vec![SolverProfile::Zed],
                Some("cove") => config.profiles = vec![SolverProfile::Cove],
                Some("both") => config.profiles = vec![SolverProfile::Zed, SolverProfile::Cove],
                other => {
                    eprintln!("error: unknown profile {other:?}\n{BATCH_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--escalate" => {
                let Some(spec) = iter.next() else {
                    eprintln!("error: --escalate needs a comma-separated list\n{BATCH_USAGE}");
                    return ExitCode::from(2);
                };
                let mut escalations = Vec::new();
                for part in spec.split(',').filter(|p| !p.is_empty()) {
                    match part.parse::<u32>() {
                        Ok(m) => escalations.push(m),
                        Err(e) => {
                            eprintln!("error: bad escalation `{part}`: {e}\n{BATCH_USAGE}");
                            return ExitCode::from(2);
                        }
                    }
                }
                config.escalations = escalations;
            }
            "--no-baseline" => config.include_baseline = false,
            "--no-cancel" => config.cancel_losers = false,
            "--retry" => config.retry = true,
            "--no-stats" => with_stats = false,
            "--out" => {
                let Some(path) = iter.next() else {
                    eprintln!("error: --out needs a path\n{BATCH_USAGE}");
                    return ExitCode::from(2);
                };
                out_path = Some(path);
            }
            "--help" | "-h" => {
                println!("{BATCH_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => inputs.push(other.to_string()),
            other => {
                eprintln!("error: unexpected argument `{other}`\n{BATCH_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if inputs.is_empty() {
        eprintln!("error: no input files or directories\n{BATCH_USAGE}");
        return ExitCode::from(2);
    }

    let files = match collect_smt2(&inputs) {
        Ok(files) => files,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut items = Vec::new();
    for file in &files {
        let name = file.display().to_string();
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {name}: {e}");
                return ExitCode::from(2);
            }
        };
        match Script::parse(&source) {
            Ok(script) => items.push(BatchItem { name, script }),
            Err(e) => {
                eprintln!("error: {name}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let metrics = Arc::new(if with_stats {
        Metrics::new()
    } else {
        Metrics::disabled()
    });
    let options = RunOptions {
        metrics: Some(Arc::clone(&metrics)),
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let reports = run_batch_with(&items, &config, &options);
    let wall = start.elapsed();

    let mut jsonl = String::new();
    let (mut sat, mut unsat, mut cancelled) = (0u32, 0u32, 0u32);
    // Unknown is not one population: a budget unknown might resolve with
    // more steps, a linear-non-dl unknown needs a wider certified lane,
    // and an ineligible-fragment unknown never decides (no complete lane
    // of any kind exists for it). Report the three buckets separately.
    let (mut unknown_budget, mut unknown_linear, mut unknown_fragment) = (0u32, 0u32, 0u32);
    for report in &reports {
        jsonl.push_str(&report.to_jsonl());
        jsonl.push('\n');
        match report.verdict.name() {
            "sat" => sat += 1,
            "unsat" => unsat += 1,
            _ => match report.unknown_reason {
                Some("ineligible-fragment") => unknown_fragment += 1,
                Some("linear-non-dl") => unknown_linear += 1,
                _ => unknown_budget += 1,
            },
        }
        cancelled += report
            .lanes
            .iter()
            .filter(|l| l.cancel_latency.is_some())
            .count() as u32;
    }
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if with_stats {
            let stats_path = format!("{path}.stats.json");
            if let Err(e) = std::fs::write(&stats_path, metrics.snapshot().to_json()) {
                eprintln!("error: cannot write {stats_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print!("{jsonl}");
        if with_stats {
            eprintln!("; stats: {}", metrics.snapshot().to_json());
        }
    }
    eprintln!(
        "; {} constraints in {:.1?}: {sat} sat, {unsat} unsat, \
         {unknown_budget} unknown (budget), \
         {unknown_linear} unknown (linear, no complete lane), \
         {unknown_fragment} unknown (ineligible fragment); \
         {cancelled} lanes cancelled",
        reports.len(),
        wall,
    );
    ExitCode::SUCCESS
}

/// Expands a mix of files and directories into a sorted `.smt2` file
/// list (directories are scanned one level deep, sorted for determinism).
fn collect_smt2(inputs: &[String]) -> Result<Vec<std::path::PathBuf>, String> {
    let mut files = Vec::new();
    for input in inputs {
        let path = std::path::Path::new(input);
        if path.is_dir() {
            let entries = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read directory {input}: {e}"))?;
            let mut found = Vec::new();
            for entry in entries.flatten() {
                let p = entry.path();
                if p.extension().is_some_and(|e| e == "smt2") {
                    found.push(p);
                }
            }
            found.sort();
            files.extend(found);
        } else {
            files.push(path.to_path_buf());
        }
    }
    if files.is_empty() {
        return Err(format!("no .smt2 files found under {inputs:?}"));
    }
    Ok(files)
}

/// Reads a corpus of (name, source) pairs for the service drivers.
fn read_corpus(inputs: &[String]) -> Result<Vec<(String, String)>, String> {
    let files = collect_smt2(inputs)?;
    let mut corpus = Vec::with_capacity(files.len());
    for file in files {
        let name = file.display().to_string();
        let source =
            std::fs::read_to_string(&file).map_err(|e| format!("cannot read {name}: {e}"))?;
        corpus.push((name, source));
    }
    Ok(corpus)
}

const SERVE_USAGE: &str = "usage: staub serve [SERVE OPTIONS]

Runs the solver as a long-lived daemon. Requests are newline-delimited
JSON ({\"op\":\"solve\",\"constraint\":\"...\"}); see DESIGN.md for the full
protocol grammar. A canonical-constraint answer cache in front of the
scheduler answers repeated (including alpha-renamed and commutatively
reordered) constraints without spawning lanes; with --persist the cache
survives restarts. On Linux connections are served by a nonblocking
epoll reactor with a fixed worker pool, so idle connections cost no
threads. SIGINT drains gracefully: in-flight requests finish, then the
process exits.

SERVE OPTIONS:
  --addr <ENDPOINT>     bind endpoint: HOST:PORT, tcp:HOST:PORT
                        (default 127.0.0.1:7227; port 0 picks an ephemeral
                        port, printed on stdout)
  --unix <PATH>         additionally listen on a Unix socket (Unix only)
  --persist <DIR>       persist the answer cache: snapshot + append-only
                        log in DIR, replayed on the next boot
  --snapshot-every <N>  compact the log into the snapshot every N
                        appended records (default 8192)
  --fsync               fsync the log after every append (durability over
                        throughput; default is flush-only)
  --workers <N>         reactor worker threads (default 4)
  --threaded            force thread-per-connection even where the epoll
                        reactor is available
  --node-name <NAME>    this node's name in v3 route hop lists
                        (default serve:<bound-address>)
  --threads <N>         scheduler worker threads per request (default: cores)
  --timeout-ms <N>      per-lane wall-clock ceiling (default 1000); clients
                        may request less, never more
  --steps <N>           per-lane step-budget ceiling (default 4000000)
  --no-baseline         skip the baseline lane (bounded lanes only)
  --width <N>           fixed base width instead of inference
  --profile <P>         zed (default), cove, or both
  --no-cache            disable the answer cache
  --cache-capacity <N>  answer-cache entries (default 4096)
  --cache-shards <N>    answer-cache shards (default 8)
  --max-inflight <N>    concurrent solves (default 4)
  --max-waiting <N>     queued solves before `overloaded` (default 64)
  --max-line-bytes <N>  request-line size cap (default 1048576)";

/// `staub serve`: bind, print the address, drain on SIGINT.
fn serve_main(args: Vec<String>) -> ExitCode {
    use staub::service::{signal, CacheConfig, Endpoint, PersistConfig, Server, ServerConfig};

    let mut config = ServerConfig::new().tcp(Endpoint::Tcp("127.0.0.1:7227".to_string()));
    let mut cache = Some(CacheConfig::default());
    let mut persist: Option<PersistConfig> = None;
    let mut iter = args.into_iter();
    macro_rules! value_of {
        ($flag:literal, $ty:ty) => {
            match iter.next().and_then(|v| v.parse::<$ty>().ok()) {
                Some(v) => v,
                None => {
                    eprintln!("error: {} needs a numeric value\n{SERVE_USAGE}", $flag);
                    return ExitCode::from(2);
                }
            }
        };
    }
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next().as_deref().map(Endpoint::parse) {
                Some(Ok(endpoint)) => config.tcp = endpoint,
                Some(Err(e)) => {
                    eprintln!("error: {e}\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --addr needs an endpoint\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--unix" => match iter.next() {
                Some(path) => config.unix = Some(path.into()),
                None => {
                    eprintln!("error: --unix needs a path\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--persist" => match iter.next() {
                Some(dir) => match &mut persist {
                    Some(p) => p.dir = dir.into(),
                    None => persist = Some(PersistConfig::in_dir(dir)),
                },
                None => {
                    eprintln!("error: --persist needs a directory\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--snapshot-every" => {
                let every = value_of!("--snapshot-every", u64);
                persist
                    .get_or_insert_with(|| PersistConfig::in_dir("staub-cache"))
                    .snapshot_every = every;
            }
            "--fsync" => {
                persist
                    .get_or_insert_with(|| PersistConfig::in_dir("staub-cache"))
                    .fsync = true;
            }
            "--workers" => config.workers = value_of!("--workers", usize),
            "--threaded" => config.threaded = true,
            "--node-name" => match iter.next() {
                Some(name) => config.node_name = Some(name),
                None => {
                    eprintln!("error: --node-name needs a value\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--threads" => config.batch.threads = value_of!("--threads", usize),
            "--timeout-ms" => {
                config.batch.timeout = Duration::from_millis(value_of!("--timeout-ms", u64));
            }
            "--steps" => config.batch.steps = value_of!("--steps", u64),
            "--no-baseline" => config.batch.include_baseline = false,
            "--width" => {
                config.batch.width_choice = WidthChoice::Fixed(value_of!("--width", u32));
            }
            "--profile" => match iter.next().as_deref() {
                Some("zed") => config.batch.profiles = vec![SolverProfile::Zed],
                Some("cove") => config.batch.profiles = vec![SolverProfile::Cove],
                Some("both") => {
                    config.batch.profiles = vec![SolverProfile::Zed, SolverProfile::Cove];
                }
                other => {
                    eprintln!("error: unknown profile {other:?}\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => cache = None,
            "--cache-capacity" => {
                let capacity = value_of!("--cache-capacity", usize);
                cache.get_or_insert_with(CacheConfig::default).capacity = capacity;
            }
            "--cache-shards" => {
                let shards = value_of!("--cache-shards", usize);
                cache.get_or_insert_with(CacheConfig::default).shards = shards;
            }
            "--max-inflight" => config.max_inflight = value_of!("--max-inflight", usize),
            "--max-waiting" => config.max_waiting = value_of!("--max-waiting", usize),
            "--max-line-bytes" => config.max_line_bytes = value_of!("--max-line-bytes", usize),
            "--help" | "-h" => {
                println!("{SERVE_USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unexpected argument `{other}`\n{SERVE_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    config.cache = cache;
    config.persist = persist;

    signal::install_handlers();
    let server = match Server::launch(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The scripted wait-for-boot handshake: CI and tools watch stdout for
    // this exact prefix before firing requests.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let summary = server.join();
    eprintln!(
        "; drained after {:.1?}: {} connections, {} requests",
        summary.uptime, summary.connections, summary.requests
    );
    ExitCode::SUCCESS
}

const CLIENT_USAGE: &str = "usage: staub client [--addr HOST:PORT] \
[--timeout-ms N] [--steps N] [--no-cache] [--health | --shutdown | <file.smt2>...]

One-shot driver for a running `staub serve`. With --health, prints the
server's health snapshot (version, uptime, cache and scheduler counters).
With --shutdown, asks the server to drain. Otherwise solves each given
file and prints one response line per file. Exits nonzero if any reply
is an error or the transport fails.";

/// `staub client`: one-shot requests against a running server.
fn client_main(args: Vec<String>) -> ExitCode {
    use staub::service::{
        health_request, shutdown_request, solve_request, Connection, Endpoint, EndpointStream,
    };

    let mut addr = "127.0.0.1:7227".to_string();
    let mut health = false;
    let mut shutdown = false;
    let mut no_cache = false;
    let mut timeout_ms = None;
    let mut steps = None;
    let mut files = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("error: --addr needs a HOST:PORT value\n{CLIENT_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--health" => health = true,
            "--shutdown" => shutdown = true,
            "--no-cache" => no_cache = true,
            "--timeout-ms" => timeout_ms = iter.next().and_then(|v| v.parse::<u64>().ok()),
            "--steps" => steps = iter.next().and_then(|v| v.parse::<u64>().ok()),
            "--help" | "-h" => {
                println!("{CLIENT_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => {
                eprintln!("error: unexpected argument `{other}`\n{CLIENT_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !health && !shutdown && files.is_empty() {
        eprintln!("error: nothing to do (want --health, --shutdown, or files)\n{CLIENT_USAGE}");
        return ExitCode::from(2);
    }

    let endpoint = match Endpoint::parse(&addr) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}\n{CLIENT_USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut conn = match Connection::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {endpoint}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Returns `true` when the reply indicates failure.
    fn run(conn: &mut Connection<EndpointStream>, request: &str) -> bool {
        match conn.roundtrip(request) {
            Ok(reply) => {
                println!("{reply}");
                reply.contains("\"status\":\"error\"")
                    || reply.contains("\"status\":\"overloaded\"")
            }
            Err(e) => {
                eprintln!("error: {e}");
                true
            }
        }
    }
    let mut failed = false;
    if health {
        failed |= run(&mut conn, &health_request());
    }
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(source) => {
                failed |= run(
                    &mut conn,
                    &solve_request(file, &source, timeout_ms, steps, no_cache),
                );
            }
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                failed = true;
            }
        }
    }
    if shutdown {
        failed |= run(&mut conn, &shutdown_request());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const LOADGEN_USAGE: &str = "usage: staub loadgen [--addr HOST:PORT] \
[--concurrency N] [--repeat N] [--timeout-ms N] [--steps N] [--no-cache] \
[--out FILE] <dir|file.smt2>...

Replays a corpus of constraints against a running `staub serve` at the
requested concurrency, audits every response (well-formedness plus exact
re-evaluation of returned models), writes one JSONL record per request,
and prints a throughput summary. Exits nonzero if any response was
malformed, any model failed the audit, or the transport misbehaved.";

/// `staub loadgen`: corpus replay + response audit against a server.
fn loadgen_main(args: Vec<String>) -> ExitCode {
    use staub::service::{run_loadgen, Endpoint, LoadgenConfig};

    let mut config = LoadgenConfig {
        endpoint: Endpoint::Tcp("127.0.0.1:7227".to_string()),
        ..LoadgenConfig::default()
    };
    let mut out_path = None;
    let mut inputs = Vec::new();
    let mut iter = args.into_iter();
    macro_rules! value_of {
        ($flag:literal, $ty:ty) => {
            match iter.next().and_then(|v| v.parse::<$ty>().ok()) {
                Some(v) => v,
                None => {
                    eprintln!("error: {} needs a numeric value\n{LOADGEN_USAGE}", $flag);
                    return ExitCode::from(2);
                }
            }
        };
    }
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next().as_deref().map(Endpoint::parse) {
                Some(Ok(endpoint)) => config.endpoint = endpoint,
                Some(Err(e)) => {
                    eprintln!("error: {e}\n{LOADGEN_USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --addr needs an endpoint\n{LOADGEN_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--concurrency" => config.concurrency = value_of!("--concurrency", usize),
            "--repeat" => config.repeat = value_of!("--repeat", usize),
            "--timeout-ms" => config.timeout_ms = Some(value_of!("--timeout-ms", u64)),
            "--steps" => config.steps = Some(value_of!("--steps", u64)),
            "--no-cache" => config.no_cache = true,
            "--out" => match iter.next() {
                Some(path) => out_path = Some(path),
                None => {
                    eprintln!("error: --out needs a path\n{LOADGEN_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{LOADGEN_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => inputs.push(other.to_string()),
            other => {
                eprintln!("error: unexpected argument `{other}`\n{LOADGEN_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if inputs.is_empty() {
        eprintln!("error: no input files or directories\n{LOADGEN_USAGE}");
        return ExitCode::from(2);
    }
    let corpus = match read_corpus(&inputs) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    let outcome = match run_loadgen(&corpus, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: loadgen failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut jsonl = String::new();
    for record in &outcome.records {
        jsonl.push_str(&record.to_jsonl());
        jsonl.push('\n');
    }
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &jsonl) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{jsonl}"),
    }
    eprintln!(
        "; {} requests in {:.1?}: {:.1} req/s, p50 {:.1?}, p95 {:.1?}; \
         {} hit / {} miss / {} uncached; {} transport error(s)",
        outcome.records.len(),
        outcome.wall,
        outcome.rps(),
        outcome.latency_percentile(50.0),
        outcome.latency_percentile(95.0),
        outcome.cache_count("hit"),
        outcome.cache_count("miss"),
        outcome.cache_count("off"),
        outcome.transport_errors,
    );
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        let bad_form = outcome.records.iter().filter(|r| !r.well_formed).count();
        let unsound = outcome.records.iter().filter(|r| !r.sound).count();
        eprintln!("; FAILED: {bad_form} malformed, {unsound} unsound replies");
        ExitCode::FAILURE
    }
}

const ROUTE_USAGE: &str = "usage: staub route --backend ENDPOINT \
[--backend ENDPOINT ...] [ROUTE OPTIONS]

Runs a front node that shards solve requests across backend `staub serve`
processes by consistent-hashing the canonical constraint fingerprint, so
every repeat of a constraint (under any variable names) lands on the same
backend and its warm answer cache. Failed backends are retried after a
cooldown; requests fail over to the next backend on the ring. Session ops
are refused (sessions are connection-stateful; open them against a
backend directly).

ROUTE OPTIONS:
  --listen <ENDPOINT>   bind endpoint (default 127.0.0.1:7337; port 0
                        picks an ephemeral port, printed on stdout)
  --backend <ENDPOINT>  a backend `staub serve` endpoint (repeatable;
                        at least one required)
  --vnodes <N>          virtual ring points per backend (default 64)
  --node-name <NAME>    this node's name in v3 route hop lists
                        (default route:<bound-address>)
  --workers <N>         router worker threads (default 4)
  --max-line-bytes <N>  request-line size cap (default 1048576)";

/// `staub route`: the consistent-hash sharding front node.
fn route_main(args: Vec<String>) -> ExitCode {
    use staub::service::{signal, Endpoint, RouteConfig, Router};

    let mut config = RouteConfig {
        listen: Endpoint::Tcp("127.0.0.1:7337".to_string()),
        ..RouteConfig::default()
    };
    let mut iter = args.into_iter();
    macro_rules! endpoint_of {
        ($flag:literal) => {
            match iter.next().as_deref().map(Endpoint::parse) {
                Some(Ok(endpoint)) => endpoint,
                Some(Err(e)) => {
                    eprintln!("error: {e}\n{ROUTE_USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: {} needs an endpoint\n{ROUTE_USAGE}", $flag);
                    return ExitCode::from(2);
                }
            }
        };
    }
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--listen" => config.listen = endpoint_of!("--listen"),
            "--backend" => config.backends.push(endpoint_of!("--backend")),
            "--vnodes" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.vnodes = n,
                None => {
                    eprintln!("error: --vnodes needs a numeric value\n{ROUTE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--workers" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.workers = n,
                None => {
                    eprintln!("error: --workers needs a numeric value\n{ROUTE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--max-line-bytes" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.max_line_bytes = n,
                None => {
                    eprintln!("error: --max-line-bytes needs a numeric value\n{ROUTE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--node-name" => match iter.next() {
                Some(name) => config.node_name = Some(name),
                None => {
                    eprintln!("error: --node-name needs a value\n{ROUTE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{ROUTE_USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unexpected argument `{other}`\n{ROUTE_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if config.backends.is_empty() {
        eprintln!("error: at least one --backend is required\n{ROUTE_USAGE}");
        return ExitCode::from(2);
    }

    signal::install_handlers();
    let router = match Router::launch(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot start router: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Same wait-for-boot handshake as `staub serve`.
    println!("listening on {}", router.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    router.join();
    eprintln!("; router drained");
    ExitCode::SUCCESS
}

/// `staub lint`: run the certifying checker over a script and (when
/// transformable) its bounded translation. Exit code 1 iff error-severity
/// findings were reported.
fn lint_main(args: Vec<String>) -> ExitCode {
    use staub::core::check::check_transformed;
    use staub::lint::{resort, Severity};

    let mut width = WidthChoice::Inferred;
    let mut file = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--width" => {
                let Some(w) = iter.next().and_then(|v| v.parse::<u32>().ok()) else {
                    eprintln!("error: --width needs a numeric value\n{USAGE}");
                    return ExitCode::from(2);
                };
                width = WidthChoice::Fixed(w);
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: missing input file\n{USAGE}");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let script = match Script::parse(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    // Pass 1 on the parsed input itself.
    let mut report = resort(script.store());

    // Passes 1–3 on the bounded translation, when one exists. A failing
    // transformation is not a lint finding — the pipeline would simply
    // revert to the original constraint.
    let staub = Staub::new(StaubConfig {
        width_choice: width,
        ..Default::default()
    });
    if script
        .logic()
        .is_none_or(staub::smtlib::Logic::is_unbounded)
    {
        match staub.transform(&script) {
            Ok(transformed) => report.merge(check_transformed(&script, &transformed)),
            Err(e) => eprintln!("; not transformable ({e}); input checks only"),
        }
    }

    for finding in &report.findings {
        println!("{finding}");
    }
    let errors = report.error_count();
    let warnings = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Warning)
        .count();
    println!("{file}: {errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    {
        let mut args = std::env::args().skip(1);
        match args.next().as_deref() {
            Some("lint") => return lint_main(args.collect()),
            Some("stats") => return stats_main(args.collect()),
            Some("batch") => return batch_main(args.collect()),
            Some("serve") => return serve_main(args.collect()),
            Some("route") => return route_main(args.collect()),
            Some("client") => return client_main(args.collect()),
            Some("loadgen") => return loadgen_main(args.collect()),
            _ => {}
        }
    }
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg == "help" {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&options.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", options.file);
            return ExitCode::from(2);
        }
    };
    let script = match Script::parse(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let config = StaubConfig {
        width_choice: options.width,
        profile: options.profile,
        timeout: options.timeout,
        refinement_rounds: options.refine,
        ..Default::default()
    };
    let staub = Staub::new(config.clone());

    if options.stats {
        let bounds = staub.infer(&script);
        eprintln!(
            "; bound inference: x = {}, [S] = {}, {} nodes",
            bounds.assumption_width, bounds.root_width, bounds.nodes_visited
        );
    }

    if options.reduce {
        use staub::core::bvreduce;
        use staub::solver::{SatResult, Solver};
        let Some(width) = bvreduce::infer_reduction(&script) else {
            eprintln!("error: input is not a reducible uniform-width QF_BV script");
            return ExitCode::FAILURE;
        };
        let Some(reduced) = bvreduce::reduce(&script, width) else {
            eprintln!("error: constants do not fit the inferred width {width}");
            return ExitCode::FAILURE;
        };
        if options.stats {
            eprintln!(
                "; reduced (_ BitVec {}) to (_ BitVec {})",
                reduced.original_width, reduced.width
            );
        }
        if options.emit {
            print!("{}", reduced.script);
            return ExitCode::SUCCESS;
        }
        let solver = Solver::new(options.profile).with_timeout(options.timeout);
        return match solver.solve(&reduced.script).result {
            SatResult::Sat(narrow) => match bvreduce::lift_and_verify(&script, &reduced, &narrow) {
                Some(model) => {
                    println!("sat");
                    println!("{}", model.to_smtlib(script.store()));
                    ExitCode::SUCCESS
                }
                None => {
                    println!("unknown");
                    eprintln!("; narrow model did not verify; rerun without --reduce");
                    ExitCode::SUCCESS
                }
            },
            _ => {
                println!("unknown");
                eprintln!("; narrow constraint gave no verified answer");
                ExitCode::SUCCESS
            }
        };
    }

    if options.emit {
        return match staub.transform(&script) {
            Ok(transformed) => {
                if options.stats {
                    eprintln!(
                        "; target: {}, {} guards",
                        match (transformed.bv_width, transformed.fp_format) {
                            (Some(w), _) => format!("(_ BitVec {w})"),
                            (_, Some((eb, sb))) => format!("(_ FloatingPoint {eb} {sb})"),
                            _ => "?".to_string(),
                        },
                        transformed.guard_count
                    );
                }
                print!("{}", transformed.script);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot transform: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let start = std::time::Instant::now();
    let mut session = Session::new(config);
    let outcome = if options.race {
        session.race(&script)
    } else {
        session.run(&script)
    };
    match outcome {
        Ok(StaubOutcome::Sat {
            model,
            via,
            provenance,
        }) => {
            println!("sat");
            if options.stats {
                eprintln!(
                    "; via {} path (lane {}) in {:?}",
                    if via == Via::Bounded {
                        "bounded"
                    } else {
                        "original"
                    },
                    provenance.label,
                    start.elapsed()
                );
            }
            println!("{}", model.to_smtlib(script.store()));
            ExitCode::SUCCESS
        }
        Ok(StaubOutcome::Unsat { .. }) => {
            println!("unsat");
            ExitCode::SUCCESS
        }
        Ok(StaubOutcome::Unknown { .. }) => {
            println!("unknown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
