//! Print/parse round-trip properties for the SMT-LIB front end, driven by
//! both the suite generators and proptest-generated literal values.

use proptest::prelude::*;
use staub::benchgen::{generate, SuiteKind};
use staub::numeric::{BigInt, BigRational, BitVecValue};
use staub::smtlib::{Script, Sort};

/// Every generated benchmark prints to text that re-parses to a script with
/// identical structure, and printing is a fixed point.
#[test]
fn generated_suites_round_trip() {
    for kind in SuiteKind::all() {
        for b in generate(kind, 20, 0x707) {
            let once = b.script.to_string();
            let reparsed =
                Script::parse(&once).unwrap_or_else(|e| panic!("{}: {e}\n{once}", b.name));
            let twice = reparsed.to_string();
            assert_eq!(once, twice, "{}: printing is not a fixed point", b.name);
            assert_eq!(reparsed.assertions().len(), b.script.assertions().len());
            assert_eq!(
                reparsed.store().symbol_count(),
                b.script.store().symbol_count()
            );
        }
    }
}

proptest! {
    #[test]
    fn integer_literals_round_trip(v in any::<i128>()) {
        let mut script = Script::new();
        let x = script.declare("x", Sort::Int).unwrap();
        let xv = script.store_mut().var(x);
        let c = script.store_mut().int(BigInt::from(v));
        let eq = script.store_mut().eq(xv, c).unwrap();
        script.assert(eq);
        let text = script.to_string();
        let reparsed = Script::parse(&text).unwrap();
        prop_assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn rational_literals_round_trip(n in -100_000i64..100_000, d in 1i64..10_000) {
        let v = BigRational::new(BigInt::from(n), BigInt::from(d));
        let mut script = Script::new();
        let x = script.declare("r", Sort::Real).unwrap();
        let xv = script.store_mut().var(x);
        let c = script.store_mut().real(v);
        let eq = script.store_mut().eq(xv, c).unwrap();
        script.assert(eq);
        let text = script.to_string();
        let reparsed = Script::parse(&text).unwrap();
        prop_assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn bitvector_literals_round_trip(v in any::<u64>(), w in 1u32..=64) {
        let value = BitVecValue::new(BigInt::from(v), w);
        let mut script = Script::new();
        let x = script.declare("b", Sort::BitVec(w)).unwrap();
        let xv = script.store_mut().var(x);
        let c = script.store_mut().bv(value.clone());
        let eq = script.store_mut().eq(xv, c).unwrap();
        script.assert(eq);
        let text = script.to_string();
        let reparsed = Script::parse(&text).unwrap();
        prop_assert_eq!(reparsed.to_string(), text.clone());
        prop_assert!(text.contains(&value.to_string()));
    }

    #[test]
    fn fp_literals_round_trip(bits in any::<u32>()) {
        // Arbitrary binary32 bit patterns (incl. NaN/inf/subnormals).
        let f = f32::from_bits(bits);
        let sf = staub::numeric::SoftFloat::from_fields(
            8,
            24,
            bits >> 31 == 1,
            &BigInt::from((bits >> 23) & 0xff),
            &BigInt::from(bits & 0x7f_ffff),
        );
        let _ = f;
        let mut script = Script::new();
        let x = script.declare("f", Sort::Float(8, 24)).unwrap();
        let xv = script.store_mut().var(x);
        let c = script.store_mut().fp(sf);
        let eq = script.store_mut().eq(xv, c).unwrap();
        script.assert(eq);
        let text = script.to_string();
        let reparsed = Script::parse(&text).unwrap();
        prop_assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn comment_and_whitespace_insensitive(pad in "[ \t\n]{0,12}") {
        let src = format!(
            "(declare-fun x () Int){pad}; a comment\n(assert{pad}(> x 0))"
        );
        let script = Script::parse(&src).unwrap();
        prop_assert_eq!(script.assertions().len(), 1);
    }
}
