//! Property tests for constraint canonicalization (the `staub serve`
//! answer-cache key): the canonical fingerprint and key must be invariant
//! under consistent symbol renaming, commutative argument reordering, and
//! assertion reordering — and must *change* whenever the constraint
//! actually changes (probed by perturbing a constant). A full-key
//! comparison guards the one remaining failure mode (a 128-bit hash
//! collision), so key equality, not just fingerprint equality, is the
//! property checked here.

use proptest::collection::vec;
use proptest::prelude::*;
use staub::smtlib::{canonicalize, Canonical, Script};

/// A tiny Int-sorted expression AST rendered to SMT-LIB text two
/// different ways (original vs renamed/flipped/rotated).
#[derive(Clone, Debug)]
enum Expr {
    /// One of [`VARS`] variables, by index.
    Var(u8),
    /// An integer literal.
    Const(i8),
    /// n-ary commutative `+`.
    Add(Vec<Expr>),
    /// n-ary commutative `*`.
    Mul(Vec<Expr>),
    /// Binary non-commutative `-`.
    Sub(Box<Expr>, Box<Expr>),
}

const VARS: usize = 5;

fn expr_strategy() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0..VARS as u8).prop_map(Expr::Var),
        any::<i8>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            vec(inner.clone(), 2..4).prop_map(Expr::Add),
            vec(inner.clone(), 2..4).prop_map(Expr::Mul),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
        ]
    })
}

/// One comparison between two expressions. `Eq` is commutative (sides may
/// flip); `Lt` is not (sides must stay put).
#[derive(Clone, Debug)]
enum Cmp {
    Eq,
    Lt,
}

fn render(expr: &Expr, names: &[String], flip: bool) -> String {
    match expr {
        Expr::Var(i) => names[*i as usize].clone(),
        Expr::Const(c) => {
            let v = i64::from(*c);
            if v < 0 {
                format!("(- {})", -v)
            } else {
                v.to_string()
            }
        }
        Expr::Add(args) | Expr::Mul(args) => {
            let op = if matches!(expr, Expr::Add(_)) {
                "+"
            } else {
                "*"
            };
            let mut parts: Vec<String> = args.iter().map(|a| render(a, names, flip)).collect();
            if flip {
                parts.reverse();
            }
            format!("({op} {})", parts.join(" "))
        }
        Expr::Sub(a, b) => format!("(- {} {})", render(a, names, flip), render(b, names, flip)),
    }
}

/// Builds a full script: declarations for every variable (used or not),
/// then the assertions in `order`, then `(check-sat)`.
fn script_text(
    assertions: &[(Expr, Cmp, Expr)],
    names: &[String],
    flip: bool,
    rotate: usize,
) -> String {
    let mut out = String::new();
    for name in names {
        out.push_str(&format!("(declare-fun {name} () Int)"));
    }
    let n = assertions.len();
    for k in 0..n {
        let (lhs, cmp, rhs) = &assertions[(k + rotate) % n];
        let (a, b) = (render(lhs, names, flip), render(rhs, names, flip));
        match cmp {
            // `=` is commutative: the variant may present the sides swapped.
            Cmp::Eq if flip => out.push_str(&format!("(assert (= {b} {a}))")),
            Cmp::Eq => out.push_str(&format!("(assert (= {a} {b}))")),
            // `<` is not: both renderings keep the side order.
            Cmp::Lt => out.push_str(&format!("(assert (< {a} {b}))")),
        }
    }
    out.push_str("(check-sat)");
    out
}

fn canon_of(text: &str) -> Canonical {
    let script = Script::parse(text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    canonicalize(&script)
}

fn original_names() -> Vec<String> {
    (0..VARS).map(|i| format!("a{i}")).collect()
}

/// A consistent renaming: every variable gets a fresh, distinct name with
/// no relation to the original (different prefixes, reversed indices).
fn renamed_names() -> Vec<String> {
    (0..VARS).map(|i| format!("zz{}", VARS - i)).collect()
}

fn assertions_strategy() -> BoxedStrategy<Vec<(Expr, Cmp, Expr)>> {
    vec(
        (
            expr_strategy(),
            prop_oneof![Just(Cmp::Eq), Just(Cmp::Lt)],
            expr_strategy(),
        ),
        1..4,
    )
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Renaming every symbol, reversing every commutative argument list
    /// (including `=` itself), and rotating the assertion order must not
    /// change the fingerprint or the full canonical key.
    #[test]
    fn canonical_key_invariant_under_equivalence(
        assertions in assertions_strategy(),
        rotate in 0usize..4,
    ) {
        let a = canon_of(&script_text(&assertions, &original_names(), false, 0));
        let b = canon_of(&script_text(&assertions, &renamed_names(), true, rotate));
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        prop_assert_eq!(&a.key, &b.key);
        prop_assert_eq!(a.fingerprint_hex(), b.fingerprint_hex());
    }

    /// Only one of renaming / flipping / rotating applied alone must also
    /// be invisible (the combined test above could in principle pass by
    /// two bugs cancelling out).
    #[test]
    fn each_equivalence_alone_is_invisible(assertions in assertions_strategy()) {
        let base = canon_of(&script_text(&assertions, &original_names(), false, 0));
        let renamed = canon_of(&script_text(&assertions, &renamed_names(), false, 0));
        let flipped = canon_of(&script_text(&assertions, &original_names(), true, 0));
        let rotated = canon_of(&script_text(&assertions, &original_names(), false, 1));
        prop_assert_eq!(&base.key, &renamed.key);
        prop_assert_eq!(&base.key, &flipped.key);
        prop_assert_eq!(&base.key, &rotated.key);
    }

    /// Perturbing the constraint (strengthening it with one extra bound on
    /// one variable) must change the canonical key: distinct constraints
    /// may only ever collide by *fingerprint* accident, and the full key —
    /// what the cache compares on hit — must still tell them apart.
    #[test]
    fn distinct_constraints_get_distinct_keys(
        assertions in assertions_strategy(),
        var in 0..VARS as u8,
        bound in 0i64..1000,
    ) {
        let names = original_names();
        let base_text = script_text(&assertions, &names, false, 0);
        let a = canon_of(&base_text);

        let extra = format!(
            "(assert (< {} {bound}))(check-sat)",
            names[var as usize]
        );
        let b = canon_of(&base_text.replace("(check-sat)", &extra));
        prop_assert_ne!(&a.key, &b.key);
    }

    /// Swapping the operands of a *non*-commutative comparison is a
    /// different constraint and must produce a different key. Every
    /// variable is anchored by an assertion with its own distinct constant
    /// so no renaming can permute them — without the anchors, `(< a1 a3)`
    /// swapped would be α-equivalent to itself and *should* share a key.
    /// Operand pairs that are equal modulo commutative reordering (probed
    /// by canonicalizing each side on its own) are skipped for the same
    /// reason.
    #[test]
    fn non_commutative_swap_changes_the_key(lhs in expr_strategy(), rhs in expr_strategy()) {
        let names = original_names();
        let l = render(&lhs, &names, false);
        let r = render(&rhs, &names, false);
        let mut decls = String::new();
        for (i, n) in names.iter().enumerate() {
            decls.push_str(&format!("(declare-fun {n} () Int)"));
            decls.push_str(&format!("(assert (< {n} {}))", 1000 + i));
        }
        let cl = canon_of(&format!("{decls}(assert (= {l} 424242))(check-sat)"));
        let cr = canon_of(&format!("{decls}(assert (= {r} 424242))(check-sat)"));
        prop_assume!(cl.key != cr.key);
        let a = canon_of(&format!("{decls}(assert (< {l} {r}))(check-sat)"));
        let b = canon_of(&format!("{decls}(assert (< {r} {l}))(check-sat)"));
        prop_assert_ne!(&a.key, &b.key);
    }
}

/// The benchgen corpora round-trip through printing: the canonical key of
/// a generated script equals the canonical key of its re-parsed printout
/// (printing/parsing must not disturb canonicalization), and distinct
/// instances within a suite get distinct keys.
#[test]
fn benchgen_corpora_canonicalize_stably() {
    use staub::benchgen::{generate, SuiteKind};
    use std::collections::HashMap;

    for kind in SuiteKind::all() {
        let mut seen: HashMap<String, (String, String)> = HashMap::new();
        for b in generate(kind, 16, 0xCA11) {
            let text = b.script.to_string();
            let direct = canonicalize(&b.script);
            let reparsed = canon_of(&text);
            assert_eq!(
                direct.key, reparsed.key,
                "{}: print/parse round trip disturbed the canonical key",
                b.name
            );
            // The generator occasionally emits the same script twice;
            // those duplicates *must* share a key. Only a collision
            // between textually distinct scripts is a bug.
            if let Some((previous, prev_text)) =
                seen.insert(direct.key.clone(), (b.name.clone(), text.clone()))
            {
                assert_eq!(
                    prev_text, text,
                    "{}: canonical key collides with distinct script {previous}",
                    b.name
                );
            }
        }
    }
}
