//! `staub lint` must run clean over the whole generated benchmark corpus:
//! the parsed input re-sorts, and every transformable constraint's bounded
//! translation certifies (boundedness, guard domination, correspondence)
//! with zero error-severity findings.

use staub::benchgen::{generate, SuiteKind};
use staub::core::check::check_transformed;
use staub::core::Staub;
use staub::lint::resort;

const PER_SUITE: usize = 40;
const SEED: u64 = 0xC0FFEE;

#[test]
fn corpus_certifies_clean() {
    let staub = Staub::default();
    let mut transformed_count = 0usize;
    for kind in SuiteKind::all() {
        for benchmark in generate(kind, PER_SUITE, SEED) {
            let input_report = resort(benchmark.script.store());
            assert!(
                input_report.is_clean(),
                "{kind}/{}: input store failed resort:\n{input_report}",
                benchmark.name
            );
            // Constraints without a bounded counterpart within default
            // limits are fine — the pipeline reverts; nothing to certify.
            let Ok(t) = staub.transform(&benchmark.script) else {
                continue;
            };
            transformed_count += 1;
            let report = check_transformed(&benchmark.script, &t);
            assert!(
                report.is_clean(),
                "{kind}/{}: transformed output failed certification:\n{report}",
                benchmark.name
            );
        }
    }
    assert!(
        transformed_count >= PER_SUITE,
        "corpus exercised only {transformed_count} transformations"
    );
}
