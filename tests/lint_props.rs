//! Negative property tests for `staub-lint`: starting from a known-good
//! transformed constraint (which certifies clean), each seeded mutation
//! must make exactly the targeted lint code fire.

use proptest::prelude::*;

use staub::benchgen::{generate, SuiteKind};
use staub::core::check::check_transformed;
use staub::core::{Staub, Transformed};
use staub::lint::{model_shape, resort, LintCode};
use staub::numeric::{BigInt, BitVecValue};
use staub::smtlib::{Model, Op, Script, Sort, Value};

/// A benchmark from the integer suites that transforms under default
/// limits, together with its certified-clean translation.
fn transformed_int(seed: u64) -> Option<(Script, Transformed)> {
    let staub = Staub::default();
    let kind = if seed.is_multiple_of(2) {
        SuiteKind::QfNia
    } else {
        SuiteKind::QfLia
    };
    for benchmark in generate(kind, 4, seed) {
        if let Ok(t) = staub.transform(&benchmark.script) {
            if check_transformed(&benchmark.script, &t).is_clean() {
                return Some((benchmark.script, t));
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Dropping any single overflow-guard assertion fires `L102`.
    #[test]
    fn dropped_guard_fires_missing_guard(seed in 0u64..10_000) {
        prop_assume!(transformed_int(seed).is_some());
        let (original, mut t) = transformed_int(seed).unwrap();
        let guard_positions: Vec<usize> = t
            .script
            .assertions()
            .iter()
            .enumerate()
            .filter(|&(_, &a)| {
                let store = t.script.store();
                let term = store.term(a);
                matches!(term.op(), Op::Not)
                    && matches!(
                        store.term(term.args()[0]).op(),
                        Op::BvSaddo | Op::BvSsubo | Op::BvSmulo | Op::BvSdivo | Op::BvNego
                    )
            })
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!guard_positions.is_empty());
        let drop_at = guard_positions[seed as usize % guard_positions.len()];
        let mut kept: Vec<_> = t.script.assertions().to_vec();
        kept.remove(drop_at);
        t.script.set_assertions(kept);
        let report = check_transformed(&original, &t);
        prop_assert!(report.has(LintCode::MissingGuard), "{}", report);
        prop_assert!(!report.is_clean());
    }

    /// Widening a bitvector constant past its declared width fires `L103`.
    #[test]
    fn oversized_constant_fires_constant_overflow(seed in 0u64..10_000) {
        prop_assume!(transformed_int(seed).is_some());
        let (original, mut t) = transformed_int(seed).unwrap();
        let store = t.script.store();
        let victim = store.ids().find(|&id| matches!(store.term(id).op(), Op::BvConst(_)));
        prop_assume!(victim.is_some());
        let victim = victim.unwrap();
        let width = match t.script.store().sort(victim) {
            Sort::BitVec(w) => w,
            other => {
                prop_assert!(false, "BvConst carries sort {}", other);
                unreachable!()
            }
        };
        // The smallest value that no longer fits: 2^width.
        let too_wide = BigInt::one().shl_bits(width as usize);
        t.script.store_mut().corrupt_op_for_test(
            victim,
            Op::BvConst(BitVecValue::corrupted_for_test(too_wide, width)),
        );
        let report = check_transformed(&original, &t);
        prop_assert!(report.has(LintCode::ConstantOverflow), "{}", report);
    }

    /// Removing any φ⁻¹ entry fires `L201`.
    #[test]
    fn removed_phi_entry_fires_phi_incomplete(seed in 0u64..10_000) {
        prop_assume!(transformed_int(seed).is_some());
        let (original, mut t) = transformed_int(seed).unwrap();
        prop_assume!(!t.var_map.is_empty());
        let remove_at = seed as usize % t.var_map.len();
        t.var_map.remove(remove_at);
        let report = check_transformed(&original, &t);
        prop_assert!(report.has(LintCode::PhiIncomplete), "{}", report);
        prop_assert!(!report.is_clean());
    }

    /// Corrupting a cached sort in the input store fires `L001`.
    #[test]
    fn corrupted_sort_fires_sort_mismatch(seed in 0u64..10_000) {
        prop_assume!(transformed_int(seed).is_some());
        let (mut original, _) = transformed_int(seed).unwrap();
        let victim = {
            let store = original.store();
            store.ids().find(|&id| store.sort(id) == Sort::Int)
        };
        prop_assume!(victim.is_some());
        original.store_mut().corrupt_sort_for_test(victim.unwrap(), Sort::Real);
        let report = resort(original.store());
        prop_assert!(report.has(LintCode::SortMismatch), "{}", report);
        prop_assert!(!report.is_clean());
    }

    /// Deleting any free symbol's assignment from a well-shaped model fires
    /// `L301`; retyping it fires `L302`.
    #[test]
    fn broken_model_shape_fires(seed in 0u64..10_000) {
        prop_assume!(transformed_int(seed).is_some());
        let (original, _) = transformed_int(seed).unwrap();
        let store = original.store();
        let free: Vec<_> = original
            .assertions()
            .iter()
            .flat_map(|&a| store.vars_of(a))
            .collect();
        prop_assume!(!free.is_empty());
        let mut model = Model::new();
        for &sym in &free {
            let value = match store.symbol_sort(sym) {
                Sort::Int => Value::Int(BigInt::zero()),
                Sort::Bool => Value::Bool(false),
                other => {
                    prop_assert!(false, "unexpected symbol sort {other}");
                    unreachable!()
                }
            };
            model.insert(sym, value);
        }
        prop_assert!(model_shape(&original, &model).is_clean());

        let victim = free[seed as usize % free.len()];
        let mut missing = model.clone();
        // Model has no removal API; rebuild without the victim.
        let mut rebuilt = Model::new();
        for (sym, v) in missing.iter() {
            if sym != victim {
                rebuilt.insert(sym, v.clone());
            }
        }
        missing = rebuilt;
        let report = model_shape(&original, &missing);
        prop_assert!(report.has(LintCode::ModelMissingValue), "{}", report);

        let mut retyped = model;
        retyped.insert(victim, Value::Rm(staub::numeric::RoundingMode::NearestEven));
        let report = model_shape(&original, &retyped);
        prop_assert!(report.has(LintCode::ModelSortMismatch), "{}", report);
    }
}
