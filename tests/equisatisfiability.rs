//! Property tests of the core arbitrage invariants, against a brute-force
//! oracle on randomly generated small integer constraints.
//!
//! The deep properties (paper §3.1/§4.4):
//!
//! 1. **Underapproximation** — a verified bounded model IS a model of the
//!    original (checked structurally by `lift_and_verify`, re-checked here
//!    against brute force).
//! 2. **No wrong `unsat`** — the pipeline never reports `unsat` for a
//!    constraint the oracle can satisfy.
//! 3. **Guard soundness** — models of the guarded bounded constraint never
//!    rely on wraparound: lifting always verifies when all operations stay
//!    representable.

use proptest::prelude::*;
use staub::core::{Session, Staub, StaubConfig, StaubOutcome, WidthChoice};
use staub::numeric::BigInt;
use staub::smtlib::{evaluate, Model, Script, Sort, TermId, Value};
use std::time::Duration;

/// A tiny random integer-constraint AST we can both emit and brute-force.
#[derive(Debug, Clone)]
enum SmallExpr {
    Var(usize),
    Const(i64),
    Add(Box<SmallExpr>, Box<SmallExpr>),
    Sub(Box<SmallExpr>, Box<SmallExpr>),
    Mul(Box<SmallExpr>, Box<SmallExpr>),
}

impl SmallExpr {
    fn emit(&self, script: &mut Script, vars: &[staub::smtlib::SymbolId]) -> TermId {
        match self {
            SmallExpr::Var(i) => script.store_mut().var(vars[*i]),
            SmallExpr::Const(c) => script.store_mut().int(BigInt::from(*c)),
            SmallExpr::Add(a, b) => {
                let ta = a.emit(script, vars);
                let tb = b.emit(script, vars);
                script.store_mut().add(&[ta, tb]).expect("int add")
            }
            SmallExpr::Sub(a, b) => {
                let ta = a.emit(script, vars);
                let tb = b.emit(script, vars);
                script.store_mut().sub(ta, tb).expect("int sub")
            }
            SmallExpr::Mul(a, b) => {
                let ta = a.emit(script, vars);
                let tb = b.emit(script, vars);
                script.store_mut().mul(&[ta, tb]).expect("int mul")
            }
        }
    }
}

fn small_expr(depth: u32) -> impl Strategy<Value = SmallExpr> {
    let leaf = prop_oneof![
        (0usize..2).prop_map(SmallExpr::Var),
        (-8i64..=8).prop_map(SmallExpr::Const),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SmallExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SmallExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| SmallExpr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

/// Builds `(assert (cmp lhs rhs))` over two integer variables.
fn build_script(lhs: &SmallExpr, rhs: &SmallExpr, cmp: u8) -> Script {
    let mut script = Script::new();
    let vars = vec![
        script.declare("v0", Sort::Int).expect("fresh"),
        script.declare("v1", Sort::Int).expect("fresh"),
    ];
    let tl = lhs.emit(&mut script, &vars);
    let tr = rhs.emit(&mut script, &vars);
    let s = script.store_mut();
    let atom = match cmp % 3 {
        0 => s.eq(tl, tr).expect("eq"),
        1 => s.le(tl, tr).expect("le"),
        _ => s.gt(tl, tr).expect("gt"),
    };
    script.assert(atom);
    // Keep the oracle domain small.
    let lo = script.store_mut().int(BigInt::from(-6));
    let hi = script.store_mut().int(BigInt::from(6));
    for &v in &vars {
        let t = script.store_mut().var(v);
        let ge = script.store_mut().ge(t, lo).expect("ge");
        let le = script.store_mut().le(t, hi).expect("le");
        script.assert(ge);
        script.assert(le);
    }
    script
}

/// Brute-force oracle over the bounded domain.
fn oracle(script: &Script) -> bool {
    let v0 = script.store().symbol("v0").unwrap();
    let v1 = script.store().symbol("v1").unwrap();
    for a in -6i64..=6 {
        for b in -6i64..=6 {
            let mut m = Model::new();
            m.insert(v0, Value::Int(BigInt::from(a)));
            m.insert(v1, Value::Int(BigInt::from(b)));
            if script
                .assertions()
                .iter()
                .all(|&t| evaluate(script.store(), t, &m) == Ok(Value::Bool(true)))
            {
                return true;
            }
        }
    }
    false
}

fn tool_config() -> StaubConfig {
    StaubConfig {
        width_choice: WidthChoice::Inferred,
        timeout: Duration::from_secs(2),
        steps: 2_000_000,
        ..Default::default()
    }
}

fn tool() -> Staub {
    Staub::new(tool_config())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_agrees_with_brute_force(
        lhs in small_expr(2),
        rhs in small_expr(2),
        cmp in any::<u8>(),
    ) {
        let script = build_script(&lhs, &rhs, cmp);
        let truth = oracle(&script);
        match Session::new(tool_config()).run(&script).expect("non-empty") {
            StaubOutcome::Sat { model, .. } => {
                prop_assert!(truth, "pipeline sat, oracle unsat:\n{script}");
                for &a in script.assertions() {
                    prop_assert_eq!(
                        evaluate(script.store(), a, &model).unwrap(),
                        Value::Bool(true)
                    );
                }
            }
            StaubOutcome::Unsat { .. } => {
                prop_assert!(!truth, "pipeline unsat, oracle sat:\n{script}");
            }
            StaubOutcome::Unknown { .. } => {} // budget; sound either way
        }
    }

    #[test]
    fn bounded_models_always_verify(
        lhs in small_expr(2),
        rhs in small_expr(2),
        cmp in any::<u8>(),
    ) {
        // If the guarded bounded constraint is sat, lifting must verify:
        // the guards forbid every wraparound the translation could exploit.
        let script = build_script(&lhs, &rhs, cmp);
        let staub = tool();
        let Ok(transformed) = staub.transform(&script) else { return Ok(()) };
        let solver = staub::solver::Solver::new(staub::solver::SolverProfile::Zed)
            .with_timeout(Duration::from_secs(2))
            .with_steps(2_000_000);
        if let staub::solver::SatResult::Sat(bounded_model) =
            solver.solve(&transformed.script).result
        {
            let lifted =
                staub::core::verify::lift_and_verify(&script, &transformed, &bounded_model);
            prop_assert!(
                lifted.is_some(),
                "guarded bounded model failed verification:\n{}\n=>\n{}",
                script,
                transformed.script
            );
        }
    }

    #[test]
    fn inference_covers_intermediates_within_assumption(
        lhs in small_expr(2),
        rhs in small_expr(2),
    ) {
        // Theorem 4.5 instantiated: for assignments within the assumption
        // width x, every intermediate value fits in the root width [S].
        let script = build_script(&lhs, &rhs, 0);
        let bounds = tool().infer(&script);
        let x_range = 1i64 << (bounds.assumption_width.min(16) - 1);
        let half = |w: u32| BigInt::one().shl_bits(w.min(62) as usize - 1);
        let cap = half(bounds.root_width.min(63));
        for a in [-x_range, -1, 0, 1, x_range - 1] {
            for b in [-x_range, 0, x_range - 1] {
                for e in [&lhs, &rhs] {
                    let v = eval_exact(e, &[a, b]);
                    prop_assert!(
                        v.abs() < cap || v == -half(bounds.root_width.min(63)),
                        "intermediate {v} exceeds [S]={} at x={}",
                        bounds.root_width,
                        bounds.assumption_width
                    );
                }
            }
        }
    }
}

/// Exact (non-wrapping) evaluation for the inference-soundness check.
fn eval_exact(e: &SmallExpr, env: &[i64]) -> BigInt {
    match e {
        SmallExpr::Var(i) => BigInt::from(env[*i]),
        SmallExpr::Const(c) => BigInt::from(*c),
        SmallExpr::Add(a, b) => &eval_exact(a, env) + &eval_exact(b, env),
        SmallExpr::Sub(a, b) => &eval_exact(a, env) - &eval_exact(b, env),
        SmallExpr::Mul(a, b) => &eval_exact(a, env) * &eval_exact(b, env),
    }
}
