//! Property tests for the SLOT optimizer: optimization must preserve the
//! *value* of every assertion under every assignment (a strictly stronger
//! property than equisatisfiability), checked by brute force over small
//! bitvector domains.

use proptest::prelude::*;
use staub::numeric::{BigInt, BitVecValue};
use staub::slot::Slot;
use staub::smtlib::{evaluate, Model, Script, Sort, TermId, Value};

/// A small random bitvector expression over two 4-bit variables.
#[derive(Debug, Clone)]
enum BvExpr {
    Var(usize),
    Const(u8),
    Add(Box<BvExpr>, Box<BvExpr>),
    Sub(Box<BvExpr>, Box<BvExpr>),
    Mul(Box<BvExpr>, Box<BvExpr>),
    And(Box<BvExpr>, Box<BvExpr>),
    Or(Box<BvExpr>, Box<BvExpr>),
    Xor(Box<BvExpr>, Box<BvExpr>),
    Not(Box<BvExpr>),
    Neg(Box<BvExpr>),
}

const WIDTH: u32 = 4;

fn bv_expr(depth: u32) -> impl Strategy<Value = BvExpr> {
    let leaf = prop_oneof![
        (0usize..2).prop_map(BvExpr::Var),
        (0u8..16).prop_map(BvExpr::Const),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BvExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BvExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BvExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BvExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BvExpr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BvExpr::Xor(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| BvExpr::Not(Box::new(a))),
            inner.prop_map(|a| BvExpr::Neg(Box::new(a))),
        ]
    })
}

fn emit(e: &BvExpr, script: &mut Script, vars: &[staub::smtlib::SymbolId]) -> TermId {
    use staub::smtlib::Op;
    match e {
        BvExpr::Var(i) => script.store_mut().var(vars[*i]),
        BvExpr::Const(c) => script
            .store_mut()
            .bv(BitVecValue::new(BigInt::from(*c as i64), WIDTH)),
        BvExpr::Add(a, b) => bin(script, vars, Op::BvAdd, a, b),
        BvExpr::Sub(a, b) => bin(script, vars, Op::BvSub, a, b),
        BvExpr::Mul(a, b) => bin(script, vars, Op::BvMul, a, b),
        BvExpr::And(a, b) => bin(script, vars, Op::BvAnd, a, b),
        BvExpr::Or(a, b) => bin(script, vars, Op::BvOr, a, b),
        BvExpr::Xor(a, b) => bin(script, vars, Op::BvXor, a, b),
        BvExpr::Not(a) => un(script, vars, Op::BvNot, a),
        BvExpr::Neg(a) => un(script, vars, Op::BvNeg, a),
    }
}

fn bin(
    script: &mut Script,
    vars: &[staub::smtlib::SymbolId],
    op: staub::smtlib::Op,
    a: &BvExpr,
    b: &BvExpr,
) -> TermId {
    let ta = emit(a, script, vars);
    let tb = emit(b, script, vars);
    script.store_mut().app(op, &[ta, tb]).expect("well-sorted")
}

fn un(
    script: &mut Script,
    vars: &[staub::smtlib::SymbolId],
    op: staub::smtlib::Op,
    a: &BvExpr,
) -> TermId {
    let ta = emit(a, script, vars);
    script.store_mut().app(op, &[ta]).expect("well-sorted")
}

fn assertion_values(script: &Script) -> Vec<Vec<bool>> {
    // Truth table of all assertions over every (a, b) in [0,16)².
    let a = script.store().symbol("a").unwrap();
    let b = script.store().symbol("b").unwrap();
    let mut rows = Vec::with_capacity(256);
    for av in 0..16i64 {
        for bv in 0..16i64 {
            let mut m = Model::new();
            m.insert(a, Value::BitVec(BitVecValue::from_i64(av, WIDTH)));
            m.insert(b, Value::BitVec(BitVecValue::from_i64(bv, WIDTH)));
            let row: Vec<bool> = script
                .assertions()
                .iter()
                .map(|&t| evaluate(script.store(), t, &m) == Ok(Value::Bool(true)))
                .collect();
            rows.push(row);
        }
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slot_preserves_models_exactly(
        lhs in bv_expr(3),
        rhs in bv_expr(3),
        cmp in any::<u8>(),
    ) {
        use staub::smtlib::Op;
        let mut script = Script::new();
        let vars = vec![
            script.declare("a", Sort::BitVec(WIDTH)).unwrap(),
            script.declare("b", Sort::BitVec(WIDTH)).unwrap(),
        ];
        let tl = emit(&lhs, &mut script, &vars);
        let tr = emit(&rhs, &mut script, &vars);
        let op = match cmp % 4 {
            0 => Op::Eq,
            1 => Op::BvUlt,
            2 => Op::BvSle,
            _ => Op::BvSgt,
        };
        let atom = script.store_mut().app(op, &[tl, tr]).unwrap();
        script.assert(atom);

        // Conjunction-level satisfaction before/after must be identical
        // under every assignment (assertions may be restructured, so we
        // compare the conjunction of each row, not individual columns).
        let before: Vec<bool> =
            assertion_values(&script).iter().map(|row| row.iter().all(|&b| b)).collect();
        let mut optimized = script.clone();
        let _ = Slot::standard().optimize(&mut optimized);
        let after: Vec<bool> =
            assertion_values(&optimized).iter().map(|row| row.iter().all(|&b| b)).collect();
        prop_assert_eq!(before, after, "SLOT changed semantics of:\n{}\n=>\n{}", script, optimized);
    }

    #[test]
    fn slot_is_idempotent(
        lhs in bv_expr(3),
        rhs in bv_expr(3),
    ) {
        let mut script = Script::new();
        let vars = vec![
            script.declare("a", Sort::BitVec(WIDTH)).unwrap(),
            script.declare("b", Sort::BitVec(WIDTH)).unwrap(),
        ];
        let tl = emit(&lhs, &mut script, &vars);
        let tr = emit(&rhs, &mut script, &vars);
        let atom = script.store_mut().eq(tl, tr).unwrap();
        script.assert(atom);
        let slot = Slot::standard();
        let _ = slot.optimize(&mut script);
        let first = script.to_string();
        let report = slot.optimize(&mut script);
        prop_assert_eq!(report.rewrites, 0, "second run found rewrites in {}", first);
        prop_assert_eq!(script.to_string(), first);
    }
}
