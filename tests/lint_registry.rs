//! The lint registry must be *live*: every code in [`LintCode::all`] has at
//! least one corpus case here that demonstrably fires it. A code nobody can
//! trigger is dead weight in the registry; a trigger nobody registers is a
//! regression waiting to go silent. The final assertion cross-checks the
//! case table against the registry in both directions.

use std::collections::HashSet;

use staub::core::certify;
use staub::lint::{
    bound_certificate, boundedness, correspondence, dl_certificate, model_shape, resort,
    BoundClaim, Correspondence, DlClaim, DlCycleEdge, LintCode, LintReport,
};
use staub::numeric::{BigInt, BigRational, BitVecValue};
use staub::smtlib::{Logic, Model, Op, Script, Sort, Value};

/// `x + 2 < 10` over Int — the resort corpus seed.
fn int_script() -> Script {
    let mut script = Script::new();
    script.set_logic(Logic::QfLia);
    let x = script.declare("x", Sort::Int).unwrap();
    let s = script.store_mut();
    let xv = s.var(x);
    let two = s.int(BigInt::from(2));
    let sum = s.add(&[xv, two]).unwrap();
    let ten = s.int(BigInt::from(10));
    let cmp = s.lt(sum, ten).unwrap();
    script.assert(cmp);
    script
}

fn l001_sort_mismatch() -> LintReport {
    let mut script = int_script();
    let two = {
        let s = script.store_mut();
        s.int(BigInt::from(2))
    };
    script.store_mut().corrupt_sort_for_test(two, Sort::Real);
    resort(script.store())
}

fn l002_sort_underivable() -> LintReport {
    let mut script = int_script();
    let cmp = *script.assertions().first().unwrap();
    script.store_mut().corrupt_op_for_test(cmp, Op::And);
    resort(script.store())
}

fn l003_acyclicity_violation() -> LintReport {
    let mut script = int_script();
    let cmp = *script.assertions().first().unwrap();
    // The comparison now lists *itself* as an argument: interning is no
    // longer bottom-up.
    script
        .store_mut()
        .corrupt_args_for_test(cmp, vec![cmp, cmp]);
    resort(script.store())
}

/// `x + y = 5` over `(_ BitVec 8)`, optionally missing its overflow guard.
fn bv_script(guarded: bool) -> Script {
    let mut script = Script::new();
    script.set_logic(Logic::QfBv);
    let x = script.declare("x", Sort::BitVec(8)).unwrap();
    let y = script.declare("y", Sort::BitVec(8)).unwrap();
    let s = script.store_mut();
    let xv = s.var(x);
    let yv = s.var(y);
    let ovf = s.app(Op::BvSaddo, &[xv, yv]).unwrap();
    let guard = s.not(ovf).unwrap();
    let sum = s.app(Op::BvAdd, &[xv, yv]).unwrap();
    let five = s.bv(BitVecValue::new(BigInt::from(5), 8));
    let eq = s.eq(sum, five).unwrap();
    if guarded {
        script.assert(guard);
    }
    script.assert(eq);
    script
}

fn l101_unbounded_subterm() -> LintReport {
    boundedness(&int_script())
}

fn l102_missing_guard() -> LintReport {
    boundedness(&bv_script(false))
}

fn l103_constant_overflow() -> LintReport {
    let mut script = bv_script(true);
    let five = {
        let s = script.store_mut();
        s.bv(BitVecValue::new(BigInt::from(5), 8))
    };
    script.store_mut().corrupt_op_for_test(
        five,
        Op::BvConst(BitVecValue::corrupted_for_test(BigInt::from(300), 8)),
    );
    boundedness(&script)
}

/// An original/bounded pair for the correspondence cases.
fn pair() -> (Script, Script) {
    let original = int_script();
    let mut bounded = Script::new();
    bounded.set_logic(Logic::QfBv);
    bounded.declare("x", Sort::BitVec(12)).unwrap();
    (original, bounded)
}

fn l201_phi_incomplete() -> LintReport {
    let (original, bounded) = pair();
    correspondence(&Correspondence {
        original: &original,
        bounded: &bounded,
        var_map: &[],
        bv_width: Some(12),
        fp_format: None,
        int_assumption_width: Some(6),
        real_assumption: None,
    })
}

fn l202_phi_sort_mismatch() -> LintReport {
    // Narrower-than-node declarations are the per-variable width scheme
    // (sign-extended at use sites); only a *wider*-than-node mapping is a
    // sort mismatch.
    let (original, mut bounded) = pair();
    let wide = bounded.declare("x16", Sort::BitVec(16)).unwrap();
    let ox = original.store().symbol("x").unwrap();
    correspondence(&Correspondence {
        original: &original,
        bounded: &bounded,
        var_map: &[(ox, wide)],
        bv_width: Some(12),
        fp_format: None,
        int_assumption_width: Some(6),
        real_assumption: None,
    })
}

fn l203_width_below_inference() -> LintReport {
    let (original, bounded) = pair();
    let ox = original.store().symbol("x").unwrap();
    let bx = bounded.store().symbol("x").unwrap();
    correspondence(&Correspondence {
        original: &original,
        bounded: &bounded,
        var_map: &[(ox, bx)],
        bv_width: Some(12),
        fp_format: None,
        int_assumption_width: Some(14),
        real_assumption: None,
    })
}

fn l204_width_margin_dropped() -> LintReport {
    let (original, bounded) = pair();
    let ox = original.store().symbol("x").unwrap();
    let bx = bounded.store().symbol("x").unwrap();
    correspondence(&Correspondence {
        original: &original,
        bounded: &bounded,
        var_map: &[(ox, bx)],
        bv_width: Some(12),
        fp_format: None,
        int_assumption_width: Some(13),
        real_assumption: None,
    })
}

fn l301_model_missing_value() -> LintReport {
    model_shape(&int_script(), &Model::new())
}

fn l302_model_sort_mismatch() -> LintReport {
    let script = int_script();
    let x = script.store().symbol("x").unwrap();
    let mut model = Model::new();
    model.insert(x, Value::Real(BigRational::from(1)));
    model_shape(&script, &model)
}

/// A certified pure-LIA parity script plus the honest claim its real
/// certificate makes — each L4xx case doctors exactly one field.
fn certified() -> (Script, staub::core::BoundCertificate) {
    let script = Script::parse(
        "(declare-fun x () Int)(declare-fun y () Int)
         (assert (= (+ (* 2 x) (* 2 y)) 7))(check-sat)",
    )
    .unwrap();
    let cert = certify(&script);
    assert!(cert.certified_width.is_some(), "parity script certifies");
    (script, cert)
}

fn claim<'a>(script: &'a Script, cert: &'a staub::core::BoundCertificate) -> BoundClaim<'a> {
    BoundClaim {
        original: script,
        fragment: cert.fragment.name(),
        num_vars: cert.ledger.num_vars,
        num_atoms: cert.ledger.num_atoms,
        max_entry_bits: cert.ledger.max_entry_bits,
        max_atom_terms: cert.ledger.max_atom_terms,
        certified_width: cert.certified_width,
        var_bounds: &cert.var_bounds,
        used_width: None,
    }
}

fn l401_fragment_mismatch() -> LintReport {
    let (script, cert) = certified();
    let mut c = claim(&script, &cert);
    c.fragment = "lra";
    c.certified_width = None;
    bound_certificate(&c)
}

fn l402_ledger_escape() -> LintReport {
    let (script, cert) = certified();
    let mut c = claim(&script, &cert);
    c.max_entry_bits -= 1;
    bound_certificate(&c)
}

fn l403_certified_width_unsound() -> LintReport {
    let (script, cert) = certified();
    let mut c = claim(&script, &cert);
    c.certified_width = Some(cert.certified_width.unwrap() - 1);
    bound_certificate(&c)
}

fn l404_used_width_below_certificate() -> LintReport {
    let (script, cert) = certified();
    let mut c = claim(&script, &cert);
    c.used_width = Some(cert.certified_width.unwrap() - 1);
    bound_certificate(&c)
}

fn l405_uncovered_variable() -> LintReport {
    let (script, cert) = certified();
    let mut c = claim(&script, &cert);
    c.var_bounds = &[];
    bound_certificate(&c)
}

/// `x − y ≤ 1 ∧ y − x ≤ −2` — a genuine negative cycle; each L5xx case
/// doctors the script or the claimed cycle in exactly one way.
fn dl_script() -> Script {
    Script::parse(
        "(declare-fun x () Int)(declare-fun y () Int)
         (assert (<= (- x y) 1))(assert (<= (- y x) (- 2)))(check-sat)",
    )
    .unwrap()
}

fn dl_edge(x: &str, y: &str, bound: i64, strict: bool) -> DlCycleEdge {
    DlCycleEdge {
        x: Some(x.to_string()),
        y: Some(y.to_string()),
        bound: BigRational::from(bound),
        strict,
    }
}

fn l501_dl_fragment_mismatch() -> LintReport {
    // A coefficient of 2 pushes the script outside the fragment.
    let script = Script::parse(
        "(declare-fun x () Int)(declare-fun y () Int)
         (assert (<= (- (* 2 x) y) 1))(check-sat)",
    )
    .unwrap();
    let cycle = [dl_edge("x", "y", 1, false)];
    dl_certificate(&DlClaim {
        original: &script,
        cycle: &cycle,
    })
}

fn l502_dl_edge_unasserted() -> LintReport {
    // The claimed `x − y ≤ 0` is tighter than the asserted `≤ 1`.
    let script = dl_script();
    let cycle = [dl_edge("x", "y", 0, false), dl_edge("y", "x", -2, false)];
    dl_certificate(&DlClaim {
        original: &script,
        cycle: &cycle,
    })
}

fn l503_dl_cycle_broken() -> LintReport {
    // A single edge between distinct variables cannot close a cycle.
    let script = dl_script();
    let cycle = [dl_edge("x", "y", 1, false)];
    dl_certificate(&DlClaim {
        original: &script,
        cycle: &cycle,
    })
}

fn l504_dl_cycle_non_negative() -> LintReport {
    // Both edges are asserted (−2 entails −1) but the sum is zero with no
    // strict edge: refutes nothing.
    let script = dl_script();
    let cycle = [dl_edge("x", "y", 1, false), dl_edge("y", "x", -1, false)];
    dl_certificate(&DlClaim {
        original: &script,
        cycle: &cycle,
    })
}

#[test]
fn every_registered_code_has_a_firing_case() {
    let cases: Vec<(LintCode, LintReport)> = vec![
        (LintCode::SortMismatch, l001_sort_mismatch()),
        (LintCode::SortUnderivable, l002_sort_underivable()),
        (LintCode::AcyclicityViolation, l003_acyclicity_violation()),
        (LintCode::UnboundedSubterm, l101_unbounded_subterm()),
        (LintCode::MissingGuard, l102_missing_guard()),
        (LintCode::ConstantOverflow, l103_constant_overflow()),
        (LintCode::PhiIncomplete, l201_phi_incomplete()),
        (LintCode::PhiSortMismatch, l202_phi_sort_mismatch()),
        (LintCode::WidthBelowInference, l203_width_below_inference()),
        (LintCode::WidthMarginDropped, l204_width_margin_dropped()),
        (LintCode::ModelMissingValue, l301_model_missing_value()),
        (LintCode::ModelSortMismatch, l302_model_sort_mismatch()),
        (LintCode::FragmentMismatch, l401_fragment_mismatch()),
        (LintCode::LedgerEscape, l402_ledger_escape()),
        (
            LintCode::CertifiedWidthUnsound,
            l403_certified_width_unsound(),
        ),
        (
            LintCode::UsedWidthBelowCertificate,
            l404_used_width_below_certificate(),
        ),
        (LintCode::UncoveredVariable, l405_uncovered_variable()),
        (LintCode::DlFragmentMismatch, l501_dl_fragment_mismatch()),
        (LintCode::DlEdgeUnasserted, l502_dl_edge_unasserted()),
        (LintCode::DlCycleBroken, l503_dl_cycle_broken()),
        (LintCode::DlCycleNonNegative, l504_dl_cycle_non_negative()),
    ];

    let mut covered: HashSet<&'static str> = HashSet::new();
    for (code, report) in &cases {
        assert!(
            report.has(*code),
            "case for {} did not fire it:\n{report}",
            code.code()
        );
        covered.insert(code.code());
    }
    for &code in LintCode::all() {
        assert!(
            covered.contains(code.code()),
            "registered code {} has no firing corpus case",
            code.code()
        );
    }
    assert_eq!(
        covered.len(),
        LintCode::all().len(),
        "case table and registry disagree on size"
    );
}
