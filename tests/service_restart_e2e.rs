//! Crash-recovery and reactor-scale e2e against the real `staub` binary:
//! SIGKILL a persisting server and assert the restarted process answers
//! the pre-crash constraints straight from the replayed log — `dl/` and
//! `complete/` provenance intact, no lanes spawned — and that the epoll
//! reactor holds 512 concurrent idle connections on a two-worker pool.
//!
//! These spawn `staub serve` as a subprocess (rather than in-process
//! [`staub::service::Server`]) because SIGKILL semantics — no drop
//! handlers, no graceful drain, file buffers surviving only because each
//! append flushes — are exactly what the persistence layer claims to
//! survive, and only a real process death exercises them.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use staub::service::json::{self, Json};
use staub::service::{
    audit_reply, health_request, solve_request, Connection, Endpoint, EndpointStream,
};

/// A `staub serve` child with its bound address, killed on drop so a
/// failing assertion never leaks a daemon.
struct ServeProc {
    child: Child,
    addr: String,
}

impl ServeProc {
    /// Spawns `staub serve <args>` and blocks until the scripted
    /// `listening on <addr>` handshake arrives on stdout.
    fn spawn(args: &[&str]) -> ServeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_staub"))
            .arg("serve")
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn staub serve");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read boot handshake");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected boot handshake: {line:?}"))
            .to_string();
        // Keep draining stdout so the child can never block on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        ServeProc { child, addr }
    }

    fn connect(&self) -> Connection<EndpointStream> {
        let endpoint = Endpoint::Tcp(self.addr.clone());
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Connection::connect(&endpoint) {
                Ok(conn) => return conn,
                Err(e) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                    let _ = e;
                }
                Err(e) => panic!("connect to {}: {e}", self.addr),
            }
        }
    }

    /// SIGKILL — no drain, no drop handlers, buffers die with the process.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("staub-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn health(conn: &mut Connection<EndpointStream>) -> Json {
    json::parse(&conn.roundtrip(&health_request()).expect("health reply")).expect("health json")
}

/// `serve.solve` timer observations — incremented only when lanes run.
fn lane_solves(health: &Json) -> u64 {
    health
        .get("metrics")
        .and_then(|m| m.get("durations"))
        .and_then(|d| d.get("serve.solve"))
        .and_then(|s| s.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn winner_of(reply: &str) -> String {
    json::parse(reply)
        .expect("reply is json")
        .get("winner")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| panic!("reply names no winner: {reply}"))
}

#[test]
fn kill_and_restart_serves_precrash_verdicts_from_the_replayed_log() {
    let dir = fresh_dir("replay");
    let dir_str = dir.to_str().expect("utf-8 temp dir");
    // `--no-baseline` so the only possible trusted unsat for the parity
    // constraint is the certified complete lane — pinning `complete/`
    // provenance through the crash. Step budgets keep verdicts
    // deterministic across host speeds (the portfolio_diff idiom).
    let args = [
        "--addr",
        "tcp:127.0.0.1:0",
        "--persist",
        dir_str,
        "--no-baseline",
        "--threads",
        "2",
        "--timeout-ms",
        "30000",
        "--steps",
        "300000",
    ];

    // A planted difference-logic negative cycle, a parity-unsat LIA
    // constraint, and a satisfiable square: a `dl/` unsat, a `complete/`
    // unsat, and a `sat` whose model must survive the crash and pass
    // serve-time re-verification.
    let dl = "(declare-fun x () Int)(declare-fun y () Int)\
              (assert (<= (- x y) 1))(assert (< (- y x) (- 1)))(check-sat)";
    let parity = "(declare-fun x () Int)(declare-fun y () Int)\
                  (assert (= (+ (* 2 x) (* 2 y)) 7))(check-sat)";
    let square = "(declare-fun x () Int)(assert (= (* x x) 49))(check-sat)";
    // α-renamed twins for the post-crash round: same canonical
    // constraints, different bytes — they can only hit via the replayed
    // canonical-key cache, never via byte equality.
    let dl_renamed = "(declare-fun a () Int)(declare-fun b () Int)\
                      (assert (>= 1 (- a b)))(assert (<= (- b a) (- 2)))(check-sat)";
    let parity_renamed = "(declare-fun p () Int)(declare-fun q () Int)\
                          (assert (= (+ (* 2 p) (* 2 q)) 7))(check-sat)";
    let square_renamed = "(declare-fun z () Int)(assert (= 49 (* z z)))(check-sat)";

    let mut first = ServeProc::spawn(&args);
    {
        let mut conn = first.connect();
        for (id, text, verdict, lane) in [
            ("dl-cold", dl, "unsat", Some("dl/")),
            ("parity-cold", parity, "unsat", Some("complete/")),
            ("square-cold", square, "sat", None),
        ] {
            let reply = conn
                .roundtrip(&solve_request(id, text, None, None, false))
                .expect("solve");
            let audit = audit_reply(text, &reply);
            assert_eq!(audit.verdict, verdict, "{id}: {reply}");
            assert_eq!(audit.cache, "miss", "{id}: {reply}");
            assert!(audit.sound, "{id}: model failed the client audit: {reply}");
            if let Some(lane) = lane {
                let winner = winner_of(&reply);
                assert!(
                    winner.starts_with(lane),
                    "{id}: expected a {lane} winner, got {winner}"
                );
            }
        }
    }
    // Both appends flushed before their replies were written, so the
    // verdicts are on disk; now die without any shutdown path.
    first.kill();

    let second = ServeProc::spawn(&args);
    let mut conn = second.connect();

    // Warm start replayed both entries cleanly (the health persist block
    // is the observable for "restored from the log, not re-solved").
    let h = health(&mut conn);
    let persist = h.get("persist").expect("health has a persist block");
    let replayed = persist
        .get("replayed")
        .and_then(Json::as_u64)
        .expect("persist.replayed");
    assert!(
        replayed >= 3,
        "expected all three verdicts replayed, got {replayed}"
    );
    assert_eq!(
        persist.get("rejected").and_then(Json::as_u64),
        Some(0),
        "a clean kill between appends must not tear the log"
    );

    for (id, text, verdict, lane) in [
        ("dl-replayed", dl_renamed, "unsat", Some("dl/")),
        (
            "parity-replayed",
            parity_renamed,
            "unsat",
            Some("complete/"),
        ),
        ("square-replayed", square_renamed, "sat", None),
    ] {
        let reply = conn
            .roundtrip(&solve_request(id, text, None, None, false))
            .expect("solve");
        let audit = audit_reply(text, &reply);
        assert_eq!(audit.verdict, verdict, "{id}: {reply}");
        assert_eq!(
            audit.cache, "hit",
            "{id}: pre-crash verdict not served from the replayed cache: {reply}"
        );
        // For the sat twin this is the full soundness chain: the replayed
        // model was rebound onto fresh symbol names, re-verified server-
        // side before serving, and re-checked here by exact evaluation.
        assert!(
            audit.sound,
            "{id}: replayed model failed the audit: {reply}"
        );
        if let Some(lane) = lane {
            let winner = winner_of(&reply);
            assert!(
                winner.starts_with(lane),
                "{id}: replay lost provenance, got {winner}"
            );
        }
        // `stats:null` is emitted only on the lane-free hit path.
        assert!(
            reply.contains("\"stats\":null"),
            "{id}: cached reply carries lane stats: {reply}"
        );
    }

    // The decisive counter: the restarted server never ran a lane.
    let h = health(&mut conn);
    assert_eq!(
        lane_solves(&h),
        0,
        "restart spawned lanes for constraints the log already answers"
    );

    drop(conn);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The reactor acceptance floor: ≥512 concurrent idle connections held
/// open by a two-worker pool, observed through the health gauges. On a
/// thread-per-connection server this would be 512 parked threads; the
/// reactor serves them from epoll registrations.
#[cfg(target_os = "linux")]
#[test]
fn reactor_holds_512_idle_connections_on_a_two_worker_pool() {
    const IDLE: usize = 512;

    let server = ServeProc::spawn(&["--addr", "tcp:127.0.0.1:0", "--no-cache", "--workers", "2"]);
    let endpoint = Endpoint::Tcp(server.addr.clone());

    // Open and hold the idle fleet. Connects race the reactor's accept
    // loop and whatever socket pressure earlier test binaries left
    // behind (TIME_WAIT churn, backlog overflow), so each one retries
    // briefly rather than failing on the first refusal.
    let mut fleet = Vec::with_capacity(IDLE);
    for i in 0..IDLE {
        let deadline = Instant::now() + Duration::from_secs(10);
        let conn = loop {
            match std::net::TcpStream::connect(&server.addr) {
                Ok(conn) => break conn,
                Err(e) if Instant::now() >= deadline => panic!("idle connection {i}: {e}"),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        };
        fleet.push(conn);
    }

    // Poll health over one more connection until the reactor has
    // registered the whole fleet (accepts race the poll, hence the loop).
    let mut conn = Connection::connect(&endpoint).expect("health connection");
    let deadline = Instant::now() + Duration::from_secs(30);
    let open = loop {
        let h = health(&mut conn);
        let reactor = h.get("reactor").expect("health has a reactor block");
        assert_eq!(
            reactor.get("enabled").and_then(Json::as_bool),
            Some(true),
            "epoll reactor must be active on linux"
        );
        assert_eq!(
            reactor.get("workers").and_then(Json::as_u64),
            Some(2),
            "worker pool must stay at the configured size"
        );
        let open = reactor
            .get("open_connections")
            .and_then(Json::as_u64)
            .expect("reactor.open_connections");
        if open >= IDLE as u64 {
            break open;
        }
        assert!(
            Instant::now() < deadline,
            "reactor registered only {open}/{IDLE} connections in 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // The fleet is idle, so at most the health request occupies a worker.
    let h = health(&mut conn);
    let busy = h
        .get("reactor")
        .and_then(|r| r.get("busy"))
        .and_then(Json::as_u64)
        .expect("reactor.busy");
    assert!(busy <= 2, "idle fleet left {busy} workers busy");

    assert!(open >= IDLE as u64);
    drop(fleet);
}
