//! Integration tests of the termination-proving client (RQ3), spanning
//! `staub-termination`, `staub-core`, and `staub-solver`.

use std::time::Duration;

use staub::core::StaubConfig;
use staub::termination::{suite::suite_97, Program, TerminationProver, Verdict};

#[test]
fn suite_prover_is_sound_against_ground_truth() {
    let prover = TerminationProver::default();
    // A representative slice across families (every 7th program).
    for entry in suite_97().into_iter().step_by(7) {
        let outcome = prover.prove(&entry.program);
        if outcome.verdict == Verdict::Terminating {
            assert_ne!(
                entry.terminates,
                Some(false),
                "{}: proven terminating but ground truth diverges",
                entry.program.name
            );
            // Cross-check a few concrete executions.
            for start in [-1i64, 0, 5, 23] {
                let state = vec![start; entry.program.vars.len()];
                assert!(
                    entry.program.run(state, 200_000).is_some(),
                    "{}: proven terminating but loops from {start}",
                    entry.program.name
                );
            }
        }
    }
}

#[test]
fn staub_backend_matches_baseline_verdicts() {
    let baseline = TerminationProver::default();
    let with_staub = TerminationProver::with_staub(StaubConfig {
        timeout: Duration::from_millis(800),
        steps: 1_000_000,
        ..Default::default()
    });
    for entry in suite_97().into_iter().step_by(11) {
        let a = baseline.prove(&entry.program);
        let b = with_staub.prove(&entry.program);
        // STAUB may only improve: a Terminating verdict must never be lost
        // to unsoundness, and never gained on diverging programs.
        if entry.terminates == Some(false) {
            assert_ne!(a.verdict, Verdict::Terminating, "{}", entry.program.name);
            assert_ne!(b.verdict, Verdict::Terminating, "{}", entry.program.name);
        }
    }
}

#[test]
fn synthesized_rankings_hold_dynamically() {
    let prover = TerminationProver::default();
    for entry in suite_97().into_iter().take(30) {
        let outcome = prover.prove(&entry.program);
        if let Some(f) = &outcome.ranking {
            for start in [0i64, 3, 11, 40] {
                let state = vec![start; entry.program.vars.len()];
                assert!(
                    staub::termination::ranking::validate_on_trace(
                        &entry.program,
                        f,
                        state,
                        10_000
                    ),
                    "{}: ranking {f} violated from {start}",
                    entry.program.name
                );
            }
        }
    }
}

#[test]
fn parsed_and_built_programs_agree() {
    // The same program via the parser and via the builder must produce the
    // same proof outcome.
    let parsed = Program::parse("p", "vars x; while (x > 0) { x = x - 2; }").unwrap();
    use staub::termination::{Cmp, Cond, Expr};
    let built = Program::new(
        "p",
        vec!["x".to_string()],
        vec![Cond {
            lhs: Expr::Var(0),
            cmp: Cmp::Gt,
            rhs: Expr::Const(0),
        }],
        vec![Expr::Sub(Box::new(Expr::Var(0)), Box::new(Expr::Const(2)))],
    );
    assert_eq!(parsed, built);
    let prover = TerminationProver::default();
    assert_eq!(prover.prove(&parsed).verdict, prover.prove(&built).verdict);
}

#[test]
fn constraint_population_is_unsat_heavy() {
    // The paper calls this client "pessimistic": most emitted constraints
    // are unsat. Confirm the population shape on a slice of the suite.
    let prover = TerminationProver::default();
    let mut total = 0usize;
    let mut unsat = 0usize;
    for entry in suite_97().into_iter().step_by(5) {
        let outcome = prover.prove(&entry.program);
        for record in &outcome.constraints {
            total += 1;
            if record.result == "unsat" {
                unsat += 1;
            }
        }
    }
    assert!(total > 20, "enough constraints sampled");
    assert!(
        unsat * 5 >= total,
        "at least a fifth of client constraints are unsat ({unsat}/{total})"
    );
}
