//! Property tests for the solver: bit-blasted verdicts against brute-force
//! enumeration, and verified models for the arithmetic engines.

use proptest::prelude::*;
use staub::numeric::{BigInt, BitVecValue};
use staub::smtlib::{evaluate, Model, Op, Script, Sort, TermId, Value};
use staub::solver::{SatResult, Solver, SolverProfile};
use std::time::Duration;

const WIDTH: u32 = 4;

#[derive(Debug, Clone)]
enum BvExpr {
    Var(usize),
    Const(u8),
    Add(Box<BvExpr>, Box<BvExpr>),
    Mul(Box<BvExpr>, Box<BvExpr>),
    Xor(Box<BvExpr>, Box<BvExpr>),
    Neg(Box<BvExpr>),
    Udiv(Box<BvExpr>, Box<BvExpr>),
    Shl(Box<BvExpr>, Box<BvExpr>),
}

fn bv_expr(depth: u32) -> impl Strategy<Value = BvExpr> {
    let leaf = prop_oneof![
        (0usize..2).prop_map(BvExpr::Var),
        (0u8..16).prop_map(BvExpr::Const),
    ];
    leaf.prop_recursive(depth, 20, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BvExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BvExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BvExpr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BvExpr::Udiv(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BvExpr::Shl(Box::new(a), Box::new(b))),
            inner.prop_map(|a| BvExpr::Neg(Box::new(a))),
        ]
    })
}

fn emit(e: &BvExpr, script: &mut Script, vars: &[staub::smtlib::SymbolId]) -> TermId {
    let bin = |script: &mut Script, op: Op, a: &BvExpr, b: &BvExpr, vars: &[_]| {
        let ta = emit(a, script, vars);
        let tb = emit(b, script, vars);
        script.store_mut().app(op, &[ta, tb]).expect("well-sorted")
    };
    match e {
        BvExpr::Var(i) => script.store_mut().var(vars[*i]),
        BvExpr::Const(c) => script
            .store_mut()
            .bv(BitVecValue::new(BigInt::from(*c as i64), WIDTH)),
        BvExpr::Add(a, b) => bin(script, Op::BvAdd, a, b, vars),
        BvExpr::Mul(a, b) => bin(script, Op::BvMul, a, b, vars),
        BvExpr::Xor(a, b) => bin(script, Op::BvXor, a, b, vars),
        BvExpr::Udiv(a, b) => bin(script, Op::BvUdiv, a, b, vars),
        BvExpr::Shl(a, b) => bin(script, Op::BvShl, a, b, vars),
        BvExpr::Neg(a) => {
            let ta = emit(a, script, vars);
            script
                .store_mut()
                .app(Op::BvNeg, &[ta])
                .expect("well-sorted")
        }
    }
}

fn brute_force_sat(script: &Script) -> bool {
    let a = script.store().symbol("a").unwrap();
    let b = script.store().symbol("b").unwrap();
    for av in 0..16i64 {
        for bv in 0..16i64 {
            let mut m = Model::new();
            m.insert(a, Value::BitVec(BitVecValue::from_i64(av, WIDTH)));
            m.insert(b, Value::BitVec(BitVecValue::from_i64(bv, WIDTH)));
            if script
                .assertions()
                .iter()
                .all(|&t| evaluate(script.store(), t, &m) == Ok(Value::Bool(true)))
            {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bitblaster_agrees_with_brute_force(
        lhs in bv_expr(3),
        rhs in bv_expr(3),
        cmp in any::<u8>(),
        profile_cove in any::<bool>(),
    ) {
        let mut script = Script::new();
        let vars = vec![
            script.declare("a", Sort::BitVec(WIDTH)).unwrap(),
            script.declare("b", Sort::BitVec(WIDTH)).unwrap(),
        ];
        let tl = emit(&lhs, &mut script, &vars);
        let tr = emit(&rhs, &mut script, &vars);
        let op = match cmp % 5 {
            0 => Op::Eq,
            1 => Op::BvUlt,
            2 => Op::BvSle,
            3 => Op::BvSgt,
            _ => Op::BvSmulo,
        };
        let atom = script.store_mut().app(op, &[tl, tr]).unwrap();
        script.assert(atom);

        let truth = brute_force_sat(&script);
        let profile = if profile_cove { SolverProfile::Cove } else { SolverProfile::Zed };
        let solver = Solver::new(profile)
            .with_timeout(Duration::from_secs(5))
            .with_steps(4_000_000);
        match solver.solve(&script).result {
            SatResult::Sat(m) => {
                prop_assert!(truth, "solver sat, oracle unsat:\n{script}");
                for &t in script.assertions() {
                    prop_assert_eq!(
                        evaluate(script.store(), t, &m).unwrap(),
                        Value::Bool(true),
                        "model check:\n{}", script
                    );
                }
            }
            SatResult::Unsat => prop_assert!(!truth, "solver unsat, oracle sat:\n{script}"),
            SatResult::Unknown(r) => {
                prop_assert!(false, "4-bit constraint should always decide ({r:?})");
            }
        }
    }

    #[test]
    fn width_reduction_agrees_with_original(
        lhs in bv_expr(2),
        rhs in bv_expr(2),
    ) {
        // Build the same constraint at width 16 and check bvreduce's
        // verified answers against the wide solver.
        use staub::core::bvreduce;
        let widen = |e: &BvExpr| e.clone();
        let mut script = Script::new();
        let vars = vec![
            script.declare("a", Sort::BitVec(16)).unwrap(),
            script.declare("b", Sort::BitVec(16)).unwrap(),
        ];
        // Emit at width 16 by reusing the tree with wide constants.
        fn emit16(e: &BvExpr, script: &mut Script, vars: &[staub::smtlib::SymbolId]) -> TermId {
            match e {
                BvExpr::Var(i) => script.store_mut().var(vars[*i]),
                BvExpr::Const(c) => script
                    .store_mut()
                    .bv(BitVecValue::new(BigInt::from(*c as i64), 16)),
                BvExpr::Add(a, b) => bin16(script, Op::BvAdd, a, b, vars),
                BvExpr::Mul(a, b) => bin16(script, Op::BvMul, a, b, vars),
                BvExpr::Xor(a, b) => bin16(script, Op::BvXor, a, b, vars),
                BvExpr::Udiv(a, b) => bin16(script, Op::BvUdiv, a, b, vars),
                BvExpr::Shl(a, b) => bin16(script, Op::BvShl, a, b, vars),
                BvExpr::Neg(a) => {
                    let ta = emit16(a, script, vars);
                    script.store_mut().app(Op::BvNeg, &[ta]).expect("well-sorted")
                }
            }
        }
        fn bin16(
            script: &mut Script,
            op: Op,
            a: &BvExpr,
            b: &BvExpr,
            vars: &[staub::smtlib::SymbolId],
        ) -> TermId {
            let ta = emit16(a, script, vars);
            let tb = emit16(b, script, vars);
            script.store_mut().app(op, &[ta, tb]).expect("well-sorted")
        }
        let tl = emit16(&widen(&lhs), &mut script, &vars);
        let tr = emit16(&widen(&rhs), &mut script, &vars);
        let atom = script.store_mut().eq(tl, tr).unwrap();
        script.assert(atom);

        if let Some(width) = bvreduce::infer_reduction(&script) {
            if let Some(reduced) = bvreduce::reduce(&script, width) {
                let solver = Solver::new(SolverProfile::Zed)
                    .with_timeout(Duration::from_secs(5))
                    .with_steps(4_000_000);
                if let SatResult::Sat(narrow) = solver.solve(&reduced.script).result {
                    // Guarded narrow models must lift-and-verify.
                    let lifted = bvreduce::lift_and_verify(&script, &reduced, &narrow);
                    prop_assert!(
                        lifted.is_some(),
                        "guarded narrow model failed to verify:\n{}", script
                    );
                }
            }
        }
    }
}
