//! Property tests for scheduler cancellation: a deliberately hard NIA
//! baseline lane racing a trivially-bounded STAUB lane must observe the
//! sibling `CancelFlag` *within its step budget* — it stops because it was
//! cancelled, not because it ran out of steps or wall-clock. Budgets are
//! deterministic steps (the deadline is far too large to trip), so the
//! test does not flake under CI load.

use std::time::Duration;

use proptest::prelude::*;
use staub::benchgen::{generate, Benchmark, SuiteKind};
use staub::core::{
    run_one_with, BatchConfig, BatchVerdict, LaneVerdict, RunOptions, Session, StaubConfig,
};
use staub::solver::{Budget, Solver, SolverProfile};

/// Large enough that the interval-propagation baseline cannot exhaust it
/// in the time the bounded lane needs to win, so a baseline `Unknown` can
/// only mean cancellation.
const HARD_STEPS: u64 = 40_000_000;

/// The bounded lane must verify within this many steps for the instance to
/// count as "trivially sat" for STAUB.
const EASY_SCREEN_STEPS: u64 = 60_000;

/// The baseline must still be searching after this many steps for the
/// instance to count as "deliberately hard" — well over 3× the bounded
/// screen, so the race outcome is decided by steps, not scheduling jitter.
const HARD_SCREEN_STEPS: u64 = 200_000;

fn race_config() -> BatchConfig {
    BatchConfig {
        threads: 2,
        timeout: Duration::from_secs(120),
        steps: HARD_STEPS,
        escalations: Vec::new(),
        cancel_losers: true,
        retry: false,
        ..BatchConfig::default()
    }
}

/// A planted-sat NIA instance that is deliberately asymmetric, certified
/// by two deterministic step-budget screens: the bounded path verifies a
/// model within [`EASY_SCREEN_STEPS`] (trivially sat for STAUB), while the
/// baseline is still searching after [`HARD_SCREEN_STEPS`] (interval
/// search flounders — e.g. high-dimensional quadratic inequality systems
/// whose planted components sit outside the engine's enlarging bounds).
/// In the race the hard lane therefore *must* lose and be cancelled.
///
/// Roughly one suite draw in five contains such an instance, so the
/// search walks a window of seeds to keep the property test from going
/// vacuous.
fn hard_easy_instance(seed0: u64) -> Option<Benchmark> {
    let easy = StaubConfig {
        timeout: Duration::from_secs(120),
        steps: EASY_SCREEN_STEPS,
        ..Default::default()
    };
    let hard = Solver::new(SolverProfile::Zed)
        .with_timeout(Duration::from_secs(120))
        .with_steps(HARD_SCREEN_STEPS);
    (seed0..seed0 + 12).find_map(|seed| {
        generate(SuiteKind::QfNia, 24, seed)
            .into_iter()
            .filter(|b| b.expected == Some(true))
            .find(|b| {
                let budget = Budget::new(Duration::from_secs(120), EASY_SCREEN_STEPS);
                Session::new(easy.clone())
                    .try_bounded(&b.script, &budget)
                    .is_some()
                    && hard.solve(&b.script).result.is_unknown()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn hard_lane_observes_cancel_flag_within_step_budget(seed in 0u64..10_000) {
        let Some(bench) = hard_easy_instance(seed) else {
            // Some suite draws contain no certified hard/easy split; they
            // exercise nothing and are skipped.
            return Ok(());
        };
        let report = run_one_with(&bench.name, &bench.script, &race_config(), &RunOptions::default());

        // The trivially-bounded lane answers: a verified model.
        prop_assert!(
            matches!(report.verdict, BatchVerdict::Sat(_)),
            "{}: expected sat, got {}", bench.name, report.verdict.name()
        );
        let winner = report.winner_lane().expect("sat implies a winner");
        prop_assert!(
            winner.spec.is_staub(),
            "{}: the bounded lane must beat the floundering baseline", bench.name
        );

        // The hard lane stopped because it observed the flag, not because
        // its (huge) deterministic budget ran dry.
        let baseline = report.baseline_lane().expect("baseline lane planned");
        prop_assert_eq!(baseline.verdict, LaneVerdict::Cancelled);
        prop_assert!(
            baseline.steps_used < HARD_STEPS,
            "{}: baseline exhausted {} steps instead of observing the flag",
            bench.name, baseline.steps_used
        );
        prop_assert!(
            baseline.cancel_latency.is_some(),
            "{}: cancellation latency must be recorded", bench.name
        );
    }
}

/// Deterministic companion: the scheduler returns only after every lane
/// joined (scoped threads), so all outcomes are present and exactly the
/// losers carry a cancellation record.
#[test]
fn losers_are_cancelled_and_no_lane_outlives_the_batch() {
    // Seed 10 is a known-certified draw (nia/quadsys/0002).
    let bench = hard_easy_instance(10).expect("certified hard/easy instance exists");
    let config = BatchConfig {
        // Full fan-out: baseline + x1 + x2 + x4.
        escalations: vec![2, 4],
        ..race_config()
    };
    let report = run_one_with(&bench.name, &bench.script, &config, &RunOptions::default());
    assert!(matches!(report.verdict, BatchVerdict::Sat(_)));
    let winner_idx = report.winner.expect("winner");
    for (i, lane) in report.lanes.iter().enumerate() {
        if i == winner_idx {
            assert!(lane.verdict.is_sound());
            assert!(lane.cancel_latency.is_none());
        } else {
            // A loser either got cancelled (and says when) or had already
            // finished unsoundly before the winner landed; it never holds
            // the batch open past its own budget.
            assert!(!lane.verdict.is_sound() || lane.elapsed <= report.wall);
            if lane.verdict == LaneVerdict::Cancelled {
                assert!(lane.cancel_latency.is_some());
                assert!(lane.steps_used < HARD_STEPS);
            }
        }
    }
}
