//! Differential tests for the certified complete lane: on the unsat-biased
//! linear corpus, a scheduler run whose *only* possible source of unsat is
//! a promoted complete lane must agree with the sequential unbounded
//! baseline path wherever both decide, and every promoted unsat must carry
//! `complete/…` provenance backed by a certificate that lints clean.
//!
//! The property test closes the loop on certificate staleness: taking a
//! certified script's `BoundCertificate` and re-checking it against a
//! variant whose coefficient grew past the certified ledger must trip the
//! independent `L4xx` re-derivation (the lint never trusts the claimed
//! ledger — it recomputes its own from the script it is handed).

use std::time::Duration;

use proptest::prelude::*;
use staub::benchgen::generate_linear;
use staub::core::{check, run_batch_with, BatchConfig, BatchItem, BatchVerdict, RunOptions};
use staub::lint::LintCode;
use staub::smtlib::Script;

const STEPS: u64 = 400_000;
const TIMEOUT: Duration = Duration::from_secs(30);

/// No baseline, no escalations: `Unsat` can only come from a promoted
/// complete lane, `Sat` only from a lift-verified bounded model.
fn complete_only_config() -> BatchConfig {
    BatchConfig {
        threads: 2,
        timeout: TIMEOUT,
        steps: STEPS,
        escalations: Vec::new(),
        include_baseline: false,
        cancel_losers: false,
        retry: false,
        // These tests pin *complete-lane* (certified-width) behaviour;
        // some generated families are difference-logic-shaped and would
        // otherwise be decided by the DL lane instead.
        dl: false,
        ..BatchConfig::default()
    }
}

/// The sequential-unbounded reference: a baseline lane on the original
/// constraint (plus the usual STAUB lanes, which cannot produce unsound
/// verdicts either way).
fn reference_config() -> BatchConfig {
    BatchConfig {
        include_baseline: true,
        ..complete_only_config()
    }
}

fn items(suite: &[staub::benchgen::Benchmark]) -> Vec<BatchItem> {
    suite
        .iter()
        .map(|b| BatchItem {
            name: b.name.clone(),
            script: b.script.clone(),
        })
        .collect()
}

/// Wherever both the complete-lane-only run and the unbounded reference
/// run decide, they agree — and both agree with ground truth everywhere.
#[test]
fn complete_lane_verdicts_match_sequential_unbounded() {
    let suite = generate_linear(24, 0x51E7, 6);
    let batch = items(&suite);
    let complete = run_batch_with(&batch, &complete_only_config(), &RunOptions::default());
    let reference = run_batch_with(&batch, &reference_config(), &RunOptions::default());
    for ((b, c), r) in suite.iter().zip(&complete).zip(&reference) {
        let expected = b.expected.expect("linear corpus has exact ground truth");
        for (path, report) in [("complete-only", c), ("reference", r)] {
            match &report.verdict {
                BatchVerdict::Sat(_) => {
                    assert!(expected, "{} ({path}): sat but ground truth unsat", b.name);
                }
                BatchVerdict::Unsat => {
                    assert!(!expected, "{} ({path}): unsat but ground truth sat", b.name);
                }
                _ => {}
            }
        }
        let decided = |v: &BatchVerdict| matches!(v, BatchVerdict::Sat(_) | BatchVerdict::Unsat);
        if decided(&c.verdict) && decided(&r.verdict) {
            assert_eq!(
                c.verdict.name(),
                r.verdict.name(),
                "{}: complete lane diverges from the unbounded path",
                b.name
            );
        }
    }
}

/// Pure-LIA unsat instances are exactly the population the complete lane
/// exists for: each must resolve to trusted `Unsat` with `complete/…`
/// provenance and a certificate that passes the L4xx lints at the width
/// the lane actually used.
#[test]
fn lia_unsat_instances_promote_with_complete_provenance() {
    let suite = generate_linear(24, 0xB0DE, 5);
    let batch = items(&suite);
    let reports = run_batch_with(&batch, &complete_only_config(), &RunOptions::default());
    let mut promoted = 0;
    for (b, report) in suite.iter().zip(&reports) {
        let pure_lia = matches!(b.family, "parity" | "interval");
        if !(pure_lia && b.expected == Some(false)) {
            continue;
        }
        assert_eq!(
            report.verdict.name(),
            "unsat",
            "{}: certified-unsat instance did not promote",
            b.name
        );
        assert_eq!(report.fragment, "lia", "{}", b.name);
        let p = report.provenance().expect("unsat has a winning lane");
        assert!(
            p.label.starts_with("complete/"),
            "{}: unsat provenance {p:?} is not a complete lane",
            b.name
        );
        let cert = staub::core::certify(&b.script);
        let width = cert.certified_width.expect("pure LIA certifies");
        let lint = check::check_certificate(&b.script, &cert, Some(width));
        assert!(
            lint.is_clean(),
            "{}: certificate lints dirty:\n{lint}",
            b.name
        );
        promoted += 1;
    }
    assert!(promoted >= 5, "corpus too thin: only {promoted} promotions");
}

/// Non-LIA instances never yield unsat from the complete-only run — the
/// lane is planned solely for the certified pure-LIA fragment.
#[test]
fn non_lia_instances_never_promote() {
    let suite = generate_linear(24, 0xFA11, 5);
    let batch = items(&suite);
    let reports = run_batch_with(&batch, &complete_only_config(), &RunOptions::default());
    for (b, report) in suite.iter().zip(&reports) {
        if matches!(b.family, "gap" | "mixed") {
            assert_ne!(
                report.verdict.name(),
                "unsat",
                "{}: uncertified fragment produced a trusted unsat",
                b.name
            );
        }
    }
}

/// A parity script parameterized by seed, with one coefficient scale knob.
fn parity_script(a: i64, b: i64, rhs: i64) -> Script {
    Script::parse(&format!(
        "(declare-fun x () Int)(declare-fun y () Int)
         (assert (= (+ (* {a} x) (* {b} y)) {rhs}))
         (check-sat)"
    ))
    .expect("parity script parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Growing one coefficient past the certified ledger invalidates the
    /// stale certificate: the L4xx re-derivation sees larger entry bits
    /// than the claim and reports a ledger escape.
    #[test]
    fn coefficient_above_ledger_rejects_stale_certificate(seed in 0u64..10_000) {
        let a = 2 + (seed % 13) as i64 * 2;
        let b = 2 + (seed / 13 % 11) as i64 * 2;
        let rhs = (seed % 29) as i64 * 2 + 1;
        let script = parity_script(a, b, rhs);
        let cert = staub::core::certify(&script);
        let width = cert.certified_width.expect("pure LIA certifies");
        prop_assert!(check::check_certificate(&script, &cert, Some(width)).is_clean());

        // Same shape, but one coefficient's bit-length now exceeds the
        // ledger's max_entry_bits (still even, so still genuinely unsat —
        // the certificate is stale, not the verdict).
        let grown = a << (cert.ledger.max_entry_bits + 1);
        let perturbed = parity_script(grown, b, rhs);
        let report = check::check_certificate(&perturbed, &cert, Some(width));
        prop_assert!(!report.is_clean(), "stale certificate passed:\n{report}");
        prop_assert!(
            report.has(LintCode::LedgerEscape),
            "expected L402 ledger escape:\n{report}"
        );
    }
}
