//! Integration properties for the observability layer and the front-end
//! depth guard: deep nests round-trip below the cap and fail with a
//! structured error above it, every batch JSONL record carries a
//! well-formed `stats` block, and solver work counters are monotone in
//! the step budget.

use std::time::Duration;

use proptest::prelude::*;
use staub::benchgen::{generate, SuiteKind};
use staub::core::{run_batch_with, BatchConfig, BatchItem, RunOptions};
use staub::smtlib::{ParseErrorKind, Script};
use staub::solver::{SatResult, Solver, SolverProfile, SolverStats};

/// `(assert (not (not ... p)))` nested `depth` deep, as source text.
fn nested_nots(depth: usize) -> String {
    let mut s = String::from("(set-logic QF_LIA)(declare-fun p () Bool)(assert ");
    s.push_str(&"(not ".repeat(depth));
    s.push('p');
    s.push_str(&")".repeat(depth));
    s.push_str(")(check-sat)");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The depth cap is a sharp boundary: nests below it parse, print,
    /// and re-parse to a fixed point; pushing the same shape past the cap
    /// yields `MaxDepthExceeded` — a structured error, not a crash.
    #[test]
    fn depth_guard_is_a_sharp_boundary(depth in 1usize..120) {
        let cap = 128;
        let script = Script::parse_with_max_depth(&nested_nots(depth), cap).unwrap();
        let printed = script.to_string();
        let reparsed = Script::parse_with_max_depth(&printed, cap).unwrap();
        prop_assert_eq!(reparsed.to_string(), printed);

        let err = Script::parse_with_max_depth(&nested_nots(cap + depth), cap).unwrap_err();
        prop_assert_eq!(err.kind(), ParseErrorKind::MaxDepthExceeded);
    }
}

/// Every JSONL record the scheduler emits has a `stats` object with the
/// stage spans and one entry per lane carrying all twelve solver
/// counters, and the line is balanced (a cheap well-formedness check
/// that catches missed commas/braces in the hand-rolled serializer).
#[test]
fn batch_jsonl_stats_block_is_well_formed() {
    let items: Vec<BatchItem> = generate(SuiteKind::QfLia, 4, 0xa11)
        .into_iter()
        .map(|b| BatchItem {
            name: b.name,
            script: b.script,
        })
        .collect();
    let config = BatchConfig {
        threads: 2,
        timeout: Duration::from_millis(500),
        steps: 200_000,
        cancel_losers: false,
        ..BatchConfig::default()
    };
    let reports = run_batch_with(&items, &config, &RunOptions::default());
    assert_eq!(reports.len(), 4);
    for report in &reports {
        let line = report.to_jsonl();
        assert!(
            line.contains("\"stats\":{\"stages\":{\"pre_ms\":"),
            "missing stats block: {line}"
        );
        assert!(line.contains("\"lanes\":["), "missing lanes array: {line}");
        for (name, _) in SolverStats::default().fields() {
            assert!(
                line.contains(&format!("\"{name}\":")),
                "missing counter {name}: {line}"
            );
        }
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces: {line}");
        assert_eq!(
            line.matches('[').count(),
            line.matches(']').count(),
            "unbalanced brackets: {line}"
        );
    }
}

/// The solver's work counters are monotone in the deterministic step
/// budget: a run with a larger budget performs a superset of the work of
/// a smaller-budget run on the same input (the engines are deterministic,
/// so the smaller run is a prefix of the larger one).
#[test]
fn solver_counters_are_monotone_in_step_budget() {
    let benchmarks = generate(SuiteKind::QfNia, 6, 0xbeef);
    let mut compared = 0;
    for b in &benchmarks {
        let small = Solver::new(SolverProfile::Zed)
            .with_timeout(Duration::from_secs(60))
            .with_steps(5_000)
            .solve(&b.script);
        let large = Solver::new(SolverProfile::Zed)
            .with_timeout(Duration::from_secs(60))
            .with_steps(50_000)
            .solve(&b.script);
        assert!(
            small.stats.le(&large.stats),
            "{}: counters regressed when the budget grew:\n  small: {}\n  large: {}",
            b.name,
            small.stats,
            large.stats
        );
        if matches!(small.result, SatResult::Unknown(_)) {
            compared += 1;
        }
    }
    // The suite must include at least one instance the small budget could
    // not finish, or the property is vacuous (equal stats on both sides).
    assert!(compared > 0, "every instance finished within 5k steps");
}
