//! Differential property tests for incremental [`Session`]s: a warm
//! session driven through a random `assert`/`push`/`pop`/`check` tape must
//! return the same verdict at every `check` as from-scratch solving of the
//! combined assertion stack — including after pop-then-re-assert, where a
//! stale learned clause or saved phase would be easiest to smuggle in.
//!
//! `Sat` models are additionally required to be lint-clean (the
//! `staub-lint` model-shape checks) and to satisfy the active assertions
//! under exact evaluation.

use proptest::prelude::*;
use staub::core::{Session, StaubConfig, StaubError, StaubOutcome};
use staub::smtlib::{evaluate, Script, Value};
use std::time::Duration;

/// One step of the incremental-scripting tape.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Assert the fragment-pool entry with this index (mod pool size).
    Assert(usize),
    Push,
    Pop,
    Check,
}

/// Base declarations shared by every LIA/NIA tape.
const INT_DECLS: &str = "(declare-fun v0 () Int)(declare-fun v1 () Int)";

/// Assertion fragments over `v0`/`v1`. Mixing linear and nonlinear atoms
/// exercises both the bounded (bit-blasted) path and the arithmetic
/// fallback; the squares force translation widths past the constants.
const INT_POOL: &[&str] = &[
    "(assert (<= v0 9))",
    "(assert (>= v0 (- 9)))",
    "(assert (<= v1 9))",
    "(assert (>= v1 (- 9)))",
    "(assert (= (+ v0 v1) 7))",
    "(assert (> v1 v0))",
    "(assert (= (* v0 v0) 49))",
    "(assert (= (* v1 v1) 16))",
    "(assert (= (- v0 v1) 11))",
    "(assert (< (+ v0 (* 2 v1)) 5))",
];

/// Base declarations for the bitvector tapes.
const BV_DECLS: &str = "(declare-fun a () (_ BitVec 8))(declare-fun b () (_ BitVec 8))";

/// Assertion fragments over 8-bit `a`/`b`: already-bounded constraints
/// take the direct solving path, so these tapes pin down warm-start
/// soundness of the engine itself (no translation in the way).
const BV_POOL: &[&str] = &[
    "(assert (bvule a #x40))",
    "(assert (bvult #x02 a))",
    "(assert (= (bvadd a b) #x10))",
    "(assert (= (bvmul a #x03) #x15))",
    "(assert (bvsle b #x20))",
    "(assert (= (bvsub a b) #x05))",
    "(assert (bvult b a))",
    "(assert (= (bvand a #x0f) #x07))",
];

fn step_strategy(pool_len: usize) -> impl Strategy<Value = Step> {
    // Repeated arms bias the tape toward asserts and checks (the shim's
    // `prop_oneof!` draws arms uniformly — it has no weighted form).
    prop_oneof![
        (0..pool_len).prop_map(Step::Assert),
        (0..pool_len).prop_map(Step::Assert),
        Just(Step::Push),
        Just(Step::Pop),
        (0..pool_len).prop_map(Step::Assert),
        Just(Step::Check),
        (0..pool_len).prop_map(Step::Assert),
        Just(Step::Check),
    ]
}

fn config() -> StaubConfig {
    StaubConfig {
        timeout: Duration::from_secs(5),
        steps: 1_000_000,
        ..Default::default()
    }
}

/// Replays `steps` against one warm session and a mirrored frame stack;
/// every `Check` is compared against a cold from-scratch run.
fn run_tape(decls: &str, pool: &[&str], steps: &[Step]) -> Result<(), TestCaseError> {
    let mut session = Session::new(config());
    session.assert_text(decls).expect("declarations parse");
    // The mirror reproduces `Session`'s combined source byte for byte
    // (fragment + newline), so the cold script's symbol store has the
    // same layout as the one the session's models are keyed by.
    let mut frames: Vec<Vec<&str>> = vec![vec![decls]];
    let mut checks = 0u32;

    // Every tape ends with an assert + check, so no run is vacuous.
    for step in steps.iter().chain([&Step::Assert(0), &Step::Check]) {
        match *step {
            Step::Assert(i) => {
                let fragment = pool[i % pool.len()];
                session.assert_text(fragment).expect("pool fragment parses");
                frames.last_mut().expect("base frame").push(fragment);
            }
            Step::Push => {
                session.push();
                frames.push(Vec::new());
            }
            Step::Pop => {
                let popped = session.pop();
                prop_assert_eq!(popped, frames.len() > 1, "pop refusal disagrees");
                if popped {
                    frames.pop();
                }
            }
            Step::Check => {
                let mut combined = String::new();
                for fragment in frames.iter().flatten() {
                    combined.push_str(fragment);
                    combined.push('\n');
                }
                if !combined.contains("(assert") {
                    prop_assert_eq!(
                        session.check().unwrap_err(),
                        StaubError::EmptyScript,
                        "empty stack must refuse the check"
                    );
                    continue;
                }
                checks += 1;
                let script = Script::parse(&combined).expect("mirror parses");
                let warm = session.check().expect("non-empty stack");
                // A second check with nothing asserted in between must
                // agree: the warm re-check path reuses learned clauses,
                // saved phases, and (post-inprocessing) a strengthened
                // clause database, none of which may flip the verdict.
                let rewarm = session.check().expect("non-empty stack");
                prop_assert_eq!(
                    warm.verdict_name(),
                    rewarm.verdict_name(),
                    "warm re-check diverges from itself after {} checks on:\n{}",
                    checks,
                    combined
                );
                let cold = Session::new(config()).run(&script).expect("non-empty");
                prop_assert_eq!(
                    warm.verdict_name(),
                    cold.verdict_name(),
                    "warm/cold divergence after {} checks on:\n{}",
                    checks,
                    combined
                );
                if let StaubOutcome::Sat { model, .. } = &warm {
                    let lint = staub::lint::model_shape(&script, model);
                    prop_assert!(lint.is_clean(), "model shape findings:\n{lint}");
                    for &a in script.assertions() {
                        prop_assert_eq!(
                            evaluate(script.store(), a, model).unwrap(),
                            Value::Bool(true),
                            "warm model fails exact evaluation on:\n{}",
                            combined
                        );
                    }
                }
            }
        }
    }
    prop_assert!(checks > 0, "final forced assert+check did not run");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn lia_sessions_agree_with_from_scratch(
        steps in proptest::collection::vec(step_strategy(INT_POOL.len()), 1..14),
    ) {
        run_tape(INT_DECLS, INT_POOL, &steps)?;
    }

    #[test]
    fn bv_sessions_agree_with_from_scratch(
        steps in proptest::collection::vec(step_strategy(BV_POOL.len()), 1..14),
    ) {
        run_tape(BV_DECLS, BV_POOL, &steps)?;
    }
}

/// The directed pop-then-re-assert scenario from the issue, outside the
/// generator so it cannot rotate out of the corpus: assert, contradict
/// under a push, pop, then re-assert a *different* constraint on the same
/// symbols — the warm engine must forget the popped contradiction.
#[test]
fn pop_then_reassert_matches_cold() {
    let mut session = Session::new(config());
    session.assert_text(INT_DECLS).unwrap();
    session.assert_text("(assert (>= v0 0))").unwrap();
    session.assert_text("(assert (<= v0 10))").unwrap();
    session.assert_text("(assert (= (* v0 v0) 49))").unwrap();
    assert_eq!(session.check().unwrap().verdict_name(), "sat");
    session.push();
    session.assert_text("(assert (>= v0 8))").unwrap();
    assert_eq!(session.check().unwrap().verdict_name(), "unsat");
    assert!(session.pop());
    session.push();
    session.assert_text("(assert (<= v0 7))").unwrap();
    match session.check().unwrap() {
        StaubOutcome::Sat { model, .. } => {
            let script = session.script().expect("non-empty stack").clone();
            let v0 = script.store().symbol("v0").unwrap();
            let x = model.get(v0).unwrap().as_int().unwrap().to_i64().unwrap();
            assert_eq!(x, 7, "only witness in [0, 7] with x^2 = 49");
        }
        other => panic!("expected sat, got {other:?}"),
    }
}
