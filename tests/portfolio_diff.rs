//! Differential tests for the batch portfolio scheduler: on every benchgen
//! corpus instance, the scheduler's verdict must equal the sequential
//! [`portfolio::measure`] path's, and every `Sat` winner must pass the
//! `staub-lint` model-shape checks plus exact evaluation.
//!
//! Determinism: both paths run under identical deterministic *step* budgets
//! with a wall-clock deadline far too large to trip, so verdicts do not
//! depend on host speed or CI load.

use std::time::Duration;

use staub::benchgen::{generate, SuiteKind};
use staub::core::{
    portfolio, run_batch_with, BatchConfig, BatchItem, BatchVerdict, LaneVerdict, PortfolioReport,
    RunOptions, Staub, StaubConfig,
};
use staub::smtlib::{evaluate, Value};

const STEPS: u64 = 300_000;
const TIMEOUT: Duration = Duration::from_secs(30);
const SEED: u64 = 0xD1FF;
const COUNT: usize = 12;

fn sequential_tool() -> Staub {
    Staub::new(StaubConfig {
        timeout: TIMEOUT,
        steps: STEPS,
        ..Default::default()
    })
}

/// A scheduler configuration whose lane fan-out is exactly the pair of
/// legs `measure` runs — baseline plus STAUB at the inferred width, no
/// escalations, no cancellation, no retry — so the two paths are
/// step-for-step comparable.
fn mirror_config() -> BatchConfig {
    BatchConfig {
        threads: 3,
        timeout: TIMEOUT,
        steps: STEPS,
        escalations: Vec::new(),
        cancel_losers: false,
        retry: false,
        ..BatchConfig::default()
    }
}

/// The portfolio verdict implied by a sequential measurement.
fn sequential_verdict(report: &PortfolioReport) -> &'static str {
    if report.verified || report.baseline_result.is_sat() {
        "sat"
    } else if report.baseline_result.is_unsat() {
        "unsat"
    } else {
        "unknown"
    }
}

fn corpus(kind: SuiteKind) -> (Vec<staub::benchgen::Benchmark>, Vec<BatchItem>) {
    let benchmarks = generate(kind, COUNT, SEED);
    let items = benchmarks
        .iter()
        .map(|b| BatchItem {
            name: b.name.clone(),
            script: b.script.clone(),
        })
        .collect();
    (benchmarks, items)
}

/// Scheduler and sequential verdicts agree on the full corpus, and both
/// are consistent with ground truth where the generator knows it.
#[test]
fn scheduler_agrees_with_sequential_measure() {
    let tool = sequential_tool();
    let config = mirror_config();
    for kind in SuiteKind::all() {
        let (benchmarks, items) = corpus(kind);
        let reports = run_batch_with(&items, &config, &RunOptions::default());
        assert_eq!(reports.len(), benchmarks.len());
        for (b, batch) in benchmarks.iter().zip(&reports) {
            let sequential = portfolio::measure(&tool, &b.script);
            assert_eq!(
                sequential_verdict(&sequential),
                batch.verdict.name(),
                "{}: scheduler and sequential paths diverge",
                b.name
            );
            match (&batch.verdict, b.expected) {
                (BatchVerdict::Sat(_), Some(expected)) => {
                    assert!(expected, "{}: sat but ground truth is unsat", b.name);
                }
                (BatchVerdict::Unsat, Some(expected)) => {
                    assert!(!expected, "{}: unsat but ground truth is sat", b.name);
                }
                _ => {}
            }
        }
    }
}

/// Every `Sat` winner's model passes `staub-lint`'s shape checks and
/// exactly satisfies the *original* constraint.
#[test]
fn scheduler_sat_winners_pass_lint_and_evaluation() {
    let config = mirror_config();
    for kind in SuiteKind::all() {
        let (benchmarks, items) = corpus(kind);
        for (b, report) in
            benchmarks
                .iter()
                .zip(run_batch_with(&items, &config, &RunOptions::default()))
        {
            let BatchVerdict::Sat(model) = &report.verdict else {
                continue;
            };
            let lint = staub::lint::model_shape(&b.script, model);
            assert!(lint.is_clean(), "{}: model shape findings:\n{lint}", b.name);
            for &a in b.script.assertions() {
                assert_eq!(
                    evaluate(b.script.store(), a, model).unwrap(),
                    Value::Bool(true),
                    "{}: winner model fails exact evaluation",
                    b.name
                );
            }
        }
    }
}

/// Structural invariants of a no-cancellation run: every planned lane
/// reports a real outcome (nothing skipped, nothing cancelled), and every
/// decided constraint has a sound winner lane.
#[test]
fn all_lanes_complete_without_cancellation() {
    let config = mirror_config();
    let (_, items) = corpus(SuiteKind::QfNia);
    for report in run_batch_with(&items, &config, &RunOptions::default()) {
        assert!(
            !report.lanes.is_empty(),
            "{}: no lanes planned",
            report.name
        );
        for lane in &report.lanes {
            assert_ne!(
                lane.verdict,
                LaneVerdict::Cancelled,
                "{}: lane {} cancelled despite cancel_losers=false",
                report.name,
                lane.spec.label()
            );
            assert!(lane.cancel_latency.is_none());
        }
        if let Some(winner) = report.winner_lane() {
            assert!(
                winner.verdict.is_sound(),
                "{}: winner {} is not a sound verdict",
                report.name,
                winner.spec.label()
            );
        }
    }
}
