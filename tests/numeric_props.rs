//! Property-based tests for the numeric substrate, cross-checked against
//! the platform's `i128` and IEEE-754 `f32`/`f64` arithmetic.

use proptest::prelude::*;
use staub::numeric::{BigInt, BigRational, BitVecValue, RoundingMode, SoftFloat};

fn big(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in -(1i128 << 100)..(1i128 << 100), b in -(1i128 << 100)..(1i128 << 100)) {
        prop_assert_eq!(&big(a) + &big(b), big(a + b));
    }

    #[test]
    fn bigint_mul_matches_i128(a in -(1i128 << 60)..(1i128 << 60), b in -(1i128 << 60)..(1i128 << 60)) {
        prop_assert_eq!(&big(a) * &big(b), big(a * b));
    }

    #[test]
    fn bigint_div_rem_identity(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = big(a as i128).div_rem_trunc(&big(b as i128));
        prop_assert_eq!(&(&q * &big(b as i128)) + &r, big(a as i128));
        prop_assert_eq!(q, big((a as i128) / (b as i128)));
        prop_assert_eq!(r, big((a as i128) % (b as i128)));
    }

    #[test]
    fn bigint_euclid_remainder_nonnegative(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = big(a as i128).div_rem_euclid(&big(b as i128));
        prop_assert!(!r.is_negative());
        prop_assert!(r < big((b as i128).abs()));
        prop_assert_eq!(&(&q * &big(b as i128)) + &r, big(a as i128));
    }

    #[test]
    fn bigint_string_round_trip(a in any::<i128>()) {
        let v = big(a);
        let s = v.to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), v);
    }

    #[test]
    fn bigint_shift_is_pow2_mul(a in -(1i128 << 80)..(1i128 << 80), k in 0usize..40) {
        prop_assert_eq!(big(a).shl_bits(k), &big(a) * &big(1i128 << k));
    }

    #[test]
    fn bigint_ordering_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
    }

    #[test]
    fn rational_field_laws(an in -1000i64..1000, ad in 1i64..100, bn in -1000i64..1000, bd in 1i64..100) {
        let a = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let b = BigRational::new(BigInt::from(bn), BigInt::from(bd));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a - &b) + &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
    }

    #[test]
    fn rational_floor_ceil_bracket(n in -10_000i64..10_000, d in 1i64..500) {
        let v = BigRational::new(BigInt::from(n), BigInt::from(d));
        let floor = v.floor();
        let ceil = v.ceil();
        prop_assert!(BigRational::from_int(floor.clone()) <= v);
        prop_assert!(BigRational::from_int(ceil.clone()) >= v);
        let diff = &ceil - &floor;
        prop_assert!(diff == BigInt::zero() || diff == BigInt::one());
    }

    #[test]
    fn rational_dig_definition(n in -5000i64..5000, d in 1i64..2000) {
        let v = BigRational::new(BigInt::from(n), BigInt::from(d));
        if let Some(k) = v.dig() {
            // 2^k * v is an integer, and k is minimal.
            let scaled = &v * &BigRational::from_int(BigInt::one().shl_bits(k));
            prop_assert!(scaled.is_integer());
            if k > 0 {
                let under = &v * &BigRational::from_int(BigInt::one().shl_bits(k - 1));
                prop_assert!(!under.is_integer());
            }
        }
    }

    #[test]
    fn bitvec_ops_match_wrapping_i64(a in any::<i32>(), b in any::<i32>()) {
        let (a, b) = (a as i64, b as i64);
        let x = BitVecValue::from_i64(a, 32);
        let y = BitVecValue::from_i64(b, 32);
        prop_assert_eq!(x.bvadd(&y).to_signed(), big(((a as i32).wrapping_add(b as i32)) as i128));
        prop_assert_eq!(x.bvsub(&y).to_signed(), big(((a as i32).wrapping_sub(b as i32)) as i128));
        prop_assert_eq!(x.bvmul(&y).to_signed(), big(((a as i32).wrapping_mul(b as i32)) as i128));
        prop_assert_eq!(x.bvneg().to_signed(), big(((a as i32).wrapping_neg()) as i128));
        prop_assert_eq!(x.scmp(&y), (a as i32).cmp(&(b as i32)));
        prop_assert_eq!(x.ucmp(&y), (a as u32).cmp(&(b as u32)));
    }

    #[test]
    fn bitvec_bitwise_match_i32(a in any::<i32>(), b in any::<i32>()) {
        let x = BitVecValue::from_i64(a as i64, 32);
        let y = BitVecValue::from_i64(b as i64, 32);
        prop_assert_eq!(x.bvand(&y).to_signed(), big((a & b) as i128));
        prop_assert_eq!(x.bvor(&y).to_signed(), big((a | b) as i128));
        prop_assert_eq!(x.bvxor(&y).to_signed(), big((a ^ b) as i128));
        prop_assert_eq!(x.bvnot().to_signed(), big((!a) as i128));
    }

    #[test]
    fn bitvec_overflow_predicates_match_checked(a in any::<i8>(), b in any::<i8>()) {
        let x = BitVecValue::from_i64(a as i64, 8);
        let y = BitVecValue::from_i64(b as i64, 8);
        prop_assert_eq!(x.bvsaddo(&y), a.checked_add(b).is_none());
        prop_assert_eq!(x.bvssubo(&y), a.checked_sub(b).is_none());
        prop_assert_eq!(x.bvsmulo(&y), a.checked_mul(b).is_none());
        prop_assert_eq!(x.bvnego(), a.checked_neg().is_none());
        if b != 0 {
            prop_assert_eq!(x.bvsdivo(&y), a.checked_div(b).is_none());
            prop_assert_eq!(x.bvsdiv(&y).to_signed(), big(a.wrapping_div(b) as i128));
            prop_assert_eq!(x.bvsrem(&y).to_signed(), big(a.wrapping_rem(b) as i128));
        }
    }

    #[test]
    fn softfloat_rounding_matches_f32(n in -(1i64 << 40)..(1i64 << 40), e in -30i64..30) {
        // v = n * 2^e, exactly representable as a rational.
        let v = BigRational::dyadic(BigInt::from(n), e);
        let ours = SoftFloat::from_rational(8, 24, &v);
        let hw = v.to_f64() as f32;
        if hw.is_infinite() {
            prop_assert!(ours.is_infinite() || !ours.is_finite());
        } else {
            let got = ours.to_rational().unwrap().to_f64() as f32;
            prop_assert_eq!(got.to_bits(), hw.to_bits(), "value {}", v);
        }
    }

    #[test]
    fn softfloat_add_matches_f32(a in any::<i32>(), b in any::<i32>()) {
        // Interpret bit patterns as f32s; skip NaN inputs (semantics match
        // but payloads are canonicalized).
        let fa = f32::from_bits(a as u32);
        let fb = f32::from_bits(b as u32);
        prop_assume!(!fa.is_nan() && !fb.is_nan());
        let sa = sf_from_f32(fa);
        let sb = sf_from_f32(fb);
        let sum = sa.add(&sb, RoundingMode::NearestEven);
        let hw = fa + fb;
        if hw.is_nan() {
            prop_assert!(sum.is_nan());
        } else if hw.is_infinite() {
            prop_assert!(sum.is_infinite());
            prop_assert_eq!(sum.sign(), hw < 0.0);
        } else if hw == 0.0 {
            // `to_rational` cannot carry the zero sign; compare directly.
            prop_assert!(sum.is_zero());
            prop_assert_eq!(sum.sign(), hw.is_sign_negative());
        } else {
            let got = sum.to_rational().unwrap().to_f64() as f32;
            prop_assert_eq!(got.to_bits(), hw.to_bits());
        }
    }

    #[test]
    fn softfloat_mul_matches_f32(a in any::<i32>(), b in any::<i32>()) {
        let fa = f32::from_bits(a as u32);
        let fb = f32::from_bits(b as u32);
        prop_assume!(!fa.is_nan() && !fb.is_nan());
        let prod = sf_from_f32(fa).mul(&sf_from_f32(fb), RoundingMode::NearestEven);
        let hw = fa * fb;
        if hw.is_nan() {
            prop_assert!(prod.is_nan());
        } else if hw.is_infinite() {
            prop_assert!(prod.is_infinite());
            prop_assert_eq!(prod.sign(), hw < 0.0);
        } else if hw == 0.0 {
            prop_assert!(prod.is_zero());
            prop_assert_eq!(prod.sign(), hw.is_sign_negative());
        } else {
            let got = prod.to_rational().unwrap().to_f64() as f32;
            prop_assert_eq!(got.to_bits(), hw.to_bits());
        }
    }

    #[test]
    fn softfloat_fields_round_trip(a in any::<u32>()) {
        let f = f32::from_bits(a);
        prop_assume!(!f.is_nan());
        let sf = sf_from_f32(f);
        let (sign, e, m) = sf.to_fields();
        let back = SoftFloat::from_fields(8, 24, sign, &e, &m);
        prop_assert_eq!(sf, back);
    }
}

fn sf_from_f32(v: f32) -> SoftFloat {
    let bits = v.to_bits();
    SoftFloat::from_fields(
        8,
        24,
        bits >> 31 == 1,
        &BigInt::from((bits >> 23) & 0xff),
        &BigInt::from(bits & 0x7f_ffff),
    )
}
