//! Property tests for answer-store persistence soundness: an adversary
//! who truncates or bit-flips `answers.log` must never make a warm start
//! *invent* or *alter* a verdict. Replay may lose entries (the damaged
//! tail is dropped), but every entry it does serve must be byte-identical
//! to one the live store recorded — and, because the log is append-only
//! and replay stops at the first framing violation, the surviving set is
//! always a *prefix* of the insertion order.
//!
//! The reference here is the map of verdicts recorded through the live
//! [`PersistentStore`] before the file was damaged; the reopened store is
//! audited lookup-by-lookup against it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;
use staub::numeric::BigInt;
use staub::service::{AnswerStore, CacheConfig, CachedVerdict, PersistConfig, PersistentStore};
use staub::smtlib::Value;

/// Fresh scratch directory per proptest case (cases run sequentially but
/// must not see each other's files, and a failing case must not poison
/// the next).
fn fresh_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "staub-persist-props-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Well-spread synthetic canonical fingerprints (the persistence layer is
/// agnostic to how the canonicalizer produced them).
fn fingerprint(i: usize) -> u128 {
    (i as u128 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C835)
}

fn key(i: usize) -> String {
    format!("(declare-fun v{i} () Int)(assert (= v{i} {i}))(check-sat)")
}

/// Alternates the two persistable verdict shapes, with distinguishable
/// per-entry winners and model values so a cross-wired replay (entry i
/// served under entry j's key) cannot pass the audit.
fn verdict(i: usize, kind: u8) -> CachedVerdict {
    if kind.is_multiple_of(2) {
        CachedVerdict::Unsat {
            winner: Some(format!("complete/zed#{i}")),
        }
    } else {
        CachedVerdict::Sat {
            model: vec![(i, Value::Int(BigInt::from(i as i64 * 7 + 1)))],
            winner: Some(format!("dl/stn#{i}")),
        }
    }
}

/// Records `kinds.len()` entries through a live store (all land in the
/// log: `snapshot_every` stays at its large default), drops it, and
/// returns the reference verdicts.
fn seed(dir: &Path, kinds: &[u8]) -> Vec<CachedVerdict> {
    let persist = PersistConfig::in_dir(dir);
    let store = PersistentStore::open(&CacheConfig::default(), &persist).expect("seed store opens");
    let mut reference = Vec::with_capacity(kinds.len());
    for (i, kind) in kinds.iter().enumerate() {
        let v = verdict(i, *kind);
        store.record(fingerprint(i), &key(i), v.clone());
        reference.push(v);
    }
    reference
}

/// Audits a reopened store against the reference: every lookup either
/// misses or returns the exact recorded verdict, the surviving set is a
/// prefix of insertion order, and unknown keys still miss.
fn audit_prefix(store: &PersistentStore, reference: &[CachedVerdict]) -> usize {
    let mut survived = 0usize;
    let mut ended = false;
    for (i, expected) in reference.iter().enumerate() {
        match store.lookup(fingerprint(i), &key(i)) {
            Some(got) => {
                assert!(
                    !ended,
                    "entry {i} served after an earlier entry was lost: \
                     replay is not a prefix"
                );
                assert_eq!(
                    &got, expected,
                    "entry {i} replayed with a different verdict"
                );
                survived = i + 1;
            }
            None => ended = true,
        }
    }
    // Keys never recorded must not materialise out of corruption.
    for i in reference.len()..reference.len() + 4 {
        assert_eq!(
            store.lookup(fingerprint(i), &key(i)),
            None,
            "corruption invented an entry for an unrecorded key"
        );
    }
    survived
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chopping the log at any byte offset (including inside the magic,
    /// a length word, or a payload) yields a warm start that serves a
    /// verbatim prefix of the recorded verdicts — and a further restart
    /// from the compacted state is clean and serves the same set.
    #[test]
    fn truncated_log_replays_a_verbatim_prefix(
        kinds in vec(any::<u8>(), 4..20),
        cut_seed in any::<u16>(),
    ) {
        let dir = fresh_dir();
        let reference = seed(&dir, &kinds);
        let log_path = dir.join("answers.log");
        let len = std::fs::metadata(&log_path).expect("log exists").len();
        let cut = u64::from(cut_seed) % (len + 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&log_path)
            .expect("log opens for damage")
            .set_len(cut)
            .expect("truncate");

        let persist = PersistConfig::in_dir(&dir);
        let store = PersistentStore::open(&CacheConfig::default(), &persist)
            .expect("reopen after truncation never errors");
        let survived = audit_prefix(&store, &reference);
        // A full-length "cut" is no damage at all: everything survives.
        if cut == len {
            prop_assert_eq!(survived, reference.len());
            prop_assert_eq!(store.replay_report().rejected, 0);
        }
        drop(store);

        // The damaged tail was compacted away on reopen: a third open is
        // clean and serves exactly the same surviving prefix.
        let store = PersistentStore::open(&CacheConfig::default(), &persist)
            .expect("post-compaction reopen");
        prop_assert_eq!(store.replay_report().rejected, 0);
        prop_assert_eq!(audit_prefix(&store, &reference), survived);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single bit of the log — header, framing, or payload —
    /// yields a warm start that serves only verbatim recorded verdicts
    /// (CRC-32 catches every single-bit payload flip, so the damaged
    /// record and everything after it are dropped, never reinterpreted).
    #[test]
    fn bit_flipped_log_never_serves_an_altered_verdict(
        kinds in vec(any::<u8>(), 4..20),
        byte_seed in any::<u16>(),
        bit in 0u8..8,
    ) {
        let dir = fresh_dir();
        let reference = seed(&dir, &kinds);
        let log_path = dir.join("answers.log");
        let mut bytes = std::fs::read(&log_path).expect("log readable");
        let target = usize::from(byte_seed) % bytes.len();
        bytes[target] ^= 1 << bit;
        std::fs::write(&log_path, &bytes).expect("rewrite damaged log");

        let persist = PersistConfig::in_dir(&dir);
        let store = PersistentStore::open(&CacheConfig::default(), &persist)
            .expect("reopen after bit flip never errors");
        let survived = audit_prefix(&store, &reference);
        // The flip damaged at most one record's framing; replay keeps
        // everything before it, so at most the tail from that record on
        // is lost — and the store accounts for the damage it saw.
        let report = store.replay_report();
        if survived < reference.len() {
            prop_assert!(
                report.rejected > 0,
                "entries were lost ({survived}/{} survived) but no \
                 rejection was counted",
                reference.len()
            );
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Damaging the *snapshot* after a compaction is equally contained:
    /// warm start still never alters a verdict, it only loses some.
    #[test]
    fn bit_flipped_snapshot_is_contained(
        kinds in vec(any::<u8>(), 6..16),
        byte_seed in any::<u16>(),
        bit in 0u8..8,
    ) {
        let dir = fresh_dir();
        // Tight snapshot cadence so the entries land in answers.snap.
        let mut persist = PersistConfig::in_dir(&dir);
        persist.snapshot_every = 2;
        let store = PersistentStore::open(&CacheConfig::default(), &persist)
            .expect("seed store opens");
        let mut reference = Vec::with_capacity(kinds.len());
        for (i, kind) in kinds.iter().enumerate() {
            let v = verdict(i, *kind);
            store.record(fingerprint(i), &key(i), v.clone());
            reference.push(v);
        }
        drop(store);

        let snap_path = dir.join("answers.snap");
        let mut bytes = std::fs::read(&snap_path).expect("snapshot readable");
        let target = usize::from(byte_seed) % bytes.len();
        bytes[target] ^= 1 << bit;
        std::fs::write(&snap_path, &bytes).expect("rewrite damaged snapshot");

        let store = PersistentStore::open(&CacheConfig::default(), &persist)
            .expect("reopen after snapshot damage never errors");
        // The snapshot is a dump of the LRU, so its order need not match
        // insertion order — audit only verbatim-or-miss, not prefix.
        for (i, expected) in reference.iter().enumerate() {
            if let Some(got) = store.lookup(fingerprint(i), &key(i)) {
                prop_assert_eq!(
                    &got, expected,
                    "entry {} replayed with a different verdict", i
                );
            }
        }
        for i in reference.len()..reference.len() + 4 {
            prop_assert_eq!(store.lookup(fingerprint(i), &key(i)), None);
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
