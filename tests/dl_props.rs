//! Differential property tests for the incremental STN engine and the
//! difference-logic lane.
//!
//! Random difference-logic *tapes* — interleaved `assert` / `push` /
//! `pop` / `check` operations over a small variable pool — drive the
//! incremental [`Stn`](staub::solver::Stn) directly, exercising its edge
//! trail across scope boundaries. At every `check` the STN's verdict is
//! compared against an unbounded reference solve of the currently-active
//! conjunction, and each side of the verdict is independently certified:
//!
//! * feasible → the STN's rational solution, shifted to the origin, must
//!   *exactly* evaluate every active assertion to true;
//! * infeasible → the negative cycle extracted at the failing assert must
//!   lint clean under the independent `L5xx` re-derivation and have a
//!   genuinely negative bound sum (or zero with a strict edge).
//!
//! A directed test pins the planner side: constraints outside the
//! fragment never plan the DL lane, difference-logic ones always do.

use std::time::Duration;

use proptest::prelude::*;
use staub::core::{run_batch_with, BatchConfig, BatchItem, LaneKind, RunOptions};
use staub::lint::{dl_certificate, DlClaim, DlCycleEdge};
use staub::numeric::{BigInt, BigRational};
use staub::smtlib::{evaluate, Model, Script, Sort, Value};
use staub::solver::{Budget, DlWeight, SatResult, Solver, SolverProfile, Stn, StnStatus};

const VARS: usize = 4;
/// `0..VARS` are the variables; `VARS` is the implicit origin (a unary
/// bound through node 0).
const ORIGIN_SLOT: usize = VARS;

#[derive(Debug, Clone)]
enum Op {
    /// Assert `end(x) − end(y) ≤ c` (`<` when strict), where either end
    /// may be the origin.
    Assert {
        x: usize,
        y: usize,
        c: i64,
        strict: bool,
    },
    Push,
    Pop,
    Check,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Roughly: 5 asserts : 1 push : 1 pop : 2 checks.
    (
        0..9u8,
        0..=ORIGIN_SLOT,
        0..=ORIGIN_SLOT,
        -6i64..=6,
        any::<bool>(),
    )
        .prop_map(|(k, x, y, c, strict)| match k {
            0..=4 => Op::Assert { x, y, c, strict },
            5 => Op::Push,
            6 => Op::Pop,
            _ => Op::Check,
        })
}

/// Builds the currently-active conjunction as a Real-sorted script,
/// returning the variable symbols in slot order.
fn active_script(edges: &[(usize, usize, i64, bool)]) -> (Script, Vec<staub::smtlib::SymbolId>) {
    let mut script = Script::new();
    let syms: Vec<_> = (0..VARS)
        .map(|i| {
            script
                .declare(&format!("t{i}"), Sort::Real)
                .expect("fresh symbol")
        })
        .collect();
    let s = script.store_mut();
    let vars: Vec<_> = syms.iter().map(|&sym| s.var(sym)).collect();
    let zero = s.real(BigRational::zero());
    let mut asserts = Vec::new();
    for &(x, y, c, strict) in edges {
        let lhs = match (x == ORIGIN_SLOT, y == ORIGIN_SLOT) {
            (false, false) => s.sub(vars[x], vars[y]).expect("sub"),
            (false, true) => vars[x],
            (true, false) => s.sub(zero, vars[y]).expect("sub"),
            (true, true) => zero,
        };
        let c_t = s.real(BigRational::from(BigInt::from(c)));
        let a = if strict {
            s.lt(lhs, c_t).expect("lt")
        } else {
            s.le(lhs, c_t).expect("le")
        };
        asserts.push(a);
    }
    for a in asserts {
        script.assert(a);
    }
    script.check_sat();
    (script, syms)
}

fn var_name(node: u32) -> Option<String> {
    (node != 0).then(|| format!("t{}", node - 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stn_tapes_agree_with_the_unbounded_reference(
        ops in proptest::collection::vec(op_strategy(), 1..48)
    ) {
        let mut stn = Stn::new();
        // Node 0 is the origin; variable i lives at node i + 1.
        let node: Vec<u32> = (0..VARS).map(|_| stn.add_node()).collect();
        let node_of = |slot: usize| if slot == ORIGIN_SLOT { 0 } else { node[slot] };
        let budget = Budget::new(Duration::from_secs(10), 10_000_000);
        let solver = Solver::new(SolverProfile::Zed)
            .with_timeout(Duration::from_secs(5))
            .with_steps(2_000_000);

        // The reference state: active edges plus a frame stack of marks.
        let mut edges: Vec<(usize, usize, i64, bool)> = Vec::new();
        let mut frames: Vec<usize> = Vec::new();
        let mut last_cycle: Vec<DlCycleEdge> = Vec::new();

        for op in &ops {
            match *op {
                Op::Assert { x, y, c, strict } => {
                    let w = DlWeight::new(BigRational::from(BigInt::from(c)), strict);
                    // A same-variable difference cancels to the constant
                    // constraint `0 ≤ c`; place it on the origin like the
                    // fragment detector does, so the extracted cycle names
                    // the same edges the lint re-derives from the script.
                    let (nx, ny) = if x == y {
                        (0, 0)
                    } else {
                        (node_of(x), node_of(y))
                    };
                    let status = stn.assert_edge(ny, nx, w, &budget);
                    prop_assert!(status != StnStatus::Exhausted, "budget far oversized");
                    edges.push((x, y, c, strict));
                    if status == StnStatus::Infeasible && !stn.cycle().is_empty() {
                        last_cycle = stn
                            .cycle()
                            .iter()
                            .map(|&i| {
                                let e = stn.edge(i);
                                DlCycleEdge {
                                    x: var_name(e.to),
                                    y: var_name(e.from),
                                    bound: e.weight.q.clone(),
                                    strict: e.weight.e < 0,
                                }
                            })
                            .collect();
                    }
                }
                Op::Push => {
                    stn.push();
                    frames.push(edges.len());
                }
                Op::Pop => {
                    if let Some(mark) = frames.pop() {
                        prop_assert!(stn.pop(), "stack depths diverged");
                        edges.truncate(mark);
                    }
                }
                Op::Check => {
                    let (script, syms) = active_script(&edges);
                    let feasible = stn.is_feasible();
                    // The unbounded reference must agree wherever it
                    // decides (these conjunctions are all easy for it).
                    match solver.solve(&script).result {
                        SatResult::Sat(_) => prop_assert!(
                            feasible,
                            "STN infeasible but reference sat: {edges:?}"
                        ),
                        SatResult::Unsat => prop_assert!(
                            !feasible,
                            "STN feasible but reference unsat: {edges:?}"
                        ),
                        SatResult::Unknown(_) => {}
                    }
                    if feasible {
                        // The solution certifies the sat side: exact
                        // evaluation, no rounding anywhere.
                        let vals = stn.solution();
                        let origin = vals[0].clone();
                        let mut model = Model::new();
                        for (i, &sym) in syms.iter().enumerate() {
                            let v = &vals[node[i] as usize] - &origin;
                            model.insert(sym, Value::Real(v));
                        }
                        for &a in script.assertions() {
                            prop_assert_eq!(
                                evaluate(script.store(), a, &model).unwrap(),
                                Value::Bool(true),
                                "solution violates an active edge: {:?}",
                                edges
                            );
                        }
                    } else {
                        // The cycle certifies the unsat side: the L5xx
                        // re-derivation must accept it against the active
                        // conjunction, including the negative-sum check.
                        prop_assert!(!last_cycle.is_empty(), "infeasible without a cycle");
                        let report = dl_certificate(&DlClaim {
                            original: &script,
                            cycle: &last_cycle,
                        });
                        prop_assert!(
                            report.is_clean(),
                            "cycle fails the lint:\n{report}\nedges: {edges:?}"
                        );
                        let sum: BigRational = last_cycle
                            .iter()
                            .map(|e| e.bound.clone())
                            .fold(BigRational::zero(), |acc, b| &acc + &b);
                        let strict = last_cycle.iter().any(|e| e.strict);
                        prop_assert!(
                            sum.is_negative() || (sum.is_zero() && strict),
                            "cycle sum {sum:?} is not negative"
                        );
                    }
                }
            }
        }
    }
}

/// The planner only ever spawns the DL lane inside the fragment: a
/// coefficient, a nonlinearity, or a disjunction disqualifies the script;
/// a pure bound-difference conjunction always qualifies.
#[test]
fn non_dl_constraints_never_plan_the_lane() {
    let config = BatchConfig {
        threads: 1,
        timeout: Duration::from_millis(200),
        steps: 10_000,
        ..BatchConfig::default()
    };
    let non_dl = [
        "(declare-fun x () Int)(declare-fun y () Int)(assert (<= (- (* 2 x) y) 3))",
        "(declare-fun x () Int)(assert (= (* x x) 49))",
        "(declare-fun x () Int)(declare-fun y () Int)\
         (assert (or (<= (- x y) 1) (<= (- y x) 1)))",
    ];
    let dl = "(declare-fun x () Int)(declare-fun y () Int)\
              (assert (<= (- x y) 1))(assert (< (- y x) (- 1)))";
    let items: Vec<BatchItem> = non_dl
        .iter()
        .chain(std::iter::once(&dl))
        .enumerate()
        .map(|(i, src)| BatchItem {
            name: format!("case{i}"),
            script: Script::parse(src).expect("test source parses"),
        })
        .collect();
    let reports = run_batch_with(&items, &config, &RunOptions::default());
    for report in &reports[..non_dl.len()] {
        assert!(
            report
                .lanes
                .iter()
                .all(|l| !matches!(l.spec.kind, LaneKind::DiffLogic)),
            "non-DL constraint planned the STN lane"
        );
    }
    let last = reports.last().expect("reports align with items");
    assert!(
        last.lanes
            .iter()
            .any(|l| matches!(l.spec.kind, LaneKind::DiffLogic)),
        "DL constraint did not plan the STN lane"
    );
    assert_eq!(last.verdict.name(), "unsat");
}
