//! Cross-crate integration tests: the full STAUB pipeline over generated
//! suites, checked for soundness against ground truth and exact model
//! evaluation.

use std::time::Duration;

use staub::benchgen::{generate, SuiteKind};
use staub::core::{
    portfolio, run_one_with, BatchConfig, BatchVerdict, LaneVerdict, RunOptions, Session, Staub,
    StaubConfig, StaubOutcome, WidthChoice,
};
use staub::smtlib::{evaluate, Script, Value};
use staub::solver::SolverProfile;

fn config(profile: SolverProfile) -> StaubConfig {
    StaubConfig {
        width_choice: WidthChoice::Inferred,
        profile,
        timeout: Duration::from_millis(500),
        steps: 800_000,
        ..Default::default()
    }
}

fn staub(profile: SolverProfile) -> Staub {
    Staub::new(config(profile))
}

/// Every `Sat` outcome carries a model that exactly satisfies the original
/// script; every `Unsat` agrees with ground truth.
#[test]
fn pipeline_is_sound_on_all_suites() {
    for kind in SuiteKind::all() {
        for profile in [SolverProfile::Zed, SolverProfile::Cove] {
            // One warm session per (suite, profile): later constraints
            // warm-start from earlier ones, and soundness must survive it.
            let mut session = Session::new(config(profile));
            for b in generate(kind, 18, 0xE2E) {
                match session.run(&b.script).expect("non-empty script") {
                    StaubOutcome::Sat { model, .. } => {
                        assert_ne!(
                            b.expected,
                            Some(false),
                            "{}: sat but expected unsat",
                            b.name
                        );
                        for &a in b.script.assertions() {
                            assert_eq!(
                                evaluate(b.script.store(), a, &model).unwrap(),
                                Value::Bool(true),
                                "{}: model fails under {profile}",
                                b.name
                            );
                        }
                    }
                    StaubOutcome::Unsat { .. } => {
                        assert_ne!(b.expected, Some(true), "{}: unsat but expected sat", b.name);
                    }
                    StaubOutcome::Unknown { .. } => {}
                }
            }
        }
    }
}

/// The portfolio never slows a constraint down (§5.1): `t_final <= t_pre`.
#[test]
fn portfolio_never_slows_down() {
    let tool = staub(SolverProfile::Zed);
    for kind in [SuiteKind::QfNia, SuiteKind::QfLia] {
        for b in generate(kind, 12, 0xBEEF) {
            let report = portfolio::measure(&tool, &b.script);
            assert!(
                report.t_final() <= report.t_pre + Duration::from_millis(1),
                "{}: portfolio regressed ({:?} > {:?})",
                b.name,
                report.t_final(),
                report.t_pre
            );
            assert!(report.speedup() >= 1.0 - 1e-9);
        }
    }
}

/// The motivating example end to end: inferred width 12, verified model.
#[test]
fn motivating_example_via_bounded_path() {
    let script = staub::benchgen::sum_of_cubes(855);
    let cfg = StaubConfig {
        timeout: Duration::from_secs(10),
        steps: u64::MAX,
        ..Default::default()
    };
    let tool = Staub::new(cfg.clone());
    let transformed = tool.transform(&script).expect("transformable");
    assert_eq!(transformed.bv_width, Some(12), "the paper's Fig. 1b width");
    match Session::new(cfg).run(&script).expect("non-empty") {
        StaubOutcome::Sat { model, .. } => {
            let cubes: i64 = ["x", "y", "z"]
                .iter()
                .map(|n| {
                    let sym = script.store().symbol(n).unwrap();
                    model.get(sym).unwrap().as_int().unwrap().to_i64().unwrap()
                })
                .map(|v| v.pow(3))
                .sum();
            assert_eq!(cubes, 855);
        }
        other => panic!("expected sat, got {other:?}"),
    }
}

/// The emit path: transformed scripts are valid SMT-LIB that any compliant
/// consumer (here: our own parser + solver) handles identically.
#[test]
fn emitted_constraints_round_trip_through_text() {
    let tool = staub(SolverProfile::Zed);
    for b in generate(SuiteKind::QfNia, 12, 0xCAFE) {
        let Ok(transformed) = tool.transform(&b.script) else {
            continue;
        };
        let text = transformed.script.to_string();
        let reparsed = Script::parse(&text)
            .unwrap_or_else(|e| panic!("{}: emitted text unparsable: {e}", b.name));
        let solver = staub::solver::Solver::new(SolverProfile::Zed)
            .with_timeout(Duration::from_millis(500))
            .with_steps(500_000);
        let direct = solver.solve(&transformed.script).result;
        let via_text = solver.solve(&reparsed).result;
        // Timeouts may differ run to run; definite answers must agree.
        if !direct.is_unknown() && !via_text.is_unknown() {
            assert_eq!(direct.is_sat(), via_text.is_sat(), "{}", b.name);
        }
    }
}

/// Width ablation invariant: a fixed width that is too narrow for the
/// constants reverts cleanly (error, not wrong answer).
#[test]
fn narrow_fixed_widths_revert_cleanly() {
    let mut session = Session::new(StaubConfig {
        width_choice: WidthChoice::Fixed(6),
        timeout: Duration::from_millis(500),
        ..Default::default()
    });
    for b in generate(SuiteKind::QfNia, 12, 7) {
        // Either transformation fails (constants too wide) or the pipeline
        // still returns a sound answer via verification/fallback.
        match session.run(&b.script).expect("non-empty") {
            StaubOutcome::Sat { model, .. } => {
                for &a in b.script.assertions() {
                    assert_eq!(
                        evaluate(b.script.store(), a, &model).unwrap(),
                        Value::Bool(true),
                        "{}",
                        b.name
                    );
                }
            }
            StaubOutcome::Unsat { .. } => assert_ne!(b.expected, Some(true), "{}", b.name),
            StaubOutcome::Unknown { .. } => {}
        }
    }
}

/// Width escalation in the scheduler (UppSAT-style precision ladder): when
/// the inferred width is insufficient — the base lane comes back bounded
/// `unsat`, which is never trusted (§4.4) — the 2× escalation lane finds a
/// verified model and the scheduler reports it as winner.
#[test]
fn escalation_lane_wins_when_inferred_width_is_insufficient() {
    // Integer division keeps the inferred width at the size of the
    // *constants*: in `(div x K) = T`, x at the inferred width is too small
    // to reach quotient T, so the base lane is bounded-unsat while the 2×
    // lane admits the witnesses.
    for (src, quotient, divisor) in [
        (
            "(declare-fun x () Int)(assert (= (div x 5) 11))",
            11i64,
            5i64,
        ),
        ("(declare-fun x () Int)(assert (= (div x 7) 13))", 13, 7),
    ] {
        let script = Script::parse(src).unwrap();
        let config = BatchConfig {
            threads: 2,
            include_baseline: false,
            escalations: vec![2],
            // Both lanes run to completion, so lane verdicts (and the
            // winner: the only sound lane) are deterministic.
            cancel_losers: false,
            timeout: Duration::from_secs(30),
            steps: 400_000,
            ..BatchConfig::default()
        };
        let report = run_one_with("escalation", &script, &config, &RunOptions::default());
        assert_eq!(report.lanes.len(), 2, "{src}: base + x2 lanes");
        let base = &report.lanes[0];
        assert_eq!(
            base.verdict,
            LaneVerdict::BoundedUnsat,
            "{src}: inferred width must be insufficient for this test to bite"
        );
        let winner = report.winner_lane().expect("escalated lane answers");
        assert_eq!(winner.spec.label(), "staub/x2/zed", "{src}");
        assert_eq!(winner.verdict, LaneVerdict::SatVerified, "{src}");
        match &report.verdict {
            BatchVerdict::Sat(model) => {
                let sym = script.store().symbol("x").unwrap();
                let x = model.get(sym).unwrap().as_int().unwrap().to_i64().unwrap();
                assert_eq!(x.div_euclid(divisor), quotient, "{src}: x = {x}");
            }
            other => panic!("{src}: expected sat, got {other:?}"),
        }
    }
}

/// SLOT after STAUB preserves the bounded constraint's satisfiability.
#[test]
fn slot_chain_preserves_bounded_satisfiability() {
    let tool = staub(SolverProfile::Zed);
    let solver = staub::solver::Solver::new(SolverProfile::Zed)
        .with_timeout(Duration::from_secs(1))
        .with_steps(1_000_000);
    for b in generate(SuiteKind::QfLia, 16, 0x510) {
        let Ok(transformed) = tool.transform(&b.script) else {
            continue;
        };
        let mut optimized = transformed.script.clone();
        staub::slot::Slot::standard().optimize(&mut optimized);
        let before = solver.solve(&transformed.script).result;
        let after = solver.solve(&optimized).result;
        if !before.is_unknown() && !after.is_unknown() {
            assert_eq!(before.is_sat(), after.is_sat(), "{}", b.name);
        }
    }
}
