//! Differential battery for counterexample-guided per-variable width
//! refinement: on randomly generated instances, the refine lane, the
//! blind escalation ladder, and an independent sequential [`Session`]
//! reference must never contradict each other, must respect the
//! generator's ground truth, and every `sat` must ship a model that
//! exactly evaluates the *original* unbounded constraint to true.
//!
//! A second property pins the loop's shape: refinement terminates within
//! its depth cap, per-rung width demand grows strictly, per-variable
//! widths never exceed `max_bv_width`, and every widened name is a real
//! script variable.
//!
//! A third drives the same refinement through the incremental
//! [`Session`] surface: push a poisoning constraint, check, pop,
//! re-assert, and per-variable widening must still land the same verdict
//! as a session that never detoured.

use std::time::Duration;

use proptest::prelude::*;
use staub::benchgen::{generate, generate_skewed, Benchmark, SuiteKind};
use staub::core::{
    run_one_with, BatchConfig, BatchReport, BatchVerdict, LaneKind, RunOptions, Session,
    StaubConfig, StaubOutcome, WidthChoice,
};
use staub::smtlib::{evaluate, Value};

/// Modest deterministic budget: plenty for the planted instances, while
/// letting the hard tail resolve to `unknown` instead of hanging a case.
const STEPS: u64 = 300_000;

fn batch_config(refine: bool) -> BatchConfig {
    BatchConfig {
        threads: 1,
        timeout: Duration::from_secs(60),
        steps: STEPS,
        width_choice: WidthChoice::Fixed(9),
        escalations: if refine { Vec::new() } else { vec![2, 4] },
        include_baseline: false,
        cancel_losers: true,
        retry: false,
        refine,
        ..BatchConfig::default()
    }
}

/// A small mixed corpus per case: generated NIA/LIA draws plus the
/// skewed-width family the refinement loop targets.
fn corpus(seed: u64) -> Vec<Benchmark> {
    let mut items = Vec::new();
    items.extend(generate(SuiteKind::QfNia, 2, seed));
    items.extend(generate(SuiteKind::QfLia, 2, seed));
    items.extend(generate_skewed(2, seed));
    items
}

/// `sat` against `unsat` between two sound verdicts is the only possible
/// disagreement; everything involving `unknown` is mere incompleteness.
fn contradicts(a: &str, b: &str) -> bool {
    matches!((a, b), ("sat", "unsat") | ("unsat", "sat"))
}

fn check_model_exact(bench: &Benchmark, report: &BatchReport) -> Result<(), TestCaseError> {
    if let BatchVerdict::Sat(model) = &report.verdict {
        for &a in bench.script.assertions() {
            prop_assert_eq!(
                evaluate(bench.script.store(), a, model).expect("model is total"),
                Value::Bool(true),
                "{}: sat model must satisfy the original assertion",
                bench.name
            );
        }
    }
    Ok(())
}

fn check_ground_truth(bench: &Benchmark, verdict: &str, leg: &str) -> Result<(), TestCaseError> {
    if let Some(expected) = bench.expected {
        let lie = (expected && verdict == "unsat") || (!expected && verdict == "sat");
        prop_assert!(
            !lie,
            "{} ({leg}): verdict {verdict} contradicts planted ground truth",
            bench.name
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn refine_blind_and_reference_agree(seed in 0u64..10_000) {
        let mut sound_seen = 0usize;
        for bench in corpus(seed) {
            let refined =
                run_one_with(&bench.name, &bench.script, &batch_config(true), &RunOptions::default());
            let blind =
                run_one_with(&bench.name, &bench.script, &batch_config(false), &RunOptions::default());
            // Independent reference: the sequential incremental pipeline
            // under its own (inferred) width strategy.
            let reference = Session::new(StaubConfig {
                timeout: Duration::from_secs(60),
                steps: STEPS,
                ..StaubConfig::default()
            })
            .run(&bench.script)
            .map(|o| o.verdict_name())
            .unwrap_or("unknown");

            let r = refined.verdict.name();
            let b = blind.verdict.name();
            prop_assert!(!contradicts(r, b), "{}: refine={r} blind={b}", bench.name);
            prop_assert!(!contradicts(r, reference), "{}: refine={r} ref={reference}", bench.name);
            prop_assert!(!contradicts(b, reference), "{}: blind={b} ref={reference}", bench.name);
            check_ground_truth(&bench, r, "refine")?;
            check_ground_truth(&bench, b, "blind")?;
            check_ground_truth(&bench, reference, "reference")?;
            check_model_exact(&bench, &refined)?;
            check_model_exact(&bench, &blind)?;
            if r != "unknown" {
                sound_seen += 1;
            }
        }
        // The battery must actually decide things, or agreement is vacuous.
        prop_assert!(sound_seen > 0, "no sound verdict in the whole corpus (seed {seed})");
    }

    #[test]
    fn refinement_terminates_with_strict_progress(seed in 0u64..10_000) {
        let config = batch_config(true);
        for bench in corpus(seed) {
            let report =
                run_one_with(&bench.name, &bench.script, &config, &RunOptions::default());
            let Some(lane) = report
                .lanes
                .iter()
                .find(|l| matches!(l.spec.kind, LaneKind::Refine { .. }))
            else {
                continue;
            };
            prop_assert!(
                lane.rungs.len() as u32 <= config.refine_depth + 1,
                "{}: {} rungs exceed depth cap {}",
                bench.name, lane.rungs.len(), config.refine_depth
            );
            let names: Vec<&str> = bench
                .script
                .store()
                .symbols()
                .map(|s| bench.script.store().symbol_name(s))
                .collect();
            for rung in &lane.rungs {
                prop_assert!(
                    rung.max_width <= config.limits.max_bv_width,
                    "{}: rung width {} over the cap", bench.name, rung.max_width
                );
                for widened in &rung.widened {
                    prop_assert!(
                        names.contains(&widened.as_str()),
                        "{}: widened unknown variable {widened}", bench.name
                    );
                }
            }
            for pair in lane.rungs.windows(2) {
                prop_assert!(
                    pair[1].total_bits > pair[0].total_bits,
                    "{}: non-monotone rungs {:?}", bench.name, lane.rungs
                );
            }
        }
    }

    #[test]
    fn session_pop_then_reassert_matches_fresh_refinement(seed in 0u64..10_000) {
        // A skewed sat instance: bounded-unsat at the 9-bit base (the
        // witness pair overflows its guards), decided after widening only
        // the hot pair.
        let Some(bench) = generate_skewed(4, seed)
            .into_iter()
            .find(|b| b.expected == Some(true))
        else {
            return Ok(());
        };
        let config = StaubConfig {
            timeout: Duration::from_secs(60),
            steps: STEPS,
            width_choice: WidthChoice::Fixed(9),
            ..StaubConfig::default()
        };
        let src = bench.script.to_string();

        // Detoured session: poison a frame, check, pop it, then refine.
        let mut detour = Session::new(config.clone());
        detour.assert_text(&src).expect("generated script parses");
        detour.push();
        detour.assert_text("(assert (< y 0))").expect("poison parses");
        let poisoned = detour.check().map(|o| o.verdict_name()).unwrap_or("unknown");
        prop_assert!(
            poisoned != "sat",
            "{}: y < 0 contradicts y >= 0 but checked sat", bench.name
        );
        prop_assert!(detour.pop(), "poison frame pops");

        // Fresh session: straight to the same per-variable widening.
        let mut fresh = Session::new(config);
        fresh.assert_text(&src).expect("generated script parses");

        let widen = ["y", "z"];
        let detour_verdict = detour
            .widen_vars_and_recheck(&widen)
            .map(|o| o.verdict_name())
            .unwrap_or("unknown");
        let fresh_verdict = fresh
            .widen_vars_and_recheck(&widen)
            .map(|o| o.verdict_name())
            .unwrap_or("unknown");
        prop_assert_eq!(
            detour_verdict,
            fresh_verdict,
            "{}: pop-then-re-assert diverges from a fresh session", bench.name
        );
        // Only the requested pair carries a width request.
        for session in [&detour, &fresh] {
            prop_assert!(session.var_widths().get("y").is_some());
            prop_assert!(session.var_widths().get("z").is_some());
            prop_assert!(session.var_widths().get("w0").is_none());
        }
        // When the widened check decides sat, the model is exact on the
        // original assertions.
        if fresh_verdict == "sat" {
            if let Ok(StaubOutcome::Sat { model, .. }) = fresh.check() {
                for &a in bench.script.assertions() {
                    prop_assert_eq!(
                        evaluate(bench.script.store(), a, &model).expect("model is total"),
                        Value::Bool(true),
                        "{}: widened model must satisfy the original assertion",
                        bench.name
                    );
                }
            }
        }
    }
}
