//! End-to-end tests for the `staub serve` service layer: a real server on
//! a loopback socket, concurrent clients, and a differential comparison
//! against the in-process batch scheduler — with the answer cache on and
//! off.
//!
//! Determinism: the server and the reference scheduler run under identical
//! deterministic *step* budgets with a wall-clock deadline far too large
//! to trip (the `tests/portfolio_diff.rs` idiom), so verdicts do not
//! depend on host speed or CI load.

use std::collections::HashMap;
use std::time::Duration;

use staub::benchgen::{generate, SuiteKind};
use staub::core::{run_batch_with, BatchConfig, BatchItem, RunOptions};
use staub::service::json::{self, Json};
use staub::service::{
    audit_reply, health_request, run_loadgen, solve_request, CacheConfig, Connection, Endpoint,
    EndpointStream, LoadgenConfig, LoadgenOutcome, Server, ServerConfig,
};
use staub::smtlib::Script;

const STEPS: u64 = 300_000;
const TIMEOUT: Duration = Duration::from_secs(30);

fn batch_config() -> BatchConfig {
    BatchConfig {
        threads: 2,
        timeout: TIMEOUT,
        steps: STEPS,
        escalations: Vec::new(),
        cancel_losers: false,
        retry: false,
        ..BatchConfig::default()
    }
}

fn serve_config(cache: bool) -> ServerConfig {
    let cache = if cache {
        Some(CacheConfig::default())
    } else {
        None
    };
    ServerConfig::new()
        .batch(batch_config())
        .cache(cache)
        .admission(8, 64)
}

/// A small mixed corpus (linear ints + nonlinear reals) printed to text,
/// as a client would submit it.
fn corpus() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for kind in [SuiteKind::QfLia, SuiteKind::QfNra] {
        for b in generate(kind, 5, 0xE2E) {
            out.push((b.name.clone(), b.script.to_string()));
        }
    }
    out
}

/// Reference verdicts from the in-process scheduler on the same corpus.
fn reference_verdicts(corpus: &[(String, String)]) -> HashMap<String, String> {
    let items: Vec<BatchItem> = corpus
        .iter()
        .map(|(name, text)| BatchItem {
            name: name.clone(),
            script: Script::parse(text).expect("corpus parses"),
        })
        .collect();
    run_batch_with(&items, &batch_config(), &RunOptions::default())
        .into_iter()
        .map(|r| (r.name.clone(), r.verdict.name().to_string()))
        .collect()
}

/// Boots a server, drives the corpus through 8 concurrent clients, and
/// checks every reply is well-formed, sound, and agrees with `run_batch_with`.
fn differential(cache: bool, no_cache_flag: bool, repeat: usize) -> LoadgenOutcome {
    let corpus = corpus();
    let expected = reference_verdicts(&corpus);
    let server = Server::launch(serve_config(cache)).expect("server starts");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());
    let outcome = run_loadgen(
        &corpus,
        &LoadgenConfig {
            endpoint,
            concurrency: 8,
            repeat,
            no_cache: no_cache_flag,
            steps: Some(STEPS),
            timeout_ms: Some(TIMEOUT.as_millis() as u64),
        },
    )
    .expect("loadgen runs");
    assert!(outcome.clean(), "transport errors or failed audits");
    assert_eq!(outcome.records.len(), corpus.len() * repeat);
    for record in &outcome.records {
        assert!(
            record.well_formed && record.sound,
            "{}: reply failed the audit",
            record.name
        );
        assert_eq!(
            &record.verdict,
            expected.get(&record.name).expect("known benchmark"),
            "{}: serve and batch disagree",
            record.name
        );
    }
    server.shutdown();
    server.join();
    outcome
}

#[test]
fn serve_matches_batch_with_cache_under_concurrency() {
    // Two passes over the corpus: the second mostly answers from cache,
    // and cached answers must audit identically to solved ones.
    let outcome = differential(true, false, 2);
    assert!(
        outcome.cache_count("hit") > 0,
        "a repeated corpus never hit the cache"
    );
}

#[test]
fn serve_matches_batch_without_cache() {
    let outcome = differential(false, false, 1);
    assert_eq!(
        outcome.cache_count("off"),
        outcome.records.len(),
        "cache-disabled server still consulted a cache"
    );
}

#[test]
fn no_cache_flag_bypasses_a_caching_server() {
    let outcome = differential(true, true, 2);
    assert_eq!(
        outcome.cache_count("off"),
        outcome.records.len(),
        "no_cache requests must never be served from cache"
    );
}

/// The health counter for a cache statistic.
fn cache_counter(health: &Json, key: &str) -> u64 {
    health
        .get("cache")
        .and_then(|c| c.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("health reply lacks cache.{key}"))
}

/// How many times the scheduler actually ran lanes (`serve.solve` is
/// observed only on a cache miss).
fn lane_solves(health: &Json) -> u64 {
    health
        .get("metrics")
        .and_then(|m| m.get("durations"))
        .and_then(|d| d.get("serve.solve"))
        .and_then(|s| s.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn repeated_and_renamed_constraints_answer_from_cache_without_lanes() {
    let server = Server::launch(serve_config(true)).expect("server starts");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());
    let mut conn = Connection::connect(&endpoint).expect("connect");

    let original = "(declare-fun x () Int)(assert (= (* x x) 49))(check-sat)";
    // α-renamed and commutatively flipped: the same constraint to the
    // canonicalizer, a different byte string to everyone else.
    let renamed = "(declare-fun y () Int)(assert (= 49 (* y y)))(check-sat)";

    let r1 = conn
        .roundtrip(&solve_request("cold", original, None, None, false))
        .expect("solve");
    let cold = audit_reply(original, &r1);
    assert_eq!(cold.verdict, "sat");
    assert!(cold.well_formed && cold.sound, "cold reply failed audit");

    let h1 = json::parse(&conn.roundtrip(&health_request()).expect("health")).expect("json");
    let solves_before = lane_solves(&h1);
    let hits_before = cache_counter(&h1, "hits");
    assert!(solves_before >= 1);

    let r2 = conn
        .roundtrip(&solve_request("repeat", original, None, None, false))
        .expect("solve");
    let repeat = audit_reply(original, &r2);
    assert_eq!(repeat.verdict, "sat");
    assert_eq!(repeat.cache, "hit");
    assert!(repeat.sound, "cached model failed re-verification");

    let r3 = conn
        .roundtrip(&solve_request("renamed", renamed, None, None, false))
        .expect("solve");
    let alpha = audit_reply(renamed, &r3);
    assert_eq!(alpha.verdict, "sat");
    assert_eq!(alpha.cache, "hit");
    assert!(alpha.sound, "rebound model failed re-verification");

    // The acceptance criterion made observable: both answers came from
    // the cache (hit counter +2) and no new lanes were spawned.
    let h2 = json::parse(&conn.roundtrip(&health_request()).expect("health")).expect("json");
    assert_eq!(cache_counter(&h2, "hits"), hits_before + 2);
    assert_eq!(lane_solves(&h2), solves_before);

    server.shutdown();
    server.join();
}

#[test]
fn complete_lane_unsat_serves_and_repeats_from_cache() {
    // No baseline lane and no escalations: the server's only possible
    // source of a trusted unsat is a promoted complete lane, so this test
    // pins the whole chain — certify → bounded-unsat → L4xx-checked
    // promotion → cache insert → cache hit without new lanes.
    let mut config = serve_config(true);
    config.batch.include_baseline = false;
    let server = Server::launch(config).expect("server starts");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());
    let mut conn = Connection::connect(&endpoint).expect("connect");

    let parity = "(declare-fun x () Int)(declare-fun y () Int)
         (assert (= (+ (* 2 x) (* 2 y)) 7))(check-sat)";
    // α-renamed twin: same canonical constraint, different bytes.
    let renamed = "(declare-fun p () Int)(declare-fun q () Int)
         (assert (= (+ (* 2 p) (* 2 q)) 7))(check-sat)";

    let r1 = conn
        .roundtrip(&solve_request("cold", parity, None, None, false))
        .expect("solve");
    let cold = audit_reply(parity, &r1);
    assert_eq!(cold.verdict, "unsat");
    assert!(cold.well_formed && cold.sound, "cold reply failed audit");
    let winner = json::parse(&r1)
        .expect("reply is json")
        .get("winner")
        .and_then(Json::as_str)
        .map(str::to_string)
        .expect("unsat reply names its winning lane");
    assert!(
        winner.starts_with("complete/"),
        "unsat must come from the complete lane, got {winner}"
    );

    let h1 = json::parse(&conn.roundtrip(&health_request()).expect("health")).expect("json");
    let solves_before = lane_solves(&h1);
    let hits_before = cache_counter(&h1, "hits");
    assert!(solves_before >= 1);

    for (id, text) in [("repeat", parity), ("renamed", renamed)] {
        let reply = conn
            .roundtrip(&solve_request(id, text, None, None, false))
            .expect("solve");
        let audit = audit_reply(text, &reply);
        assert_eq!(audit.verdict, "unsat", "{id}");
        assert_eq!(audit.cache, "hit", "{id}: answer not served from cache");
        let cached_winner = json::parse(&reply)
            .expect("reply is json")
            .get("winner")
            .and_then(Json::as_str)
            .map(str::to_string)
            .expect("cached unsat keeps its winner label");
        assert!(
            cached_winner.starts_with("complete/"),
            "{id}: cached winner lost provenance: {cached_winner}"
        );
    }

    // Both repeats answered from cache; no further lanes were spawned.
    let h2 = json::parse(&conn.roundtrip(&health_request()).expect("health")).expect("json");
    assert_eq!(cache_counter(&h2, "hits"), hits_before + 2);
    assert_eq!(lane_solves(&h2), solves_before);

    server.shutdown();
    server.join();
}

/// Further requests on a connection the server closed must fail fast.
fn assert_closed(mut conn: Connection<EndpointStream>) {
    let err = conn.roundtrip(&health_request());
    assert!(err.is_err(), "server should have closed the connection");
}

#[test]
fn malformed_and_oversized_lines_get_error_and_close() {
    let mut config = serve_config(false);
    config.max_line_bytes = 4096;
    let server = Server::launch(config).expect("server starts");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());

    // Malformed JSON: structured error, then the connection closes.
    let mut conn = Connection::connect(&endpoint).expect("connect");
    let reply = conn.roundtrip("this is not json").expect("error reply");
    let parsed = json::parse(&reply).expect("reply is json");
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad-json")
    );
    assert_closed(conn);

    // Valid JSON but not a valid request: same treatment.
    let mut conn = Connection::connect(&endpoint).expect("connect");
    let reply = conn
        .roundtrip("{\"op\":\"frobnicate\"}")
        .expect("error reply");
    let parsed = json::parse(&reply).expect("reply is json");
    assert_eq!(
        parsed
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad-request")
    );
    assert_closed(conn);

    // A line over the request-size cap: the reply names the cap, then the
    // connection closes (the rest of the oversized line is never parsed).
    let mut conn = Connection::connect(&endpoint).expect("connect");
    let huge = solve_request("big", &"x ".repeat(8192), None, None, false);
    let reply = conn.roundtrip(&huge).expect("error reply");
    let parsed = json::parse(&reply).expect("reply is json");
    let error = parsed.get("error").expect("structured error object");
    assert_eq!(error.get("code").and_then(Json::as_str), Some("oversized"));
    // The structured error must name the configured cap and how much the
    // client actually sent, so the operator can tell which to change.
    assert_eq!(error.get("limit").and_then(Json::as_u64), Some(4096));
    assert!(
        error.get("observed").and_then(Json::as_u64) > Some(4096),
        "{reply}"
    );
    assert_closed(conn);

    server.shutdown();
    server.join();
}

#[test]
fn health_reports_build_and_cache_state() {
    let server = Server::launch(serve_config(true)).expect("server starts");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());
    let mut conn = Connection::connect(&endpoint).expect("connect");
    let reply = conn.roundtrip(&health_request()).expect("health");
    let parsed = json::parse(&reply).expect("reply is json");
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        parsed.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(parsed.get("uptime_ms").is_some());
    assert_eq!(parsed.get("draining").and_then(Json::as_bool), Some(false));
    assert_eq!(cache_counter(&parsed, "hits"), 0);
    assert!(
        parsed
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .is_some(),
        "health must embed a metrics snapshot"
    );
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_request_drains_gracefully() {
    let server = Server::launch(serve_config(false)).expect("server starts");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());
    let mut conn = Connection::connect(&endpoint).expect("connect");
    let reply = conn
        .roundtrip("{\"op\":\"shutdown\",\"id\":\"bye\"}")
        .expect("shutdown reply");
    let parsed = json::parse(&reply).expect("reply is json");
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(parsed.get("draining").and_then(Json::as_bool), Some(true));
    // The server must come down on its own from the request alone.
    let summary = server.join();
    assert!(summary.connections >= 1);
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_solves() {
    let path = std::env::temp_dir().join(format!("staub-e2e-{}.sock", std::process::id()));
    let mut config = serve_config(true);
    config.unix = Some(path.clone());
    let server = Server::launch(config).expect("server starts");

    let mut conn = Connection::connect(&Endpoint::unix(&path)).expect("unix connect");
    let constraint = "(declare-fun x () Int)(assert (< 3 x))(assert (< x 5))(check-sat)";
    let reply = conn
        .roundtrip(&solve_request("ux", constraint, None, None, false))
        .expect("solve");
    let audit = audit_reply(constraint, &reply);
    assert_eq!(audit.verdict, "sat");
    assert!(audit.well_formed && audit.sound);

    server.shutdown();
    server.join();
    let _ = std::fs::remove_file(&path);
}
