//! Recursive-descent parser from token streams to [`Script`]s.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use staub_numeric::{BigInt, BigRational, BitVecValue, RoundingMode, SoftFloat};

use crate::lexer::{tokenize, Token, TokenKind};
use crate::op::Op;
use crate::script::{Command, Logic, Script};
use crate::sort::Sort;
use crate::term::{TermId, TermStore};

/// Default maximum s-expression nesting depth accepted by the parser.
///
/// Deep enough for any real benchmark (SMT-LIB suites stay under a few
/// hundred levels) while keeping the recursive term builder and evaluator
/// comfortably inside a 2 MiB thread stack (the depth they tolerate is
/// ~5000 there; 2000 also leaves margin for 1 MiB `RUST_MIN_STACK` runs).
pub const DEFAULT_MAX_DEPTH: usize = 2_000;

/// Structured classification of a [`ParseError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// Malformed input: bad syntax, unknown operators, sort errors.
    Syntax,
    /// The input nests deeper than the configured cap — rejected up front
    /// so adversarial `(not (not ...))` towers cannot overflow the stack.
    MaxDepthExceeded,
}

/// Error produced while parsing SMT-LIB input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    line: u32,
    col: u32,
    kind: ParseErrorKind,
}

impl ParseError {
    fn new(message: impl Into<String>, line: u32, col: u32) -> ParseError {
        ParseError {
            message: message.into(),
            line,
            col,
            kind: ParseErrorKind::Syntax,
        }
    }

    fn depth(max_depth: usize, line: u32, col: u32) -> ParseError {
        ParseError {
            message: format!("maximum nesting depth exceeded (max {max_depth})"),
            line,
            col,
            kind: ParseErrorKind::MaxDepthExceeded,
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Structured error classification.
    pub fn kind(&self) -> ParseErrorKind {
        self.kind
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

/// Intermediate s-expression tree.
#[derive(Debug, Clone)]
enum SExpr {
    Atom(Token),
    List(Vec<SExpr>, u32, u32),
}

impl SExpr {
    fn pos(&self) -> (u32, u32) {
        match self {
            SExpr::Atom(t) => (t.line, t.col),
            SExpr::List(_, l, c) => (*l, *c),
        }
    }

    fn as_symbol(&self) -> Option<&str> {
        match self {
            SExpr::Atom(Token {
                kind: TokenKind::Symbol(s),
                ..
            }) => Some(s),
            _ => None,
        }
    }

    fn as_numeral(&self) -> Option<&str> {
        match self {
            SExpr::Atom(Token {
                kind: TokenKind::Numeral(s),
                ..
            }) => Some(s),
            _ => None,
        }
    }
}

fn parse_sexprs(tokens: &[Token], max_depth: usize) -> Result<Vec<SExpr>, ParseError> {
    let mut stack: Vec<(Vec<SExpr>, u32, u32)> = Vec::new();
    let mut top: Vec<SExpr> = Vec::new();
    for tok in tokens {
        match &tok.kind {
            TokenKind::LParen => {
                // Rejecting over-deep input *here* — before any tree is
                // built — also bounds the recursion of the term builder
                // and of `SExpr`/term drop glue downstream.
                if stack.len() >= max_depth {
                    return Err(ParseError::depth(max_depth, tok.line, tok.col));
                }
                stack.push((std::mem::take(&mut top), tok.line, tok.col));
            }
            TokenKind::RParen => match stack.pop() {
                Some((mut outer, l, c)) => {
                    let list = SExpr::List(std::mem::take(&mut top), l, c);
                    outer.push(list);
                    top = outer;
                }
                None => return Err(ParseError::new("unbalanced `)`", tok.line, tok.col)),
            },
            _ => top.push(SExpr::Atom(tok.clone())),
        }
    }
    if let Some((_, l, c)) = stack.pop() {
        return Err(ParseError::new("unclosed `(`", l, c));
    }
    Ok(top)
}

struct Parser {
    store: TermStore,
    commands: Vec<Command>,
    assertions: Vec<TermId>,
    logic: Option<Logic>,
    /// 0-ary `define-fun` macros, inlined at use sites.
    defs: HashMap<String, TermId>,
}

/// Parses a full SMT-LIB script at the default nesting cap.
pub(crate) fn parse_script(src: &str) -> Result<Script, ParseError> {
    parse_script_with_max_depth(src, DEFAULT_MAX_DEPTH)
}

/// Parses a full SMT-LIB script, rejecting input nested deeper than
/// `max_depth` with [`ParseErrorKind::MaxDepthExceeded`].
pub(crate) fn parse_script_with_max_depth(
    src: &str,
    max_depth: usize,
) -> Result<Script, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError::new(e.message.clone(), e.line, e.col))?;
    let sexprs = parse_sexprs(&tokens, max_depth)?;
    let mut p = Parser {
        store: TermStore::new(),
        commands: Vec::new(),
        assertions: Vec::new(),
        logic: None,
        defs: HashMap::new(),
    };
    for sexpr in &sexprs {
        p.command(sexpr)?;
    }
    Ok(Script::from_parts(
        p.store,
        p.commands,
        p.assertions,
        p.logic,
    ))
}

impl Parser {
    fn err<T>(&self, msg: impl Into<String>, at: &SExpr) -> Result<T, ParseError> {
        let (l, c) = at.pos();
        Err(ParseError::new(msg, l, c))
    }

    fn command(&mut self, sexpr: &SExpr) -> Result<(), ParseError> {
        let SExpr::List(items, ..) = sexpr else {
            return self.err("expected a command list", sexpr);
        };
        let Some(head) = items.first().and_then(SExpr::as_symbol) else {
            return self.err("expected a command name", sexpr);
        };
        match head {
            "set-logic" => {
                let name = items.get(1).and_then(SExpr::as_symbol).ok_or_else(|| {
                    self.err::<()>("set-logic expects a name", sexpr)
                        .unwrap_err()
                })?;
                let logic = Logic::from_name(name);
                self.logic = Some(logic.clone());
                self.commands.push(Command::SetLogic(logic));
            }
            "set-info" => {
                let key = items
                    .get(1)
                    .and_then(SExpr::as_symbol)
                    .unwrap_or("")
                    .to_string();
                let val = match items.get(2) {
                    Some(SExpr::Atom(t)) => match &t.kind {
                        TokenKind::Symbol(s)
                        | TokenKind::Numeral(s)
                        | TokenKind::Decimal(s)
                        | TokenKind::StringLit(s) => s.clone(),
                        _ => String::new(),
                    },
                    _ => String::new(),
                };
                self.commands.push(Command::SetInfo(key, val));
            }
            "set-option" => {} // ignored
            "declare-fun" => {
                let name = items
                    .get(1)
                    .and_then(SExpr::as_symbol)
                    .ok_or_else(|| {
                        self.err::<()>("declare-fun expects a name", sexpr)
                            .unwrap_err()
                    })?
                    .to_string();
                match items.get(2) {
                    Some(SExpr::List(args, ..)) if args.is_empty() => {}
                    _ => return self.err("only 0-ary declare-fun is supported", sexpr),
                }
                let sort_sexpr = items.get(3).ok_or_else(|| {
                    self.err::<()>("declare-fun expects a sort", sexpr)
                        .unwrap_err()
                })?;
                let sort = self.sort(sort_sexpr)?;
                let id = self
                    .store
                    .declare(&name, sort)
                    .map_err(|e| self.err::<()>(e.to_string(), sexpr).unwrap_err())?;
                self.commands.push(Command::Declare(id));
            }
            "declare-const" => {
                let name = items
                    .get(1)
                    .and_then(SExpr::as_symbol)
                    .ok_or_else(|| {
                        self.err::<()>("declare-const expects a name", sexpr)
                            .unwrap_err()
                    })?
                    .to_string();
                let sort_sexpr = items.get(2).ok_or_else(|| {
                    self.err::<()>("declare-const expects a sort", sexpr)
                        .unwrap_err()
                })?;
                let sort = self.sort(sort_sexpr)?;
                let id = self
                    .store
                    .declare(&name, sort)
                    .map_err(|e| self.err::<()>(e.to_string(), sexpr).unwrap_err())?;
                self.commands.push(Command::Declare(id));
            }
            "define-fun" => {
                // Only 0-ary macros: (define-fun f () S body).
                let name = items
                    .get(1)
                    .and_then(SExpr::as_symbol)
                    .ok_or_else(|| {
                        self.err::<()>("define-fun expects a name", sexpr)
                            .unwrap_err()
                    })?
                    .to_string();
                match items.get(2) {
                    Some(SExpr::List(args, ..)) if args.is_empty() => {}
                    _ => return self.err("only 0-ary define-fun is supported", sexpr),
                }
                let declared = items.get(3).ok_or_else(|| {
                    self.err::<()>("define-fun expects a sort", sexpr)
                        .unwrap_err()
                })?;
                let declared_sort = self.sort(declared)?;
                let body = items.get(4).ok_or_else(|| {
                    self.err::<()>("define-fun expects a body", sexpr)
                        .unwrap_err()
                })?;
                let body_term = self.term(body, &HashMap::new())?;
                if self.store.sort(body_term) != declared_sort {
                    return self.err(
                        format!(
                            "define-fun body sort {} does not match declared {declared_sort}",
                            self.store.sort(body_term)
                        ),
                        sexpr,
                    );
                }
                self.defs.insert(name, body_term);
            }
            "assert" => {
                let body = items
                    .get(1)
                    .ok_or_else(|| self.err::<()>("assert expects a term", sexpr).unwrap_err())?;
                let term = self.term(body, &HashMap::new())?;
                if self.store.sort(term) != Sort::Bool {
                    return self.err("asserted term must be Bool", sexpr);
                }
                self.assertions.push(term);
                self.commands.push(Command::Assert(term));
            }
            "check-sat" => self.commands.push(Command::CheckSat),
            "get-model" => self.commands.push(Command::GetModel),
            "exit" => self.commands.push(Command::Exit),
            other => return self.err(format!("unsupported command `{other}`"), sexpr),
        }
        Ok(())
    }

    fn sort(&self, sexpr: &SExpr) -> Result<Sort, ParseError> {
        if let Some(name) = sexpr.as_symbol() {
            return match name {
                "Bool" => Ok(Sort::Bool),
                "Int" => Ok(Sort::Int),
                "Real" => Ok(Sort::Real),
                "RoundingMode" => Ok(Sort::RoundingMode),
                "Float16" => Ok(Sort::Float(5, 11)),
                "Float32" => Ok(Sort::Float(8, 24)),
                "Float64" => Ok(Sort::Float(11, 53)),
                "Float128" => Ok(Sort::Float(15, 113)),
                other => self.err(format!("unknown sort `{other}`"), sexpr),
            };
        }
        if let SExpr::List(items, ..) = sexpr {
            if items.first().and_then(SExpr::as_symbol) == Some("_") {
                match items.get(1).and_then(SExpr::as_symbol) {
                    Some("BitVec") => {
                        let w = self.index_u32(items.get(2), sexpr)?;
                        if w == 0 {
                            return self.err("bitvector width must be positive", sexpr);
                        }
                        return Ok(Sort::BitVec(w));
                    }
                    Some("FloatingPoint") => {
                        let eb = self.index_u32(items.get(2), sexpr)?;
                        let sb = self.index_u32(items.get(3), sexpr)?;
                        if eb < 2 || sb < 2 {
                            return self.err("floating-point widths must be at least 2", sexpr);
                        }
                        // Resource guard: the widest formats any consumer
                        // here manipulates (binary128 is eb=15, sb=113).
                        if eb > 60 || sb > 4096 {
                            return self.err("floating-point widths too large", sexpr);
                        }
                        return Ok(Sort::Float(eb, sb));
                    }
                    _ => {}
                }
            }
        }
        self.err("malformed sort", sexpr)
    }

    fn index_u32(&self, item: Option<&SExpr>, ctx: &SExpr) -> Result<u32, ParseError> {
        item.and_then(SExpr::as_numeral)
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| self.err::<()>("expected a numeral index", ctx).unwrap_err())
    }

    fn term(&mut self, sexpr: &SExpr, env: &HashMap<String, TermId>) -> Result<TermId, ParseError> {
        match sexpr {
            SExpr::Atom(tok) => self.atom_term(tok, sexpr, env),
            SExpr::List(items, ..) => self.list_term(items, sexpr, env),
        }
    }

    fn atom_term(
        &mut self,
        tok: &Token,
        at: &SExpr,
        env: &HashMap<String, TermId>,
    ) -> Result<TermId, ParseError> {
        match &tok.kind {
            TokenKind::Numeral(s) => {
                let v: BigInt = s.parse().expect("lexer produced a valid numeral");
                Ok(self.store.int(v))
            }
            TokenKind::Decimal(s) => {
                let v: BigRational = s.parse().expect("lexer produced a valid decimal");
                Ok(self.store.real(v))
            }
            TokenKind::Binary(s) => {
                let mut v = BigInt::zero();
                for c in s.chars() {
                    v = v.shl_bits(1);
                    if c == '1' {
                        v = &v + &BigInt::one();
                    }
                }
                Ok(self.store.bv(BitVecValue::new(v, s.len() as u32)))
            }
            TokenKind::Hex(s) => {
                let mut v = BigInt::zero();
                for c in s.chars() {
                    v = v.shl_bits(4);
                    let d = c.to_digit(16).expect("lexer produced valid hex");
                    v = &v + &BigInt::from(d);
                }
                Ok(self.store.bv(BitVecValue::new(v, 4 * s.len() as u32)))
            }
            TokenKind::Symbol(name) => {
                if let Some(&bound) = env.get(name) {
                    return Ok(bound);
                }
                if let Some(&def) = self.defs.get(name) {
                    return Ok(def);
                }
                match name.as_str() {
                    "true" => return Ok(self.store.bool(true)),
                    "false" => return Ok(self.store.bool(false)),
                    "RNE" | "roundNearestTiesToEven" => {
                        return Ok(self.store.rm(RoundingMode::NearestEven))
                    }
                    "RNA" | "roundNearestTiesToAway" => {
                        return Ok(self.store.rm(RoundingMode::NearestAway))
                    }
                    "RTP" | "roundTowardPositive" => {
                        return Ok(self.store.rm(RoundingMode::TowardPositive))
                    }
                    "RTN" | "roundTowardNegative" => {
                        return Ok(self.store.rm(RoundingMode::TowardNegative))
                    }
                    "RTZ" | "roundTowardZero" => {
                        return Ok(self.store.rm(RoundingMode::TowardZero))
                    }
                    _ => {}
                }
                match self.store.symbol(name) {
                    Some(sym) => Ok(self.store.var(sym)),
                    None => self.err(format!("undeclared symbol `{name}`"), at),
                }
            }
            TokenKind::StringLit(_) => self.err("string literals are not terms here", at),
            TokenKind::LParen | TokenKind::RParen => unreachable!("parens handled by sexpr parser"),
        }
    }

    fn list_term(
        &mut self,
        items: &[SExpr],
        at: &SExpr,
        env: &HashMap<String, TermId>,
    ) -> Result<TermId, ParseError> {
        if items.is_empty() {
            return self.err("empty application", at);
        }
        // Indexed identifiers and special fp constants: (_ ...).
        if items[0].as_symbol() == Some("_") {
            return self.indexed_term(items, at);
        }
        // FP literal: (fp #b<sign> #b<exp> #b<sig>).
        if items[0].as_symbol() == Some("fp") {
            return self.fp_literal(items, at);
        }
        // let binding.
        if items[0].as_symbol() == Some("let") {
            let SExpr::List(bindings, ..) = &items[1] else {
                return self.err("let expects a binding list", at);
            };
            let mut inner = env.clone();
            for b in bindings {
                let SExpr::List(pair, ..) = b else {
                    return self.err("malformed let binding", at);
                };
                let name = pair
                    .first()
                    .and_then(SExpr::as_symbol)
                    .ok_or_else(|| self.err::<()>("let binding needs a name", at).unwrap_err())?
                    .to_string();
                let value = self.term(&pair[1], env)?;
                inner.insert(name, value);
            }
            let body = items
                .get(2)
                .ok_or_else(|| self.err::<()>("let expects a body", at).unwrap_err())?;
            return self.term(body, &inner);
        }
        // Indexed operator application: ((_ extract 7 4) x) etc.
        if let SExpr::List(head_items, ..) = &items[0] {
            if head_items.first().and_then(SExpr::as_symbol) == Some("_") {
                let kind = head_items
                    .get(1)
                    .and_then(SExpr::as_symbol)
                    .ok_or_else(|| {
                        self.err::<()>("malformed indexed operator", at)
                            .unwrap_err()
                    })?;
                let op = match kind {
                    "extract" => {
                        let hi = self.index_u32(head_items.get(2), at)?;
                        let lo = self.index_u32(head_items.get(3), at)?;
                        Op::BvExtract(hi, lo)
                    }
                    "sign_extend" => Op::BvSignExtend(self.index_u32(head_items.get(2), at)?),
                    "zero_extend" => Op::BvZeroExtend(self.index_u32(head_items.get(2), at)?),
                    other => {
                        return self.err(format!("unsupported indexed operator `{other}`"), at)
                    }
                };
                let mut args = Vec::with_capacity(items.len() - 1);
                for item in &items[1..] {
                    args.push(self.term(item, env)?);
                }
                return self
                    .store
                    .app(op, &args)
                    .map_err(|e| self.err::<()>(e.to_string(), at).unwrap_err());
            }
        }
        let Some(head) = items[0].as_symbol() else {
            return self.err("application head must be a symbol", at);
        };
        let mut args = Vec::with_capacity(items.len() - 1);
        for item in &items[1..] {
            args.push(self.term(item, env)?);
        }
        let op = match head {
            "not" => Op::Not,
            "and" => Op::And,
            "or" => Op::Or,
            "xor" => Op::Xor,
            "=>" => Op::Implies,
            "ite" => Op::Ite,
            "=" => Op::Eq,
            "distinct" => Op::Distinct,
            "-" => {
                if args.len() == 1 {
                    Op::Neg
                } else {
                    Op::Sub
                }
            }
            "+" => Op::Add,
            "*" => Op::Mul,
            "div" => Op::IntDiv,
            "mod" => Op::Mod,
            "abs" => Op::Abs,
            "/" => Op::RealDiv,
            "<=" => Op::Le,
            "<" => Op::Lt,
            ">=" => Op::Ge,
            ">" => Op::Gt,
            "bvadd" => Op::BvAdd,
            "bvsub" => Op::BvSub,
            "bvmul" => Op::BvMul,
            "bvneg" => Op::BvNeg,
            "bvsdiv" => Op::BvSdiv,
            "bvsrem" => Op::BvSrem,
            "bvudiv" => Op::BvUdiv,
            "bvurem" => Op::BvUrem,
            "bvshl" => Op::BvShl,
            "bvlshr" => Op::BvLshr,
            "bvashr" => Op::BvAshr,
            "bvand" => Op::BvAnd,
            "bvor" => Op::BvOr,
            "bvxor" => Op::BvXor,
            "bvnot" => Op::BvNot,
            "bvslt" => Op::BvSlt,
            "bvsle" => Op::BvSle,
            "bvsgt" => Op::BvSgt,
            "bvsge" => Op::BvSge,
            "bvult" => Op::BvUlt,
            "bvule" => Op::BvUle,
            "bvsaddo" => Op::BvSaddo,
            "bvssubo" => Op::BvSsubo,
            "bvsmulo" => Op::BvSmulo,
            "bvsdivo" => Op::BvSdivo,
            "bvnego" => Op::BvNego,
            "fp.add" => Op::FpAdd,
            "fp.sub" => Op::FpSub,
            "fp.mul" => Op::FpMul,
            "fp.div" => Op::FpDiv,
            "fp.neg" => Op::FpNeg,
            "fp.abs" => Op::FpAbs,
            "fp.eq" => Op::FpEq,
            "fp.lt" => Op::FpLt,
            "fp.leq" => Op::FpLeq,
            "fp.gt" => Op::FpGt,
            "fp.geq" => Op::FpGeq,
            "fp.isNaN" => Op::FpIsNan,
            "fp.isInfinite" => Op::FpIsInf,
            other => return self.err(format!("unsupported operator `{other}`"), at),
        };
        self.store
            .app(op, &args)
            .map_err(|e| self.err::<()>(e.to_string(), at).unwrap_err())
    }

    fn indexed_term(&mut self, items: &[SExpr], at: &SExpr) -> Result<TermId, ParseError> {
        let Some(kind) = items.get(1).and_then(SExpr::as_symbol) else {
            return self.err("malformed indexed identifier", at);
        };
        // (_ bvN width)
        if let Some(num) = kind.strip_prefix("bv") {
            if let Ok(value) = num.parse::<BigInt>() {
                let width = self.index_u32(items.get(2), at)?;
                if width == 0 {
                    return self.err("bitvector width must be positive", at);
                }
                return Ok(self.store.bv(BitVecValue::new(value, width)));
            }
        }
        match kind {
            "+oo" | "-oo" | "NaN" | "+zero" | "-zero" => {
                let eb = self.index_u32(items.get(2), at)?;
                let sb = self.index_u32(items.get(3), at)?;
                if eb < 2 || sb < 2 {
                    return self.err("floating-point widths must be at least 2", at);
                }
                if eb > 60 || sb > 4096 {
                    return self.err("floating-point widths too large", at);
                }
                let v = match kind {
                    "+oo" => SoftFloat::infinity(eb, sb, false),
                    "-oo" => SoftFloat::infinity(eb, sb, true),
                    "NaN" => SoftFloat::nan(eb, sb),
                    "+zero" => SoftFloat::zero(eb, sb),
                    _ => SoftFloat::neg_zero(eb, sb),
                };
                Ok(self.store.fp(v))
            }
            other => self.err(format!("unsupported indexed identifier `{other}`"), at),
        }
    }

    fn fp_literal(&mut self, items: &[SExpr], at: &SExpr) -> Result<TermId, ParseError> {
        let bits = |i: usize| -> Option<&str> {
            match items.get(i) {
                Some(SExpr::Atom(Token {
                    kind: TokenKind::Binary(s),
                    ..
                })) => Some(s),
                _ => None,
            }
        };
        let (Some(sign), Some(exp), Some(sig)) = (bits(1), bits(2), bits(3)) else {
            return self.err("fp literal expects three binary fields", at);
        };
        if sign.len() != 1 {
            return self.err("fp literal sign must be one bit", at);
        }
        let to_big = |s: &str| {
            let mut v = BigInt::zero();
            for c in s.chars() {
                v = v.shl_bits(1);
                if c == '1' {
                    v = &v + &BigInt::one();
                }
            }
            v
        };
        let eb = exp.len() as u32;
        let sb = sig.len() as u32 + 1;
        if eb < 2 || sb < 2 {
            return self.err("fp literal widths must be at least 2", at);
        }
        if eb > 60 || sb > 4096 {
            return self.err("fp literal widths too large", at);
        }
        let value = SoftFloat::from_fields(eb, sb, sign == "1", &to_big(exp), &to_big(sig));
        Ok(self.store.fp(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Script;

    #[test]
    fn parses_motivating_example() {
        let src = "\
(set-logic QF_NIA)
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))
(check-sat)";
        let script = Script::parse(src).unwrap();
        assert_eq!(script.assertions().len(), 1);
        assert_eq!(script.store().symbol_count(), 3);
        assert_eq!(script.logic(), Some(&Logic::QfNia));
    }

    #[test]
    fn parses_bitvector_constraint() {
        let src = "\
(declare-fun x () (_ BitVec 12))
(assert (not (bvsmulo x x)))
(assert (= (bvmul x x) (_ bv49 12)))
(check-sat)";
        let script = Script::parse(src).unwrap();
        assert_eq!(script.assertions().len(), 2);
        assert_eq!(
            script
                .store()
                .symbol_sort(script.store().symbol("x").unwrap()),
            Sort::BitVec(12)
        );
    }

    #[test]
    fn parses_real_and_fp() {
        let src = "\
(declare-fun r () Real)
(declare-fun f () (_ FloatingPoint 8 24))
(assert (> r 3.5))
(assert (fp.lt f (fp #b0 #b10000000 #b10000000000000000000000)))
(assert (not (fp.isNaN f)))
(check-sat)";
        let script = Script::parse(src).unwrap();
        assert_eq!(script.assertions().len(), 3);
    }

    #[test]
    fn fp_literal_value() {
        // (fp #b0 #b10000000 #b10000000000000000000000) = 1.5 * 2^1 = 3.0
        let src = "\
(declare-fun f () (_ FloatingPoint 8 24))
(assert (fp.eq f (fp #b0 #b10000000 #b10000000000000000000000)))";
        let script = Script::parse(src).unwrap();
        let assertion = script.store().term(script.assertions()[0]);
        let rhs = script.store().term(assertion.args()[1]);
        match rhs.op() {
            Op::FpConst(v) => {
                assert_eq!(v.to_rational().unwrap(), "3".parse().unwrap());
            }
            other => panic!("expected fp literal, got {other:?}"),
        }
    }

    #[test]
    fn let_bindings() {
        let src = "\
(declare-fun x () Int)
(assert (let ((y (* x x))) (= (+ y y) 8)))";
        let script = Script::parse(src).unwrap();
        assert_eq!(script.assertions().len(), 1);
        // y is inlined: term is (= (+ (* x x) (* x x)) 8)
        let t = script.store().term(script.assertions()[0]);
        assert_eq!(*t.op(), Op::Eq);
    }

    #[test]
    fn parallel_let_semantics() {
        // Inner let bindings see the *outer* scope, not each other.
        let src = "\
(declare-fun x () Int)
(assert (let ((x 1) (y x)) (= y x)))";
        let script = Script::parse(src).unwrap();
        // y binds to outer x (the variable), second x to 1.
        let t = script.store().term(script.assertions()[0]);
        let lhs = script.store().term(t.args()[0]);
        assert!(matches!(lhs.op(), Op::Var(_)));
    }

    #[test]
    fn define_fun_inlines() {
        let src = "\
(declare-fun x () Int)
(define-fun two () Int 2)
(assert (= x two))";
        let script = Script::parse(src).unwrap();
        let t = script.store().term(script.assertions()[0]);
        let rhs = script.store().term(t.args()[1]);
        assert!(matches!(rhs.op(), Op::IntConst(_)));
    }

    #[test]
    fn special_fp_constants() {
        let src = "\
(declare-fun f () (_ FloatingPoint 8 24))
(assert (= f (_ +oo 8 24)))
(assert (distinct f (_ NaN 8 24)))";
        let script = Script::parse(src).unwrap();
        assert_eq!(script.assertions().len(), 2);
    }

    #[test]
    fn hex_and_binary_literals() {
        let src = "\
(declare-fun b () (_ BitVec 8))
(assert (= b #xff))
(assert (= b #b11111111))";
        let script = Script::parse(src).unwrap();
        let t0 = script.store().term(script.assertions()[0]);
        let t1 = script.store().term(script.assertions()[1]);
        assert_eq!(
            t0.args()[1],
            t1.args()[1],
            "same literal interns identically"
        );
    }

    #[test]
    fn errors_have_positions() {
        let err = Script::parse("(assert\n  (= x 1))").unwrap_err();
        assert_eq!(err.line(), 2, "undeclared symbol reported on its line");
        assert!(err.to_string().contains("undeclared symbol"));
    }

    #[test]
    fn rejects_unbalanced() {
        assert!(Script::parse("(assert (= 1 1)").is_err());
        assert!(Script::parse(")").is_err());
    }

    #[test]
    fn rejects_ill_sorted() {
        let err = Script::parse("(declare-fun x () Int)(assert (and x true))").unwrap_err();
        assert!(err.to_string().contains("Bool"), "got: {err}");
    }

    #[test]
    fn rejects_unsupported_command() {
        assert!(Script::parse("(push 1)").is_err());
    }

    #[test]
    fn rejects_nonzero_arity_declare() {
        assert!(Script::parse("(declare-fun f (Int) Int)").is_err());
    }

    #[test]
    fn chainable_comparison() {
        let src = "(declare-fun x () Int)(assert (< 0 x 10))";
        let script = Script::parse(src).unwrap();
        assert_eq!(script.assertions().len(), 1);
    }

    fn nested_nots(depth: usize) -> String {
        let mut src = String::from("(declare-fun p () Bool)(assert ");
        for _ in 0..depth {
            src.push_str("(not ");
        }
        src.push('p');
        for _ in 0..depth {
            src.push(')');
        }
        src.push(')');
        src
    }

    #[test]
    fn depth_below_cap_parses() {
        let script = Script::parse_with_max_depth(&nested_nots(50), 100).unwrap();
        assert_eq!(script.assertions().len(), 1);
    }

    #[test]
    fn depth_above_cap_errors_cleanly() {
        let err = Script::parse_with_max_depth(&nested_nots(101), 100).unwrap_err();
        assert_eq!(err.kind(), ParseErrorKind::MaxDepthExceeded);
        assert!(err.to_string().contains("maximum nesting depth"));
    }

    #[test]
    fn hundred_k_deep_not_tower_is_rejected_not_crashed() {
        // The depth guard fires during s-expression reading, before any
        // deep tree exists — no stack overflow, no abort.
        let err = Script::parse(&nested_nots(100_000)).unwrap_err();
        assert_eq!(err.kind(), ParseErrorKind::MaxDepthExceeded);
    }

    #[test]
    fn syntax_errors_have_syntax_kind() {
        let err = Script::parse("(assert (= x 1))").unwrap_err();
        assert_eq!(err.kind(), ParseErrorKind::Syntax);
    }

    #[test]
    fn unary_minus_vs_subtraction() {
        let src = "(declare-fun x () Int)(assert (= (- x) (- 0 x)))";
        let script = Script::parse(src).unwrap();
        let t = script.store().term(script.assertions()[0]);
        let lhs = script.store().term(t.args()[0]);
        let rhs = script.store().term(t.args()[1]);
        assert_eq!(*lhs.op(), Op::Neg);
        assert_eq!(*rhs.op(), Op::Sub);
    }
}
