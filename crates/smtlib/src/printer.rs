//! Printing terms and scripts back to SMT-LIB concrete syntax.

use std::fmt::{self, Write as _};

use crate::op::Op;
use crate::script::{Command, Script};
use crate::term::{TermId, TermStore};

/// Renders one term to SMT-LIB concrete syntax.
///
/// Shared subterms are printed in full at each occurrence; constraints in
/// this workspace are small enough that `let`-reintroduction is unnecessary.
///
/// # Examples
///
/// ```
/// use staub_smtlib::{print_term, Script};
///
/// let s = Script::parse("(declare-fun x () Int)(assert (<= (* x x) 9))")?;
/// assert_eq!(print_term(s.store(), s.assertions()[0]), "(<= (* x x) 9)");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn print_term(store: &TermStore, id: TermId) -> String {
    let mut out = String::new();
    write_term(store, id, &mut out).expect("writing to String cannot fail");
    out
}

/// Pending work for the iterative term writer.
enum Frame {
    Term(TermId),
    Text(&'static str),
}

/// Renders a term with an explicit work stack — terms of arbitrary depth
/// (which can be built programmatically even though the parser caps its
/// input nesting) print without overflowing the call stack.
fn write_term(store: &TermStore, id: TermId, out: &mut String) -> fmt::Result {
    let mut work = vec![Frame::Term(id)];
    while let Some(frame) = work.pop() {
        let id = match frame {
            Frame::Text(s) => {
                out.write_str(s)?;
                continue;
            }
            Frame::Term(id) => id,
        };
        let term = store.term(id);
        match term.op() {
            Op::Var(sym) => out.write_str(store.symbol_name(*sym))?,
            Op::True => out.write_str("true")?,
            Op::False => out.write_str("false")?,
            Op::IntConst(v) => {
                if v.is_negative() {
                    write!(out, "(- {})", v.abs())?;
                } else {
                    write!(out, "{v}")?;
                }
            }
            Op::RealConst(v) => {
                let mag = v.abs();
                let body = if mag.is_integer() {
                    format!("{}.0", mag.numer())
                } else {
                    format!("(/ {}.0 {}.0)", mag.numer(), mag.denom())
                };
                if v.is_negative() {
                    write!(out, "(- {body})")?;
                } else {
                    out.write_str(&body)?;
                }
            }
            Op::BvConst(v) => write!(out, "{v}")?,
            Op::FpConst(v) => {
                let (sign, exp, sig) = v.to_fields();
                let exp_bits = to_bin(&exp, v.eb());
                let sig_bits = to_bin(&sig, v.sb() - 1);
                write!(out, "(fp #b{} #b{exp_bits} #b{sig_bits})", u8::from(sign))?;
            }
            Op::RmConst(_) => out.write_str(&term.op().smtlib_name())?,
            op => {
                write!(out, "({}", op.smtlib_name())?;
                work.push(Frame::Text(")"));
                for &arg in term.args().iter().rev() {
                    work.push(Frame::Term(arg));
                    work.push(Frame::Text(" "));
                }
            }
        }
    }
    Ok(())
}

fn to_bin(v: &staub_numeric::BigInt, width: u32) -> String {
    (0..width)
        .rev()
        .map(|i| if v.bit(i as usize) { '1' } else { '0' })
        .collect()
}

/// Prints a whole script in SMT-LIB concrete syntax, one command per line.
pub(crate) fn print_script(script: &Script, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let store = script.store();
    for command in script.commands() {
        match command {
            Command::SetLogic(logic) => writeln!(f, "(set-logic {})", logic.name())?,
            Command::SetInfo(key, value) => {
                if value
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
                    && !value.is_empty()
                {
                    writeln!(f, "(set-info {key} {value})")?;
                } else {
                    writeln!(f, "(set-info {key} \"{value}\")")?;
                }
            }
            Command::Declare(sym) => writeln!(
                f,
                "(declare-fun {} () {})",
                store.symbol_name(*sym),
                store.symbol_sort(*sym)
            )?,
            Command::Assert(term) => writeln!(f, "(assert {})", print_term(store, *term))?,
            Command::CheckSat => writeln!(f, "(check-sat)")?,
            Command::GetModel => writeln!(f, "(get-model)")?,
            Command::Exit => writeln!(f, "(exit)")?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) {
        let script = Script::parse(src).unwrap();
        let printed = script.to_string();
        let reparsed = Script::parse(&printed)
            .unwrap_or_else(|e| panic!("reprinting `{src}` gave unparsable `{printed}`: {e}"));
        assert_eq!(
            reparsed.to_string(),
            printed,
            "printing is a fixed point for `{src}`"
        );
        assert_eq!(reparsed.assertions().len(), script.assertions().len());
    }

    #[test]
    fn round_trips() {
        round_trip("(set-logic QF_NIA)(declare-fun x () Int)(assert (= (* x x) 49))(check-sat)");
        round_trip("(declare-fun r () Real)(assert (< r 3.25))(assert (> r (- 1.5)))");
        round_trip("(declare-fun b () (_ BitVec 12))(assert (bvslt b (_ bv855 12)))");
        round_trip(
            "(declare-fun f () (_ FloatingPoint 8 24))\
             (assert (fp.lt f (fp #b0 #b10000000 #b10000000000000000000000)))",
        );
        round_trip("(declare-fun x () Int)(assert (distinct (- x) (abs x) (div x 2) (mod x 2)))");
        round_trip("(set-info :status sat)(declare-fun x () Int)(assert (> x 0))");
    }

    #[test]
    fn negative_literals_print_as_applications() {
        let script = Script::parse("(declare-fun x () Int)(assert (= x (- 5)))").unwrap();
        let printed = script.to_string();
        assert!(printed.contains("(- 5)"), "got: {printed}");
    }

    #[test]
    fn rational_prints_as_division() {
        let script = Script::parse("(declare-fun r () Real)(assert (= r (/ 1.0 3.0)))").unwrap();
        // 1/3 is a RealDiv application of literals, not a constant — but a
        // parsed decimal like 0.125 is one constant.
        let script2 = Script::parse("(declare-fun r () Real)(assert (= r 0.125))").unwrap();
        assert!(script2.to_string().contains("(/ 1.0 8.0)"));
        assert!(script.to_string().contains("(/ 1.0 3.0)"));
    }

    #[test]
    fn deep_programmatic_terms_print_without_overflow() {
        // Deeper than any sane call stack: the writer must be iterative.
        let mut script = Script::new();
        let p = script.declare("p", crate::sort::Sort::Bool).unwrap();
        let mut t = script.store_mut().var(p);
        for _ in 0..200_000 {
            t = script.store_mut().app(Op::Not, &[t]).unwrap();
        }
        let printed = print_term(script.store(), t);
        assert!(printed.starts_with("(not (not "));
        assert!(printed.contains("(not p)"));
        assert!(printed.ends_with("))"));
        assert_eq!(printed.matches("(not").count(), 200_000);
        assert_eq!(printed.matches(')').count(), 200_000);
    }

    #[test]
    fn fp_special_values_print_as_literals() {
        let script =
            Script::parse("(declare-fun f () (_ FloatingPoint 8 24))(assert (= f (_ NaN 8 24)))")
                .unwrap();
        let printed = script.to_string();
        let reparsed = Script::parse(&printed).unwrap();
        assert_eq!(reparsed.assertions().len(), 1);
    }
}
