//! S-expression lexer for the SMT-LIB concrete syntax.

use std::fmt;

/// A lexical token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TokenKind {
    LParen,
    RParen,
    /// Simple or quoted symbol, keywords like `:status`, reserved words.
    Symbol(String),
    /// Decimal numeral, e.g. `855`.
    Numeral(String),
    /// Decimal fraction, e.g. `3.25`.
    Decimal(String),
    /// Binary literal without the `#b` prefix.
    Binary(String),
    /// Hex literal without the `#x` prefix.
    Hex(String),
    /// String literal without quotes.
    StringLit(String),
}

/// A lexical error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LexError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

fn is_symbol_char(c: char) -> bool {
    c.is_ascii_alphanumeric()
        || matches!(
            c,
            '~' | '!'
                | '@'
                | '$'
                | '%'
                | '^'
                | '&'
                | '*'
                | '_'
                | '-'
                | '+'
                | '='
                | '<'
                | '>'
                | '.'
                | '?'
                | '/'
                | ':'
        )
}

/// Tokenizes an SMT-LIB source string.
pub(crate) fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            ';' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '(' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line: tline,
                    col: tcol,
                });
            }
            ')' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line: tline,
                    col: tcol,
                });
            }
            '#' => {
                bump!();
                match chars.peek() {
                    Some('b') => {
                        bump!();
                        let mut s = String::new();
                        while let Some(&c) = chars.peek() {
                            if c == '0' || c == '1' {
                                s.push(c);
                                bump!();
                            } else {
                                break;
                            }
                        }
                        if s.is_empty() {
                            return Err(LexError {
                                message: "empty binary literal".into(),
                                line: tline,
                                col: tcol,
                            });
                        }
                        tokens.push(Token {
                            kind: TokenKind::Binary(s),
                            line: tline,
                            col: tcol,
                        });
                    }
                    Some('x') => {
                        bump!();
                        let mut s = String::new();
                        while let Some(&c) = chars.peek() {
                            if c.is_ascii_hexdigit() {
                                s.push(c);
                                bump!();
                            } else {
                                break;
                            }
                        }
                        if s.is_empty() {
                            return Err(LexError {
                                message: "empty hex literal".into(),
                                line: tline,
                                col: tcol,
                            });
                        }
                        tokens.push(Token {
                            kind: TokenKind::Hex(s),
                            line: tline,
                            col: tcol,
                        });
                    }
                    other => {
                        return Err(LexError {
                            message: format!("unexpected character after `#`: {other:?}"),
                            line: tline,
                            col: tcol,
                        })
                    }
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => {
                            // SMT-LIB escapes a quote by doubling it.
                            if chars.peek() == Some(&'"') {
                                bump!();
                                s.push('"');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".into(),
                                line: tline,
                                col: tcol,
                            })
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::StringLit(s),
                    line: tline,
                    col: tcol,
                });
            }
            '|' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('|') => break,
                        Some(c) => s.push(c),
                        None => {
                            return Err(LexError {
                                message: "unterminated quoted symbol".into(),
                                line: tline,
                                col: tcol,
                            })
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Symbol(s),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                let mut is_decimal = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        bump!();
                    } else if c == '.' && !is_decimal {
                        is_decimal = true;
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let kind = if is_decimal {
                    if s.ends_with('.') {
                        return Err(LexError {
                            message: format!("malformed decimal `{s}`"),
                            line: tline,
                            col: tcol,
                        });
                    }
                    TokenKind::Decimal(s)
                } else {
                    TokenKind::Numeral(s)
                };
                tokens.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                });
            }
            c if is_symbol_char(c) => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if is_symbol_char(c) {
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Symbol(s),
                    line: tline,
                    col: tcol,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line: tline,
                    col: tcol,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("(assert (= x 855))"),
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("assert".into()),
                TokenKind::LParen,
                TokenKind::Symbol("=".into()),
                TokenKind::Symbol("x".into()),
                TokenKind::Numeral("855".into()),
                TokenKind::RParen,
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("; a comment\nx ; trailing\ny"),
            vec![TokenKind::Symbol("x".into()), TokenKind::Symbol("y".into()),]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(kinds("3.25"), vec![TokenKind::Decimal("3.25".into())]);
        assert_eq!(kinds("#b1010"), vec![TokenKind::Binary("1010".into())]);
        assert_eq!(kinds("#xAf0"), vec![TokenKind::Hex("Af0".into())]);
        assert_eq!(kinds("\"hi\""), vec![TokenKind::StringLit("hi".into())]);
        assert_eq!(
            kinds("|odd name|"),
            vec![TokenKind::Symbol("odd name".into())]
        );
    }

    #[test]
    fn operators_are_symbols() {
        assert_eq!(
            kinds("<= >= => bvadd :status"),
            vec![
                TokenKind::Symbol("<=".into()),
                TokenKind::Symbol(">=".into()),
                TokenKind::Symbol("=>".into()),
                TokenKind::Symbol("bvadd".into()),
                TokenKind::Symbol(":status".into()),
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = tokenize("(a\n  b)").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 2));
        assert_eq!((toks[2].line, toks[2].col), (2, 3));
    }

    #[test]
    fn errors() {
        assert!(tokenize("#q").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("1.").is_err());
        assert!(tokenize("[").is_err());
    }
}
