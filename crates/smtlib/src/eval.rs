//! Exact evaluation of terms under a model.
//!
//! This is the workhorse behind STAUB's verification step (paper §4.4): a
//! candidate model of the *bounded* constraint is mapped back to unbounded
//! values and the original constraint is evaluated exactly — far cheaper
//! than a second solver call, which keeps `T_check` de minimis (§6.1).

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;

use staub_numeric::{BigInt, BigRational, RoundingMode};

use crate::op::Op;
use crate::term::{TermId, TermStore};
use crate::value::{Model, Value};

/// Error produced during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// A variable had no binding in the model.
    UnboundVariable(String),
    /// Integer `div`/`mod` or real `/` with a zero divisor — these are
    /// uninterpreted in SMT-LIB, so evaluation cannot produce a value.
    DivisionByZero,
    /// The term nests deeper than the evaluator's depth cap — returned
    /// instead of overflowing the stack on adversarially deep terms (which
    /// can be built programmatically even though the parser caps its own
    /// input depth).
    MaxDepthExceeded,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            EvalError::DivisionByZero => f.write_str("division by zero is uninterpreted"),
            EvalError::MaxDepthExceeded => f.write_str("maximum term depth exceeded"),
        }
    }
}

impl Error for EvalError {}

/// Evaluates `root` under `model`, memoizing shared subterms.
///
/// # Errors
///
/// Returns [`EvalError`] if a variable is unbound or an uninterpreted
/// partial operation (division by zero) is reached.
///
/// # Examples
///
/// ```
/// use staub_smtlib::{evaluate, Model, Script, Value};
/// use staub_numeric::BigInt;
///
/// let s = Script::parse("(declare-fun x () Int)(assert (= (* x x) 49))")?;
/// let x = s.store().symbol("x").unwrap();
/// let mut m = Model::new();
/// m.insert(x, Value::Int(BigInt::from(-7)));
/// assert_eq!(evaluate(s.store(), s.assertions()[0], &m)?, Value::Bool(true));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(store: &TermStore, root: TermId, model: &Model) -> Result<Value, EvalError> {
    evaluate_with_max_depth(store, root, model, crate::parser::DEFAULT_MAX_DEPTH)
}

/// [`evaluate`] with an explicit recursion-depth cap: terms nested deeper
/// than `max_depth` yield [`EvalError::MaxDepthExceeded`] instead of a
/// stack overflow.
///
/// # Errors
///
/// As [`evaluate`], plus the depth rejection above.
pub fn evaluate_with_max_depth(
    store: &TermStore,
    root: TermId,
    model: &Model,
    max_depth: usize,
) -> Result<Value, EvalError> {
    let mut memo: Vec<Option<Value>> = vec![None; store.len()];
    eval_rec(store, root, model, &mut memo, 0, max_depth)
}

fn eval_rec(
    store: &TermStore,
    id: TermId,
    model: &Model,
    memo: &mut Vec<Option<Value>>,
    depth: usize,
    max_depth: usize,
) -> Result<Value, EvalError> {
    if let Some(v) = &memo[id.index()] {
        return Ok(v.clone());
    }
    if depth >= max_depth {
        return Err(EvalError::MaxDepthExceeded);
    }
    let term = store.term(id);
    let mut args = Vec::with_capacity(term.args().len());
    for &arg in term.args() {
        args.push(eval_rec(store, arg, model, memo, depth + 1, max_depth)?);
    }
    let value = apply(store, term.op(), &args, model)?;
    memo[id.index()] = Some(value.clone());
    Ok(value)
}

fn apply(store: &TermStore, op: &Op, args: &[Value], model: &Model) -> Result<Value, EvalError> {
    use Op::*;
    let bool_at = |i: usize| args[i].as_bool().expect("sort-checked Bool");
    let bools = || args.iter().map(|v| v.as_bool().expect("sort-checked Bool"));
    Ok(match op {
        Var(sym) => model
            .get(*sym)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(store.symbol_name(*sym).to_string()))?,
        True => Value::Bool(true),
        False => Value::Bool(false),
        IntConst(v) => Value::Int(v.clone()),
        RealConst(v) => Value::Real(v.clone()),
        BvConst(v) => Value::BitVec(v.clone()),
        FpConst(v) => Value::Float(v.clone()),
        RmConst(m) => Value::Rm(*m),

        Not => Value::Bool(!bool_at(0)),
        And => Value::Bool(bools().all(|b| b)),
        Or => Value::Bool(bools().any(|b| b)),
        Xor => Value::Bool(bools().fold(false, |acc, b| acc ^ b)),
        Implies => {
            // Right-associative: a => b => c  is  a => (b => c).
            let mut acc = *args
                .last()
                .and_then(Value::as_bool)
                .as_ref()
                .expect("sort-checked");
            for v in args[..args.len() - 1].iter().rev() {
                acc = !v.as_bool().expect("sort-checked") || acc;
            }
            Value::Bool(acc)
        }
        Ite => {
            if bool_at(0) {
                args[1].clone()
            } else {
                args[2].clone()
            }
        }
        Eq => Value::Bool(args.windows(2).all(|w| w[0] == w[1])),
        Distinct => {
            let mut all_distinct = true;
            for i in 0..args.len() {
                for j in i + 1..args.len() {
                    if args[i] == args[j] {
                        all_distinct = false;
                    }
                }
            }
            Value::Bool(all_distinct)
        }

        Neg => match &args[0] {
            Value::Int(v) => Value::Int(-v.clone()),
            Value::Real(v) => Value::Real(-v.clone()),
            _ => unreachable!("sort-checked Neg"),
        },
        Abs => Value::Int(args[0].as_int().expect("sort-checked abs").abs()),
        Add => fold_arith(args, |a, b| a + b, |a, b| a + b),
        Sub => fold_arith(args, |a, b| a - b, |a, b| a - b),
        Mul => fold_arith(args, |a, b| a * b, |a, b| a * b),
        IntDiv => {
            let a = args[0].as_int().expect("sort-checked div");
            let b = args[1].as_int().expect("sort-checked div");
            if b.is_zero() {
                return Err(EvalError::DivisionByZero);
            }
            Value::Int(a.div_rem_euclid(b).0)
        }
        Mod => {
            let a = args[0].as_int().expect("sort-checked mod");
            let b = args[1].as_int().expect("sort-checked mod");
            if b.is_zero() {
                return Err(EvalError::DivisionByZero);
            }
            Value::Int(a.div_rem_euclid(b).1)
        }
        RealDiv => {
            let mut acc = args[0].as_real().expect("sort-checked /").clone();
            for v in &args[1..] {
                let d = v.as_real().expect("sort-checked /");
                if d.is_zero() {
                    return Err(EvalError::DivisionByZero);
                }
                acc = &acc / d;
            }
            Value::Real(acc)
        }
        Le => chain_cmp(args, |o| o != Ordering::Greater),
        Lt => chain_cmp(args, |o| o == Ordering::Less),
        Ge => chain_cmp(args, |o| o != Ordering::Less),
        Gt => chain_cmp(args, |o| o == Ordering::Greater),

        BvAdd => bv2(args, staub_numeric::BitVecValue::bvadd),
        BvSub => bv2(args, staub_numeric::BitVecValue::bvsub),
        BvMul => bv2(args, staub_numeric::BitVecValue::bvmul),
        BvSdiv => bv2(args, staub_numeric::BitVecValue::bvsdiv),
        BvSrem => bv2(args, staub_numeric::BitVecValue::bvsrem),
        BvUdiv => bv2(args, staub_numeric::BitVecValue::bvudiv),
        BvUrem => bv2(args, staub_numeric::BitVecValue::bvurem),
        BvShl => bv2(args, staub_numeric::BitVecValue::bvshl),
        BvLshr => bv2(args, staub_numeric::BitVecValue::bvlshr),
        BvAshr => bv2(args, staub_numeric::BitVecValue::bvashr),
        BvAnd => bv2(args, staub_numeric::BitVecValue::bvand),
        BvOr => bv2(args, staub_numeric::BitVecValue::bvor),
        BvXor => bv2(args, staub_numeric::BitVecValue::bvxor),
        BvNeg => Value::BitVec(args[0].as_bitvec().expect("sort-checked").bvneg()),
        BvNot => Value::BitVec(args[0].as_bitvec().expect("sort-checked").bvnot()),
        BvSlt => bvcmp_s(args, Ordering::is_lt),
        BvSle => bvcmp_s(args, Ordering::is_le),
        BvSgt => bvcmp_s(args, Ordering::is_gt),
        BvSge => bvcmp_s(args, Ordering::is_ge),
        BvUlt => bvcmp_u(args, Ordering::is_lt),
        BvUle => bvcmp_u(args, Ordering::is_le),
        BvSaddo => bvpred(args, staub_numeric::BitVecValue::bvsaddo),
        BvSsubo => bvpred(args, staub_numeric::BitVecValue::bvssubo),
        BvSmulo => bvpred(args, staub_numeric::BitVecValue::bvsmulo),
        BvSdivo => bvpred(args, staub_numeric::BitVecValue::bvsdivo),
        BvNego => Value::Bool(args[0].as_bitvec().expect("sort-checked").bvnego()),
        BvSignExtend(n) => {
            let v = args[0].as_bitvec().expect("sort-checked");
            Value::BitVec(v.sign_extend(v.width() + n))
        }
        BvZeroExtend(n) => {
            let v = args[0].as_bitvec().expect("sort-checked");
            Value::BitVec(v.zero_extend(v.width() + n))
        }
        BvExtract(hi, lo) => {
            let v = args[0].as_bitvec().expect("sort-checked");
            let width = hi - lo + 1;
            let shifted = v.to_unsigned().shr_bits(*lo as usize);
            Value::BitVec(staub_numeric::BitVecValue::new(shifted, width))
        }

        FpAdd => fp_arith(args, staub_numeric::SoftFloat::add),
        FpSub => fp_arith(args, staub_numeric::SoftFloat::sub),
        FpMul => fp_arith(args, staub_numeric::SoftFloat::mul),
        FpDiv => fp_arith(args, staub_numeric::SoftFloat::div),
        FpNeg => Value::Float(args[0].as_float().expect("sort-checked").neg()),
        FpAbs => Value::Float(args[0].as_float().expect("sort-checked").abs()),
        FpEq => fp_chain(args, staub_numeric::SoftFloat::ieee_eq),
        FpLt => fp_chain(args, |a, b| a.ieee_cmp(b) == Some(Ordering::Less)),
        FpLeq => fp_chain(args, |a, b| {
            matches!(a.ieee_cmp(b), Some(Ordering::Less | Ordering::Equal))
        }),
        FpGt => fp_chain(args, |a, b| a.ieee_cmp(b) == Some(Ordering::Greater)),
        FpGeq => fp_chain(args, |a, b| {
            matches!(a.ieee_cmp(b), Some(Ordering::Greater | Ordering::Equal))
        }),
        FpIsNan => Value::Bool(args[0].as_float().expect("sort-checked").is_nan()),
        FpIsInf => Value::Bool(args[0].as_float().expect("sort-checked").is_infinite()),
    })
}

fn fold_arith(
    args: &[Value],
    int_op: fn(&BigInt, &BigInt) -> BigInt,
    real_op: fn(&BigRational, &BigRational) -> BigRational,
) -> Value {
    match &args[0] {
        Value::Int(first) => {
            let mut acc = first.clone();
            for v in &args[1..] {
                acc = int_op(&acc, v.as_int().expect("sort-checked arith"));
            }
            Value::Int(acc)
        }
        Value::Real(first) => {
            let mut acc = first.clone();
            for v in &args[1..] {
                acc = real_op(&acc, v.as_real().expect("sort-checked arith"));
            }
            Value::Real(acc)
        }
        _ => unreachable!("sort-checked arithmetic"),
    }
}

fn chain_cmp(args: &[Value], accept: fn(Ordering) -> bool) -> Value {
    let ok = args.windows(2).all(|w| {
        let ord = match (&w[0], &w[1]) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => a.cmp(b),
            _ => unreachable!("sort-checked comparison"),
        };
        accept(ord)
    });
    Value::Bool(ok)
}

fn bv2(
    args: &[Value],
    f: impl Fn(&staub_numeric::BitVecValue, &staub_numeric::BitVecValue) -> staub_numeric::BitVecValue,
) -> Value {
    Value::BitVec(f(
        args[0].as_bitvec().expect("sort-checked bv"),
        args[1].as_bitvec().expect("sort-checked bv"),
    ))
}

fn bvpred(
    args: &[Value],
    f: impl Fn(&staub_numeric::BitVecValue, &staub_numeric::BitVecValue) -> bool,
) -> Value {
    Value::Bool(f(
        args[0].as_bitvec().expect("sort-checked bv"),
        args[1].as_bitvec().expect("sort-checked bv"),
    ))
}

fn bvcmp_s(args: &[Value], accept: fn(Ordering) -> bool) -> Value {
    Value::Bool(accept(
        args[0]
            .as_bitvec()
            .expect("sort-checked bv")
            .scmp(args[1].as_bitvec().expect("sort-checked bv")),
    ))
}

fn bvcmp_u(args: &[Value], accept: fn(Ordering) -> bool) -> Value {
    Value::Bool(accept(
        args[0]
            .as_bitvec()
            .expect("sort-checked bv")
            .ucmp(args[1].as_bitvec().expect("sort-checked bv")),
    ))
}

fn fp_arith(
    args: &[Value],
    f: impl Fn(
        &staub_numeric::SoftFloat,
        &staub_numeric::SoftFloat,
        RoundingMode,
    ) -> staub_numeric::SoftFloat,
) -> Value {
    let Value::Rm(mode) = &args[0] else {
        unreachable!("sort-checked fp rounding mode")
    };
    Value::Float(f(
        args[1].as_float().expect("sort-checked fp"),
        args[2].as_float().expect("sort-checked fp"),
        *mode,
    ))
}

fn fp_chain(
    args: &[Value],
    f: impl Fn(&staub_numeric::SoftFloat, &staub_numeric::SoftFloat) -> bool,
) -> Value {
    Value::Bool(args.windows(2).all(|w| {
        f(
            w[0].as_float().expect("sort-checked fp"),
            w[1].as_float().expect("sort-checked fp"),
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Script;
    use staub_numeric::BitVecValue;

    fn eval_src(src: &str, bind: &[(&str, Value)]) -> Result<Value, EvalError> {
        let script = Script::parse(src).unwrap();
        let mut model = Model::new();
        for (name, value) in bind {
            let sym = script.store().symbol(name).unwrap();
            model.insert(sym, value.clone());
        }
        evaluate(script.store(), script.assertions()[0], &model)
    }

    fn int(v: i64) -> Value {
        Value::Int(BigInt::from(v))
    }

    fn real(s: &str) -> Value {
        Value::Real(s.parse().unwrap())
    }

    #[test]
    fn deep_programmatic_terms_error_instead_of_overflowing() {
        // Deep towers can be built through the store even though the
        // parser caps its input nesting; evaluation must refuse cleanly.
        let mut script = Script::new();
        let p = script.declare("p", crate::sort::Sort::Bool).unwrap();
        let mut t = script.store_mut().var(p);
        for _ in 0..300 {
            t = script.store_mut().app(crate::op::Op::Not, &[t]).unwrap();
        }
        let mut model = Model::new();
        model.insert(script.store().symbol("p").unwrap(), Value::Bool(true));
        // Below the cap: evaluates (300 nots = identity).
        let v = evaluate_with_max_depth(script.store(), t, &model, 1_000).unwrap();
        assert_eq!(v, Value::Bool(true));
        // Above the cap: structured error.
        let err = evaluate_with_max_depth(script.store(), t, &model, 100).unwrap_err();
        assert_eq!(err, EvalError::MaxDepthExceeded);
    }

    #[test]
    fn motivating_example_assignment() {
        let src = "\
(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)
(assert (= (+ (* x x x) (* y y y) (* z z z)) 855))";
        let v = eval_src(src, &[("x", int(7)), ("y", int(8)), ("z", int(0))]).unwrap();
        assert_eq!(v, Value::Bool(true));
        let v = eval_src(src, &[("x", int(7)), ("y", int(8)), ("z", int(1))]).unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn boolean_connectives() {
        let src = "(declare-fun a () Bool)(declare-fun b () Bool)(assert (=> a b a))";
        // Right-assoc: a => (b => a); with a=true, b=false: true => (false => true) = true.
        let v = eval_src(src, &[("a", Value::Bool(true)), ("b", Value::Bool(false))]).unwrap();
        assert_eq!(v, Value::Bool(true));
        let src2 = "(declare-fun a () Bool)(assert (xor a true a))";
        assert_eq!(
            eval_src(src2, &[("a", Value::Bool(true))]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn chained_comparison() {
        let src = "(declare-fun x () Int)(assert (< 0 x 10))";
        assert_eq!(eval_src(src, &[("x", int(5))]).unwrap(), Value::Bool(true));
        assert_eq!(
            eval_src(src, &[("x", int(10))]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn distinct_all_pairs() {
        let src = "(declare-fun x () Int)(assert (distinct x 1 2))";
        assert_eq!(eval_src(src, &[("x", int(3))]).unwrap(), Value::Bool(true));
        assert_eq!(eval_src(src, &[("x", int(2))]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn euclidean_div_mod() {
        let src = "(declare-fun x () Int)(assert (= (+ (* 2 (div x 2)) (mod x 2)) x))";
        for v in [-7i64, -2, 0, 3, 8] {
            assert_eq!(
                eval_src(src, &[("x", int(v))]).unwrap(),
                Value::Bool(true),
                "x={v}"
            );
        }
        let src2 = "(declare-fun x () Int)(assert (= (mod x 2) 1))";
        assert_eq!(
            eval_src(src2, &[("x", int(-7))]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn division_by_zero_is_error() {
        let src = "(declare-fun x () Int)(assert (= (div x 0) 1))";
        assert_eq!(
            eval_src(src, &[("x", int(1))]),
            Err(EvalError::DivisionByZero)
        );
        let src2 = "(declare-fun r () Real)(assert (= (/ r 0.0) 1.0))";
        assert_eq!(
            eval_src(src2, &[("r", real("1"))]),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn unbound_variable_is_error() {
        let src = "(declare-fun x () Int)(assert (= x 1))";
        assert!(matches!(
            eval_src(src, &[]),
            Err(EvalError::UnboundVariable(name)) if name == "x"
        ));
    }

    #[test]
    fn real_arithmetic() {
        let src = "(declare-fun r () Real)(assert (= (* r r) 2.25))";
        assert_eq!(
            eval_src(src, &[("r", real("1.5"))]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_src(src, &[("r", real("-1.5"))]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_src(src, &[("r", real("1"))]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn bitvector_semantics() {
        let src = "(declare-fun b () (_ BitVec 8))(assert (= (bvmul b b) (_ bv49 8)))";
        let v = Value::BitVec(BitVecValue::from_i64(-7, 8));
        assert_eq!(eval_src(src, &[("b", v)]).unwrap(), Value::Bool(true));
        // Overflow wraps: 16*16 = 0 in 8 bits.
        let src2 = "(declare-fun b () (_ BitVec 8))(assert (= (bvmul b b) (_ bv0 8)))";
        let v2 = Value::BitVec(BitVecValue::from_i64(16, 8));
        assert_eq!(eval_src(src2, &[("b", v2)]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn overflow_predicate_semantics() {
        let src = "(declare-fun b () (_ BitVec 8))(assert (bvsmulo b b))";
        assert_eq!(
            eval_src(src, &[("b", Value::BitVec(BitVecValue::from_i64(16, 8)))]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_src(src, &[("b", Value::BitVec(BitVecValue::from_i64(7, 8)))]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn fp_rounding_observable() {
        // In binary64, round(0.1) + round(0.2) != round(0.3).
        let src = "\
(declare-fun a () (_ FloatingPoint 11 53))
(declare-fun b () (_ FloatingPoint 11 53))
(declare-fun c () (_ FloatingPoint 11 53))
(assert (fp.eq (fp.add RNE a b) c))";
        let mk = |s: &str| {
            Value::Float(staub_numeric::SoftFloat::from_rational(
                11,
                53,
                &s.parse().unwrap(),
            ))
        };
        assert_eq!(
            eval_src(src, &[("a", mk("0.1")), ("b", mk("0.2")), ("c", mk("0.3"))]).unwrap(),
            Value::Bool(false),
            "binary64 0.1+0.2 != 0.3"
        );
        assert_eq!(
            eval_src(
                src,
                &[("a", mk("0.5")), ("b", mk("0.25")), ("c", mk("0.75"))]
            )
            .unwrap(),
            Value::Bool(true)
        );
        // And in binary32, 0.1f + 0.2f happens to equal 0.3f.
        let src32 = src.replace("11 53", "8 24");
        let mk32 = |s: &str| {
            Value::Float(staub_numeric::SoftFloat::from_rational(
                8,
                24,
                &s.parse().unwrap(),
            ))
        };
        assert_eq!(
            eval_src(
                &src32,
                &[("a", mk32("0.1")), ("b", mk32("0.2")), ("c", mk32("0.3"))]
            )
            .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn fp_nan_comparisons() {
        let src = "(declare-fun f () (_ FloatingPoint 8 24))(assert (fp.eq f f))";
        let nan = Value::Float(staub_numeric::SoftFloat::nan(8, 24));
        assert_eq!(
            eval_src(src, &[("f", nan.clone())]).unwrap(),
            Value::Bool(false)
        );
        // But structural = is true for NaN.
        let src2 = "(declare-fun f () (_ FloatingPoint 8 24))(assert (= f (_ NaN 8 24)))";
        assert_eq!(eval_src(src2, &[("f", nan)]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn ite_and_abs() {
        let src = "(declare-fun x () Int)(assert (= (ite (< x 0) (- x) x) (abs x)))";
        for v in [-5i64, 0, 5] {
            assert_eq!(eval_src(src, &[("x", int(v))]).unwrap(), Value::Bool(true));
        }
    }
}
