//! Function symbols (operators) and their sort-checking rules.

use std::error::Error;
use std::fmt;

use staub_numeric::{BigInt, BigRational, BitVecValue, RoundingMode, SoftFloat};

use crate::sort::Sort;
use crate::term::SymbolId;

/// Every term head supported by the front end: constants, variables, and
/// function applications from the Core, Ints, Reals, FixedSizeBitVectors,
/// and FloatingPoint theories, plus the overflow predicates STAUB's
/// translation emits (proposed for SMT-LIB v3; implemented by Z3 and CVC5).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    // --- leaves -----------------------------------------------------------
    /// A declared constant (0-ary function).
    Var(SymbolId),
    /// `true`.
    True,
    /// `false`.
    False,
    /// Integer literal.
    IntConst(BigInt),
    /// Real (decimal or fraction) literal.
    RealConst(BigRational),
    /// Bitvector literal.
    BvConst(BitVecValue),
    /// Floating-point literal.
    FpConst(SoftFloat),
    /// Rounding-mode literal (`RNE`, `RTZ`, ...).
    RmConst(RoundingMode),

    // --- core -------------------------------------------------------------
    /// Boolean negation.
    Not,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// N-ary exclusive or (left-associative chain).
    Xor,
    /// Right-associative implication.
    Implies,
    /// If-then-else; condition is boolean, branches share any sort.
    Ite,
    /// Chainable equality over any single sort.
    Eq,
    /// Pairwise distinctness over any single sort.
    Distinct,

    // --- integer / real arithmetic ----------------------------------------
    /// Unary minus.
    Neg,
    /// N-ary addition.
    Add,
    /// Left-associative subtraction (at least two arguments).
    Sub,
    /// N-ary multiplication.
    Mul,
    /// Euclidean integer division (`div`).
    IntDiv,
    /// Euclidean integer remainder (`mod`).
    Mod,
    /// Integer absolute value.
    Abs,
    /// Real division (`/`).
    RealDiv,
    /// `<=` over Int or Real.
    Le,
    /// `<` over Int or Real.
    Lt,
    /// `>=` over Int or Real.
    Ge,
    /// `>` over Int or Real.
    Gt,

    // --- bitvectors ---------------------------------------------------------
    /// Two's-complement addition.
    BvAdd,
    /// Two's-complement subtraction.
    BvSub,
    /// Two's-complement multiplication.
    BvMul,
    /// Two's-complement negation.
    BvNeg,
    /// Signed division (truncating).
    BvSdiv,
    /// Signed remainder.
    BvSrem,
    /// Unsigned division.
    BvUdiv,
    /// Unsigned remainder.
    BvUrem,
    /// Shift left.
    BvShl,
    /// Logical shift right.
    BvLshr,
    /// Arithmetic shift right.
    BvAshr,
    /// Bitwise and.
    BvAnd,
    /// Bitwise or.
    BvOr,
    /// Bitwise xor.
    BvXor,
    /// Bitwise not.
    BvNot,
    /// Signed less-than.
    BvSlt,
    /// Signed less-or-equal.
    BvSle,
    /// Signed greater-than.
    BvSgt,
    /// Signed greater-or-equal.
    BvSge,
    /// Unsigned less-than.
    BvUlt,
    /// Unsigned less-or-equal.
    BvUle,
    /// Signed addition overflow predicate.
    BvSaddo,
    /// Signed subtraction overflow predicate.
    BvSsubo,
    /// Signed multiplication overflow predicate.
    BvSmulo,
    /// Signed division overflow predicate.
    BvSdivo,
    /// Negation overflow predicate.
    BvNego,
    /// Sign extension by `n` extra bits (indexed operator).
    BvSignExtend(u32),
    /// Zero extension by `n` extra bits (indexed operator).
    BvZeroExtend(u32),
    /// Bit extraction `(_ extract hi lo)`.
    BvExtract(u32, u32),

    // --- floating point -----------------------------------------------------
    /// `fp.add` (first argument is the rounding mode).
    FpAdd,
    /// `fp.sub`.
    FpSub,
    /// `fp.mul`.
    FpMul,
    /// `fp.div`.
    FpDiv,
    /// `fp.neg` (no rounding mode).
    FpNeg,
    /// `fp.abs` (no rounding mode).
    FpAbs,
    /// IEEE equality `fp.eq`.
    FpEq,
    /// `fp.lt`.
    FpLt,
    /// `fp.leq`.
    FpLeq,
    /// `fp.gt`.
    FpGt,
    /// `fp.geq`.
    FpGeq,
    /// `fp.isNaN`.
    FpIsNan,
    /// `fp.isInfinite`.
    FpIsInf,
}

/// Error returned when an application is ill-sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortError {
    message: String,
}

impl SortError {
    pub(crate) fn new(message: impl Into<String>) -> SortError {
        SortError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ill-sorted term: {}", self.message)
    }
}

impl Error for SortError {}

impl Op {
    /// Returns `true` if the operator is a leaf (constant or variable).
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            Op::Var(_)
                | Op::True
                | Op::False
                | Op::IntConst(_)
                | Op::RealConst(_)
                | Op::BvConst(_)
                | Op::FpConst(_)
                | Op::RmConst(_)
        )
    }

    /// Computes the result sort of applying `self` to arguments of the given
    /// sorts (for leaves, `var_sort` supplies the variable's declared sort).
    ///
    /// # Errors
    ///
    /// Returns [`SortError`] if the arity or argument sorts are invalid.
    pub fn result_sort(&self, args: &[Sort], var_sort: Option<Sort>) -> Result<Sort, SortError> {
        use Op::*;
        let fail = |msg: String| Err(SortError::new(msg));
        let want_arity = |n: usize| -> Result<(), SortError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(SortError::new(format!(
                    "{self:?} expects {n} arguments, got {}",
                    args.len()
                )))
            }
        };
        let want_min_arity = |n: usize| -> Result<(), SortError> {
            if args.len() >= n {
                Ok(())
            } else {
                Err(SortError::new(format!(
                    "{self:?} expects at least {n} arguments, got {}",
                    args.len()
                )))
            }
        };
        let all_same = || -> Result<Sort, SortError> {
            let first = args[0];
            if args.iter().all(|&s| s == first) {
                Ok(first)
            } else {
                Err(SortError::new(format!(
                    "{self:?} expects arguments of one sort, got {args:?}"
                )))
            }
        };
        let all_bool = || -> Result<(), SortError> {
            if args.iter().all(|&s| s == Sort::Bool) {
                Ok(())
            } else {
                Err(SortError::new(format!(
                    "{self:?} expects Bool arguments, got {args:?}"
                )))
            }
        };
        let numeric_same = |kind: fn(Sort) -> bool| -> Result<Sort, SortError> {
            let first = args[0];
            if !kind(first) {
                return Err(SortError::new(format!(
                    "{self:?} got unexpected argument sort {first}"
                )));
            }
            if args.iter().all(|&s| s == first) {
                Ok(first)
            } else {
                Err(SortError::new(format!(
                    "{self:?} expects arguments of one sort, got {args:?}"
                )))
            }
        };
        let is_int_real = |s: Sort| matches!(s, Sort::Int | Sort::Real);
        let is_bv = Sort::is_bitvec;
        let is_fp = Sort::is_float;

        match self {
            Var(_) => {
                want_arity(0)?;
                var_sort.ok_or_else(|| SortError::new("variable without declared sort"))
            }
            True | False => {
                want_arity(0)?;
                Ok(Sort::Bool)
            }
            IntConst(_) => {
                want_arity(0)?;
                Ok(Sort::Int)
            }
            RealConst(_) => {
                want_arity(0)?;
                Ok(Sort::Real)
            }
            BvConst(v) => {
                want_arity(0)?;
                Ok(Sort::BitVec(v.width()))
            }
            FpConst(v) => {
                want_arity(0)?;
                Ok(Sort::Float(v.eb(), v.sb()))
            }
            RmConst(_) => {
                want_arity(0)?;
                Ok(Sort::RoundingMode)
            }

            Not => {
                want_arity(1)?;
                all_bool()?;
                Ok(Sort::Bool)
            }
            And | Or | Xor => {
                want_min_arity(1)?;
                all_bool()?;
                Ok(Sort::Bool)
            }
            Implies => {
                want_min_arity(2)?;
                all_bool()?;
                Ok(Sort::Bool)
            }
            Ite => {
                want_arity(3)?;
                if args[0] != Sort::Bool {
                    return fail(format!("ite condition must be Bool, got {}", args[0]));
                }
                if args[1] != args[2] {
                    return fail(format!(
                        "ite branches must share a sort, got {} and {}",
                        args[1], args[2]
                    ));
                }
                Ok(args[1])
            }
            Eq | Distinct => {
                want_min_arity(2)?;
                all_same()?;
                Ok(Sort::Bool)
            }

            Neg | Abs => {
                want_arity(1)?;
                if self == &Abs && args[0] != Sort::Int {
                    return fail(format!("abs is integer-only, got {}", args[0]));
                }
                numeric_same(is_int_real)
            }
            Add | Mul => {
                want_min_arity(2)?;
                numeric_same(is_int_real)
            }
            Sub => {
                want_min_arity(2)?;
                numeric_same(is_int_real)
            }
            IntDiv | Mod => {
                want_arity(2)?;
                if args.iter().all(|&s| s == Sort::Int) {
                    Ok(Sort::Int)
                } else {
                    fail(format!("{self:?} expects Int arguments, got {args:?}"))
                }
            }
            RealDiv => {
                want_min_arity(2)?;
                if args.iter().all(|&s| s == Sort::Real) {
                    Ok(Sort::Real)
                } else {
                    fail(format!("/ expects Real arguments, got {args:?}"))
                }
            }
            Le | Lt | Ge | Gt => {
                want_min_arity(2)?;
                numeric_same(is_int_real)?;
                Ok(Sort::Bool)
            }

            BvAdd | BvSub | BvMul | BvSdiv | BvSrem | BvUdiv | BvUrem | BvShl | BvLshr | BvAshr
            | BvAnd | BvOr | BvXor => {
                want_arity(2)?;
                numeric_same(is_bv)
            }
            BvNeg | BvNot => {
                want_arity(1)?;
                numeric_same(is_bv)
            }
            BvSlt | BvSle | BvSgt | BvSge | BvUlt | BvUle | BvSaddo | BvSsubo | BvSmulo
            | BvSdivo => {
                want_arity(2)?;
                numeric_same(is_bv)?;
                Ok(Sort::Bool)
            }
            BvNego => {
                want_arity(1)?;
                numeric_same(is_bv)?;
                Ok(Sort::Bool)
            }
            BvSignExtend(n) | BvZeroExtend(n) => {
                want_arity(1)?;
                match args[0] {
                    Sort::BitVec(w) => Ok(Sort::BitVec(w + n)),
                    s => fail(format!("extension expects a bitvector, got {s}")),
                }
            }
            BvExtract(hi, lo) => {
                want_arity(1)?;
                match args[0] {
                    Sort::BitVec(w) if *hi < w && lo <= hi => Ok(Sort::BitVec(hi - lo + 1)),
                    s => fail(format!("(_ extract {hi} {lo}) invalid on {s}")),
                }
            }

            FpAdd | FpSub | FpMul | FpDiv => {
                want_arity(3)?;
                if args[0] != Sort::RoundingMode {
                    return fail(format!(
                        "{self:?} expects a RoundingMode first argument, got {}",
                        args[0]
                    ));
                }
                if !is_fp(args[1]) || args[1] != args[2] {
                    return fail(format!(
                        "{self:?} expects matching FP arguments, got {args:?}"
                    ));
                }
                Ok(args[1])
            }
            FpNeg | FpAbs => {
                want_arity(1)?;
                numeric_same(is_fp)
            }
            FpEq | FpLt | FpLeq | FpGt | FpGeq => {
                want_min_arity(2)?;
                numeric_same(is_fp)?;
                Ok(Sort::Bool)
            }
            FpIsNan | FpIsInf => {
                want_arity(1)?;
                numeric_same(is_fp)?;
                Ok(Sort::Bool)
            }
        }
    }

    /// The SMT-LIB concrete syntax for this operator head (leaves print
    /// their value; indexed operators print the full `(_ ...)` form).
    pub fn smtlib_name(&self) -> String {
        use Op::*;
        match self {
            Var(_) => "<var>".to_string(),
            True => "true".into(),
            False => "false".into(),
            IntConst(v) => v.to_string(),
            RealConst(v) => v.to_string(),
            BvConst(v) => v.to_string(),
            FpConst(_) => "<fp-literal>".into(),
            RmConst(m) => match m {
                RoundingMode::NearestEven => "RNE".into(),
                RoundingMode::NearestAway => "RNA".into(),
                RoundingMode::TowardPositive => "RTP".into(),
                RoundingMode::TowardNegative => "RTN".into(),
                RoundingMode::TowardZero => "RTZ".into(),
            },
            Not => "not".into(),
            And => "and".into(),
            Or => "or".into(),
            Xor => "xor".into(),
            Implies => "=>".into(),
            Ite => "ite".into(),
            Eq => "=".into(),
            Distinct => "distinct".into(),
            Neg | Sub => "-".into(),
            Add => "+".into(),
            Mul => "*".into(),
            IntDiv => "div".into(),
            Mod => "mod".into(),
            Abs => "abs".into(),
            RealDiv => "/".into(),
            Le => "<=".into(),
            Lt => "<".into(),
            Ge => ">=".into(),
            Gt => ">".into(),
            BvAdd => "bvadd".into(),
            BvSub => "bvsub".into(),
            BvMul => "bvmul".into(),
            BvNeg => "bvneg".into(),
            BvSdiv => "bvsdiv".into(),
            BvSrem => "bvsrem".into(),
            BvUdiv => "bvudiv".into(),
            BvUrem => "bvurem".into(),
            BvShl => "bvshl".into(),
            BvLshr => "bvlshr".into(),
            BvAshr => "bvashr".into(),
            BvAnd => "bvand".into(),
            BvOr => "bvor".into(),
            BvXor => "bvxor".into(),
            BvNot => "bvnot".into(),
            BvSlt => "bvslt".into(),
            BvSle => "bvsle".into(),
            BvSgt => "bvsgt".into(),
            BvSge => "bvsge".into(),
            BvUlt => "bvult".into(),
            BvUle => "bvule".into(),
            BvSaddo => "bvsaddo".into(),
            BvSsubo => "bvssubo".into(),
            BvSmulo => "bvsmulo".into(),
            BvSdivo => "bvsdivo".into(),
            BvNego => "bvnego".into(),
            BvSignExtend(n) => format!("(_ sign_extend {n})"),
            BvZeroExtend(n) => format!("(_ zero_extend {n})"),
            BvExtract(hi, lo) => format!("(_ extract {hi} {lo})"),
            FpAdd => "fp.add".into(),
            FpSub => "fp.sub".into(),
            FpMul => "fp.mul".into(),
            FpDiv => "fp.div".into(),
            FpNeg => "fp.neg".into(),
            FpAbs => "fp.abs".into(),
            FpEq => "fp.eq".into(),
            FpLt => "fp.lt".into(),
            FpLeq => "fp.leq".into(),
            FpGt => "fp.gt".into(),
            FpGeq => "fp.geq".into(),
            FpIsNan => "fp.isNaN".into(),
            FpIsInf => "fp.isInfinite".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_errors() {
        assert!(Op::Not.result_sort(&[], None).is_err());
        assert!(Op::Not
            .result_sort(&[Sort::Bool, Sort::Bool], None)
            .is_err());
        assert!(Op::Ite.result_sort(&[Sort::Bool, Sort::Int], None).is_err());
        assert!(Op::Add.result_sort(&[Sort::Int], None).is_err());
    }

    #[test]
    fn sort_mismatch_errors() {
        assert!(Op::Add.result_sort(&[Sort::Int, Sort::Real], None).is_err());
        assert!(Op::Add
            .result_sort(&[Sort::Bool, Sort::Bool], None)
            .is_err());
        assert!(Op::Eq.result_sort(&[Sort::Int, Sort::Real], None).is_err());
        assert!(Op::BvAdd
            .result_sort(&[Sort::BitVec(8), Sort::BitVec(9)], None)
            .is_err());
        assert!(Op::Abs.result_sort(&[Sort::Real], None).is_err());
        assert!(Op::FpAdd
            .result_sort(
                &[Sort::Float(8, 24), Sort::Float(8, 24), Sort::Float(8, 24)],
                None
            )
            .is_err());
    }

    #[test]
    fn result_sorts() {
        assert_eq!(
            Op::Add.result_sort(&[Sort::Int, Sort::Int], None),
            Ok(Sort::Int)
        );
        assert_eq!(
            Op::Add.result_sort(&[Sort::Real, Sort::Real], None),
            Ok(Sort::Real)
        );
        assert_eq!(
            Op::Lt.result_sort(&[Sort::Int, Sort::Int], None),
            Ok(Sort::Bool)
        );
        assert_eq!(
            Op::BvMul.result_sort(&[Sort::BitVec(12), Sort::BitVec(12)], None),
            Ok(Sort::BitVec(12))
        );
        assert_eq!(
            Op::BvSmulo.result_sort(&[Sort::BitVec(12), Sort::BitVec(12)], None),
            Ok(Sort::Bool)
        );
        assert_eq!(
            Op::FpAdd.result_sort(
                &[Sort::RoundingMode, Sort::Float(8, 24), Sort::Float(8, 24)],
                None
            ),
            Ok(Sort::Float(8, 24))
        );
        assert_eq!(
            Op::BvSignExtend(4).result_sort(&[Sort::BitVec(8)], None),
            Ok(Sort::BitVec(12))
        );
        assert_eq!(
            Op::BvExtract(7, 4).result_sort(&[Sort::BitVec(12)], None),
            Ok(Sort::BitVec(4))
        );
        assert!(Op::BvExtract(12, 0)
            .result_sort(&[Sort::BitVec(12)], None)
            .is_err());
    }

    #[test]
    fn ite_branches() {
        assert_eq!(
            Op::Ite.result_sort(&[Sort::Bool, Sort::Int, Sort::Int], None),
            Ok(Sort::Int)
        );
        assert!(Op::Ite
            .result_sort(&[Sort::Bool, Sort::Int, Sort::Real], None)
            .is_err());
        assert!(Op::Ite
            .result_sort(&[Sort::Int, Sort::Int, Sort::Int], None)
            .is_err());
    }
}
