//! Canonical forms and fingerprints for constraint scripts.
//!
//! The answer cache in `staub-service` must recognise a constraint it has
//! already solved even when the client reordered commutative arguments,
//! renamed every symbol, or shuffled the assertion list. This module maps a
//! [`Script`] to a *canonical form* that is invariant under exactly those
//! transformations:
//!
//! 1. **Refinement pass** — variables start coloured by sort alone; each
//!    round computes name-blind bottom-up *shape* hashes from the current
//!    colours (commutative arguments combined order-insensitively), then
//!    top-down *context* hashes (the sorted multiset of "where does this
//!    node sit" contributions from its parents), and recolours every
//!    variable by its context. The loop runs to a fixpoint of the induced
//!    variable partition, Weisfeiler–Leman style: a single bottom-up pass
//!    cannot separate variables whose subtrees tie but whose surrounding
//!    contexts differ, and without that separation the numbering below
//!    would fall back to argument position, which renaming can permute.
//! 2. **Numbering pass** — symbols receive canonical indices `v0, v1, …` by
//!    first occurrence in a deterministic, name-independent traversal
//!    (assertions and commutative arguments ordered by refined shape hash).
//! 3. **Hash pass** — a final structural hash over the renamed DAG, now
//!    sorting commutative arguments by their *renamed* hashes.
//! 4. **Serialisation pass** — the renamed DAG is written as a compact node
//!    table, linear in the DAG size (a printed term could be exponential in
//!    it, because hash-consing shares subterms). The [`Canonical::key`]
//!    string is that table; [`Canonical::fingerprint`] hashes it.
//!
//! The parser represents the SMT-LIB literal `(- 20)` as unary minus
//! applied to `20` and `(/ 321.0 16.0)` as a real division, while
//! programmatic builders intern the negative or rational constant
//! directly; canonicalisation folds the former into the latter so printing
//! and re-parsing a script never disturbs its key.
//!
//! Equal keys imply the two scripts are α-equivalent modulo
//! commutative-argument and assertion order, so a cache that compares full
//! keys on fingerprint collision never conflates distinct constraints. The
//! converse does not quite hold: constraints whose variables the refinement
//! cannot separate (ties that persist through every round, i.e. symmetric
//! up to automorphism for tree-shaped inputs) fall back to positional
//! tie-breaking, which at worst costs a cache hit but never an answer.
//!
//! Traversals are iterative (explicit stacks), so inputs at the parser's
//! nesting-depth cap do not threaten the thread stack here.

use std::collections::HashMap;

use staub_numeric::{BigInt, BigRational};

use crate::op::Op;
use crate::script::Script;
use crate::sort::Sort;
use crate::term::{SymbolId, TermId, TermStore};

/// 128-bit FNV-1a, the fingerprint hash. Collisions are guarded by full
/// key comparison, so the hash only needs to be well-distributed.
#[derive(Debug, Clone, Copy)]
struct Fnv(u128);

impl Fnv {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u128 {
        self.0
    }
}

/// Hashes `tag` plus a sequence of child hashes.
fn combine(tag: &str, children: &[u128]) -> u128 {
    let mut h = Fnv::new();
    h.write(tag.as_bytes());
    h.write(b"(");
    for &c in children {
        h.write_u128(c);
    }
    h.write(b")");
    h.finish()
}

/// Whether permuting the operator's arguments preserves meaning.
///
/// `Eq`/`Distinct` are n-ary "all equal" / "pairwise distinct" predicates
/// and `Xor` is an associative-commutative fold, so all three qualify
/// alongside the obvious arithmetic and bitwise cases. `Sub`, divisions,
/// shifts, comparisons, and the rounding-mode-carrying FP operations stay
/// positional.
fn is_commutative(op: &Op) -> bool {
    matches!(
        op,
        Op::And
            | Op::Or
            | Op::Xor
            | Op::Eq
            | Op::Distinct
            | Op::Add
            | Op::Mul
            | Op::BvAdd
            | Op::BvMul
            | Op::BvAnd
            | Op::BvOr
            | Op::BvXor
            | Op::FpEq
    )
}

/// The canonical-form tag for an operator head. Variables are rendered
/// from the canonical numbering (`var_of`), so two α-equivalent scripts
/// produce byte-identical tags.
fn op_tag(store: &TermStore, op: &Op, var_of: impl Fn(SymbolId) -> usize) -> String {
    match op {
        Op::Var(sym) => format!("v{}:{}", var_of(*sym), store.symbol_sort(*sym)),
        Op::IntConst(v) => format!("i{v}"),
        Op::RealConst(v) => format!("r{v}"),
        Op::BvConst(v) => format!("b{v}"),
        Op::FpConst(v) => format!("f{}:{}:{v}", v.eb(), v.sb()),
        Op::RmConst(m) => format!("m{m:?}"),
        other => other.smtlib_name(),
    }
}

/// A numeric literal value recovered by constant folding.
#[derive(Clone)]
enum Lit {
    Int(BigInt),
    Real(BigRational),
}

/// Computes the canonical leaf tag, if any, of every term: direct
/// constants, plus the composite spellings the printer emits for them.
/// SMT-LIB has no negative or rational numerals, so `-20` prints as
/// `(- 20)` and `321/16` as `(/ 321.0 16.0)`, which parse back as `Neg` /
/// `RealDiv` applications even though programmatic builders intern the
/// literal directly — folding makes both spellings canonicalise
/// identically. Division by zero is left unfolded (it has no literal
/// value). A folded term is treated as a leaf by every pass: its
/// arguments are never visited.
fn fold_constants(store: &TermStore, ids: &[TermId]) -> (Vec<Option<String>>, Vec<Option<Lit>>) {
    let mut lit: Vec<Option<Lit>> = vec![None; ids.len()];
    let mut folded: Vec<Option<String>> = vec![None; ids.len()];
    for &id in ids {
        let t = store.term(id);
        let value = match t.op() {
            Op::IntConst(v) => Some(Lit::Int(v.clone())),
            Op::RealConst(v) => Some(Lit::Real(v.clone())),
            Op::Neg => match &lit[t.args()[0].index()] {
                Some(Lit::Int(v)) => Some(Lit::Int(-v.clone())),
                Some(Lit::Real(v)) => Some(Lit::Real(-v.clone())),
                None => None,
            },
            Op::RealDiv if t.args().len() == 2 => {
                match (&lit[t.args()[0].index()], &lit[t.args()[1].index()]) {
                    (Some(Lit::Real(a)), Some(Lit::Real(b))) if !b.is_zero() => {
                        Some(Lit::Real(a / b))
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        folded[id.index()] = match (&value, t.op()) {
            (Some(Lit::Int(v)), _) => Some(format!("i{v}")),
            (Some(Lit::Real(v)), _) => Some(format!("r{v}")),
            (None, Op::BvConst(v)) => Some(format!("b{v}")),
            (None, Op::FpConst(v)) => Some(format!("f{}:{}:{v}", v.eb(), v.sb())),
            (None, Op::RmConst(m)) => Some(format!("m{m:?}")),
            (None, _) => None,
        };
        lit[id.index()] = value;
    }
    (folded, lit)
}

/// Normalized view of a comparison term, applied uniformly by every pass
/// below so that equivalent inequality spellings share one canonical form:
///
/// * `(>= a b)` / `(> a b)` flip to `(<= b a)` / `(< b a)` (chains reverse
///   whole), and
/// * a binary *strict* Int comparison against a folded integer literal
///   tightens to the non-strict form — `(< t c)` ⇔ `(<= t c-1)` and
///   `(< c t)` ⇔ `(<= c+1 t)` over ℤ.
///
/// The tightened literal never exists as an interned term, so an
/// overridden slot carries its leaf tag directly and the original literal
/// child is neither traversed nor serialised through this parent.
struct CmpNorm {
    /// The normalized head (`Op::Le` or `Op::Lt`).
    op: Op,
    /// Arguments in normalized order.
    args: Vec<TermId>,
    /// Per-slot replacement leaf tag (the bumped literal), when tightened.
    overrides: Vec<Option<String>>,
}

/// Computes the [`CmpNorm`] of every comparison term (`None` elsewhere).
fn normalize_cmps(store: &TermStore, ids: &[TermId], lit: &[Option<Lit>]) -> Vec<Option<CmpNorm>> {
    let mut norm: Vec<Option<CmpNorm>> = Vec::with_capacity(ids.len());
    for &id in ids {
        let t = store.term(id);
        let n = match t.op() {
            Op::Le | Op::Lt | Op::Ge | Op::Gt => {
                let mut args = t.args().to_vec();
                if matches!(t.op(), Op::Ge | Op::Gt) {
                    args.reverse();
                }
                let mut op = if matches!(t.op(), Op::Lt | Op::Gt) {
                    Op::Lt
                } else {
                    Op::Le
                };
                let mut overrides: Vec<Option<String>> = vec![None; args.len()];
                if op == Op::Lt && args.len() == 2 {
                    let ints = args.iter().all(|&a| store.sort(a) == Sort::Int);
                    let la = &lit[args[0].index()];
                    let lb = &lit[args[1].index()];
                    match (ints, la, lb) {
                        // Both literal: tighten the right-hand side.
                        (true, _, Some(Lit::Int(c))) => {
                            op = Op::Le;
                            overrides[1] = Some(format!("i{}", c - &BigInt::from(1)));
                        }
                        (true, Some(Lit::Int(c)), None) => {
                            op = Op::Le;
                            overrides[0] = Some(format!("i{}", c + &BigInt::from(1)));
                        }
                        _ => {}
                    }
                }
                Some(CmpNorm {
                    op,
                    args,
                    overrides,
                })
            }
            _ => None,
        };
        norm.push(n);
    }
    norm
}

/// Interns one serialised node row, deduplicating by content.
fn intern_row(row: String, row_of: &mut HashMap<String, usize>, table: &mut String) -> usize {
    match row_of.get(&row) {
        Some(&existing) => existing,
        None => {
            let fresh = row_of.len();
            table.push_str(&row);
            table.push(';');
            row_of.insert(row, fresh);
            fresh
        }
    }
}

/// A script's canonical form: a stable fingerprint, the full canonical key
/// it abbreviates, and the symbol numbering needed to translate models
/// between α-equivalent scripts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canonical {
    /// 128-bit hash of [`Canonical::key`] — the cache index.
    pub fingerprint: u128,
    /// Serialised canonical DAG. Equal keys ⇒ the scripts are equivalent
    /// up to symbol renaming, commutative-argument order, and assertion
    /// order; compare keys on fingerprint collision before trusting a
    /// cached answer.
    pub key: String,
    /// `vars[k]` is the symbol this script binds to canonical index `k`.
    vars: Vec<SymbolId>,
}

impl Canonical {
    /// The symbols in canonical order: `vars()[k]` is this script's name
    /// for canonical variable `k`.
    pub fn vars(&self) -> &[SymbolId] {
        &self.vars
    }

    /// The canonical index of a symbol, if it occurs in the assertions.
    pub fn var_index(&self, sym: SymbolId) -> Option<usize> {
        self.vars.iter().position(|&s| s == sym)
    }

    /// The fingerprint as fixed-width hex (for logs and JSON).
    pub fn fingerprint_hex(&self) -> String {
        format!("{:032x}", self.fingerprint)
    }
}

/// Computes the canonical form of a script's assertion set.
///
/// Declarations that no assertion mentions do not contribute: they cannot
/// affect the verdict, and ignoring them widens the cache's reach.
pub fn canonicalize(script: &Script) -> Canonical {
    let store = script.store();
    let n = store.len();
    let ids: Vec<TermId> = store.ids().collect();

    // Constant folding: a term with a constant tag is a leaf from here on
    // (see `fold_constants` for why `(- 20)` must fold to the literal
    // `-20` and `(/ 321.0 16.0)` to `321/16`). Comparisons are then viewed
    // through their normalized spelling (see `CmpNorm`) by every pass.
    let (folded, lit) = fold_constants(store, &ids);
    let cmp_norm = normalize_cmps(store, &ids, &lit);

    // Reachability from the assertion roots, recording each variable's
    // (hash-consed, hence unique) term. Unreachable terms never touch the
    // key, and a folded term's argument is deliberately left unreached.
    let mut reach = vec![false; n];
    let mut var_node: HashMap<SymbolId, TermId> = HashMap::new();
    let mut stack: Vec<TermId> = script.assertions().to_vec();
    while let Some(id) = stack.pop() {
        if reach[id.index()] {
            continue;
        }
        reach[id.index()] = true;
        if folded[id.index()].is_some() {
            continue;
        }
        let t = store.term(id);
        if let Op::Var(sym) = t.op() {
            var_node.insert(*sym, id);
        }
        stack.extend_from_slice(t.args());
    }
    let mut var_syms: Vec<SymbolId> = var_node.keys().copied().collect();
    var_syms.sort_unstable();

    // Pass 1: colour refinement to a fixpoint of the variable partition.
    // Every round either refines the partition (at most |vars| times) or
    // detects stability, so the bound below always suffices; interning
    // order makes a forward sweep bottom-up and a reverse sweep top-down.
    let root_mark = combine("!root", &[]);
    let mut colour: HashMap<SymbolId, u128> = var_syms
        .iter()
        .map(|&s| (s, combine(&format!("{}", store.symbol_sort(s)), &[])))
        .collect();
    let mut shape = vec![0u128; n];
    let mut partition: Vec<usize> = Vec::new();
    for _round in 0..=var_syms.len() {
        // Bottom-up shape hashes under the current colouring.
        for &id in &ids {
            let i = id.index();
            if !reach[i] {
                continue;
            }
            if let Some(tag) = &folded[i] {
                shape[i] = combine(tag, &[]);
                continue;
            }
            let t = store.term(id);
            if let Some(nm) = &cmp_norm[i] {
                let tag = op_tag(store, &nm.op, |_| usize::MAX);
                let child: Vec<u128> = nm
                    .args
                    .iter()
                    .zip(&nm.overrides)
                    .map(|(a, ov)| match ov {
                        Some(leaf) => combine(leaf, &[]),
                        None => shape[a.index()],
                    })
                    .collect();
                shape[i] = combine(&tag, &child);
                continue;
            }
            let tag = match t.op() {
                Op::Var(sym) => {
                    format!("v({:032x}):{}", colour[sym], store.symbol_sort(*sym))
                }
                other => op_tag(store, other, |_| usize::MAX),
            };
            let mut child: Vec<u128> = t.args().iter().map(|a| shape[a.index()]).collect();
            if is_commutative(t.op()) {
                child.sort_unstable();
            }
            shape[i] = combine(&tag, &child);
        }
        // Top-down context hashes: each node's context is the sorted
        // multiset of its parents' contributions; commutative arguments
        // all share one slot so argument order cannot leak in.
        let mut parts: Vec<Vec<u128>> = vec![Vec::new(); n];
        for &root in script.assertions() {
            parts[root.index()].push(root_mark);
        }
        let mut ctx = vec![0u128; n];
        for &id in ids.iter().rev() {
            let i = id.index();
            if !reach[i] {
                continue;
            }
            parts[i].sort_unstable();
            ctx[i] = combine("ctx", &parts[i]);
            if folded[i].is_some() {
                continue;
            }
            let t = store.term(id);
            if let Some(nm) = &cmp_norm[i] {
                for (slot, (&a, ov)) in nm.args.iter().zip(&nm.overrides).enumerate() {
                    if ov.is_none() {
                        parts[a.index()].push(combine("at", &[ctx[i], shape[i], slot as u128]));
                    }
                }
                continue;
            }
            let comm = is_commutative(t.op());
            for (slot, &a) in t.args().iter().enumerate() {
                let pos = if comm { u128::MAX } else { slot as u128 };
                parts[a.index()].push(combine("at", &[ctx[i], shape[i], pos]));
            }
        }
        // Recolour the variables by context and stop once the induced
        // partition (which classes exist, not the hash values) is stable.
        for &sym in &var_syms {
            colour.insert(sym, ctx[var_node[&sym].index()]);
        }
        let mut classes: Vec<u128> = var_syms.iter().map(|s| colour[s]).collect();
        classes.sort_unstable();
        classes.dedup();
        let next: Vec<usize> = var_syms
            .iter()
            .map(|s| classes.binary_search(&colour[s]).expect("own colour"))
            .collect();
        if next == partition {
            break;
        }
        partition = next;
    }

    // Pass 2: canonical symbol numbering by first occurrence in a
    // shape-ordered traversal. Assertion roots and commutative arguments
    // are visited in (refined shape hash, original position) order, so the
    // numbering does not depend on the original names, and after the
    // refinement above a positional tie-break only ever chooses between
    // interchangeable variables.
    let mut roots: Vec<TermId> = script.assertions().to_vec();
    roots.sort_by_key(|id| shape[id.index()]);
    let mut var_index: HashMap<SymbolId, usize> = HashMap::new();
    let mut vars: Vec<SymbolId> = Vec::new();
    let mut seen = vec![false; n];
    let mut stack: Vec<TermId> = Vec::new();
    for &root in &roots {
        stack.push(root);
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            if folded[id.index()].is_some() {
                continue;
            }
            let t = store.term(id);
            if let Op::Var(sym) = t.op() {
                var_index.entry(*sym).or_insert_with(|| {
                    vars.push(*sym);
                    vars.len() - 1
                });
            }
            let mut order: Vec<TermId> = match &cmp_norm[id.index()] {
                Some(nm) => nm
                    .args
                    .iter()
                    .zip(&nm.overrides)
                    .filter(|(_, ov)| ov.is_none())
                    .map(|(&a, _)| a)
                    .collect(),
                None => t.args().to_vec(),
            };
            if is_commutative(t.op()) {
                let mut keyed: Vec<(u128, usize, TermId)> = order
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| (shape[a.index()], i, a))
                    .collect();
                keyed.sort();
                order = keyed.into_iter().map(|(_, _, a)| a).collect();
            }
            // Reverse so the stack pops arguments in traversal order.
            for &a in order.iter().rev() {
                stack.push(a);
            }
        }
    }

    // Pass 3: final structural hashes over the *renamed* DAG, sorting
    // commutative arguments by renamed hash (this is what reconciles
    // positional tie-breaks that pass 2 resolved differently).
    let mut chash = vec![0u128; n];
    for &id in &ids {
        let i = id.index();
        if !reach[i] {
            continue;
        }
        if let Some(tag) = &folded[i] {
            chash[i] = combine(tag, &[]);
            continue;
        }
        let t = store.term(id);
        if let Some(nm) = &cmp_norm[i] {
            let tag = op_tag(store, &nm.op, |sym| var_index[&sym]);
            let child: Vec<u128> = nm
                .args
                .iter()
                .zip(&nm.overrides)
                .map(|(a, ov)| match ov {
                    Some(leaf) => combine(leaf, &[]),
                    None => chash[a.index()],
                })
                .collect();
            chash[i] = combine(&tag, &child);
            continue;
        }
        let tag = op_tag(store, t.op(), |sym| var_index[&sym]);
        let mut child: Vec<u128> = t.args().iter().map(|a| chash[a.index()]).collect();
        if is_commutative(t.op()) {
            child.sort_unstable();
        }
        chash[i] = combine(&tag, &child);
    }

    // Pass 4: serialise the canonical DAG as a node table (post-order,
    // one entry per shared node), linear in the DAG size. Rows dedup by
    // *content*, not just `TermId`, so a folded `(- 20)` and a literal
    // `-20` interned side by side still share one table entry.
    let mut final_roots: Vec<TermId> = script.assertions().to_vec();
    final_roots.sort_by_key(|id| chash[id.index()]);
    final_roots.dedup_by_key(|id| chash[id.index()]);
    let mut table = String::new();
    let mut node_of: HashMap<TermId, usize> = HashMap::new();
    let mut row_of: HashMap<String, usize> = HashMap::new();
    // `Term(id, expanded)` pairs: the first pop schedules the children,
    // the second (expanded) pop emits the node. `Leaf` interns a synthetic
    // tightened-literal row at the DFS position the original literal child
    // would have occupied, so node numbering matches a genuinely
    // non-strict spelling of the same constraint.
    enum WalkItem {
        Term(TermId, bool),
        Leaf(String),
    }
    let mut walk: Vec<WalkItem> = Vec::new();
    for &root in &final_roots {
        walk.push(WalkItem::Term(root, false));
        while let Some(item) = walk.pop() {
            let (id, expanded) = match item {
                WalkItem::Term(id, expanded) => (id, expanded),
                WalkItem::Leaf(row) => {
                    intern_row(row, &mut row_of, &mut table);
                    continue;
                }
            };
            if node_of.contains_key(&id) {
                continue;
            }
            let row = if let Some(tag) = &folded[id.index()] {
                format!("{tag}()")
            } else if let Some(nm) = &cmp_norm[id.index()] {
                if !expanded {
                    walk.push(WalkItem::Term(id, true));
                    for (&a, ov) in nm.args.iter().zip(&nm.overrides).rev() {
                        match ov {
                            Some(leaf) => walk.push(WalkItem::Leaf(format!("{leaf}()"))),
                            None => walk.push(WalkItem::Term(a, false)),
                        }
                    }
                    continue;
                }
                let mut row = op_tag(store, &nm.op, |sym| var_index[&sym]);
                row.push('(');
                for (i, (a, ov)) in nm.args.iter().zip(&nm.overrides).enumerate() {
                    if i > 0 {
                        row.push(',');
                    }
                    // A tightened literal exists only as a leaf tag; give
                    // it a (deduplicated) row of its own.
                    let entry = match ov {
                        Some(leaf) => intern_row(format!("{leaf}()"), &mut row_of, &mut table),
                        None => node_of[a],
                    };
                    row.push_str(&entry.to_string());
                }
                row.push(')');
                row
            } else {
                let t = store.term(id);
                let mut order: Vec<TermId> = t.args().to_vec();
                if is_commutative(t.op()) {
                    let mut keyed: Vec<(u128, usize, TermId)> = order
                        .iter()
                        .enumerate()
                        .map(|(i, &a)| (chash[a.index()], i, a))
                        .collect();
                    keyed.sort();
                    order = keyed.into_iter().map(|(_, _, a)| a).collect();
                }
                if !expanded {
                    walk.push(WalkItem::Term(id, true));
                    for &a in order.iter().rev() {
                        walk.push(WalkItem::Term(a, false));
                    }
                    continue;
                }
                let mut row = op_tag(store, t.op(), |sym| var_index[&sym]);
                row.push('(');
                for (i, a) in order.iter().enumerate() {
                    if i > 0 {
                        row.push(',');
                    }
                    row.push_str(&node_of[a].to_string());
                }
                row.push(')');
                row
            };
            let node = intern_row(row, &mut row_of, &mut table);
            node_of.insert(id, node);
        }
    }
    table.push('|');
    for (i, root) in final_roots.iter().enumerate() {
        if i > 0 {
            table.push(',');
        }
        table.push_str(&node_of[root].to_string());
    }

    let mut h = Fnv::new();
    h.write(table.as_bytes());
    Canonical {
        fingerprint: h.finish(),
        key: table,
        vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(src: &str) -> Canonical {
        canonicalize(&Script::parse(src).unwrap())
    }

    #[test]
    fn identical_scripts_agree() {
        let a = canon("(declare-fun x () Int)(assert (= (* x x) 49))");
        let b = canon("(declare-fun x () Int)(assert (= (* x x) 49))");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn commutative_reordering_is_invisible() {
        let a = canon("(declare-fun x () Int)(declare-fun y () Int)(assert (= (+ x y 3) 10))");
        let b = canon("(declare-fun x () Int)(declare-fun y () Int)(assert (= 10 (+ 3 y x)))");
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn alpha_renaming_is_invisible() {
        let a = canon(
            "(declare-fun x () Int)(declare-fun y () Int)\
             (assert (> x 0))(assert (< y x))",
        );
        let b = canon(
            "(declare-fun top () Int)(declare-fun low () Int)\
             (assert (> top 0))(assert (< low top))",
        );
        assert_eq!(a.key, b.key);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn assertion_order_is_invisible() {
        let a = canon("(declare-fun x () Int)(assert (> x 0))(assert (< x 9))");
        let b = canon("(declare-fun x () Int)(assert (< x 9))(assert (> x 0))");
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn distinct_constraints_differ() {
        let a = canon("(declare-fun x () Int)(assert (= (* x x) 49))");
        let b = canon("(declare-fun x () Int)(assert (= (* x x) 50))");
        assert_ne!(a.key, b.key);
        // Non-commutative argument order matters.
        let c = canon("(declare-fun x () Int)(assert (< x 9))");
        let d = canon("(declare-fun x () Int)(assert (< 9 x))");
        assert_ne!(c.key, d.key);
    }

    #[test]
    fn var_numbering_translates_models() {
        let a = canon("(declare-fun p () Int)(declare-fun q () Int)(assert (< p q))");
        let b = canon("(declare-fun u () Int)(declare-fun w () Int)(assert (< u w))");
        assert_eq!(a.key, b.key);
        assert_eq!(a.vars().len(), 2);
        // Same canonical index on both sides names the corresponding
        // symbol: a model translated index-wise stays meaningful.
        let sa =
            Script::parse("(declare-fun p () Int)(declare-fun q () Int)(assert (< p q))").unwrap();
        let names_a: Vec<&str> = a
            .vars()
            .iter()
            .map(|&s| sa.store().symbol_name(s))
            .collect();
        assert_eq!(names_a.len(), 2);
        assert_ne!(names_a[0], names_a[1]);
    }

    #[test]
    fn context_distinguishes_tied_variables() {
        // `x` and `y` have identical subtree shapes (both bare Int
        // variables under a commutative `+`), but only one of them is
        // additionally bounded below zero — the refinement must separate
        // them by context so renaming plus argument reversal cannot
        // permute the canonical numbering.
        let a = canon(
            "(declare-fun x () Int)(declare-fun y () Int)\
             (assert (= (+ x y) 0))(assert (< x 0))",
        );
        let b = canon(
            "(declare-fun q () Int)(declare-fun p () Int)\
             (assert (= (+ q p) 0))(assert (< p 0))",
        );
        assert_eq!(a.key, b.key);
        // Swapping which addend carries the bound is the same constraint
        // up to renaming `x ↔ y`.
        let c = canon(
            "(declare-fun x () Int)(declare-fun y () Int)\
             (assert (= (+ x y) 0))(assert (< y 0))",
        );
        assert_eq!(a.key, c.key);
    }

    #[test]
    fn unused_declarations_do_not_contribute() {
        let a = canon("(declare-fun x () Int)(assert (> x 0))");
        let b = canon("(declare-fun x () Int)(declare-fun ghost () Real)(assert (> x 0))");
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn shared_subterms_serialise_once() {
        // (x*x) appears twice in the DAG but once in the table.
        let c = canon("(declare-fun x () Int)(assert (= (+ (* x x) (* x x)) 8))");
        assert_eq!(c.key.matches("*(").count(), 1);
    }

    #[test]
    fn comparison_direction_is_invisible() {
        // `(>= c t)` is the same constraint as `(<= t c)`; both spell the
        // difference-logic edge `x - y <= 3`.
        let a = canon(
            "(declare-fun x () Int)(declare-fun y () Int)\
             (assert (<= (- x y) 3))",
        );
        let b = canon(
            "(declare-fun x () Int)(declare-fun y () Int)\
             (assert (>= 3 (- x y)))",
        );
        assert_eq!(a.key, b.key);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn strict_int_comparisons_tighten_to_nonstrict() {
        // Over Int, `(< x 5)` is `(<= x 4)` — one cache entry, not two.
        let a = canon("(declare-fun x () Int)(assert (< x 5))");
        let b = canon("(declare-fun x () Int)(assert (<= x 4))");
        assert_eq!(a.key, b.key);
        // And on the other side: `(< 4 x)` is `(<= 5 x)`.
        let c = canon("(declare-fun x () Int)(assert (< 4 x))");
        let d = canon("(declare-fun x () Int)(assert (<= 5 x))");
        assert_eq!(c.key, d.key);
        // `(> x 4)` flips to `(< 4 x)` and then tightens the same way.
        let e = canon("(declare-fun x () Int)(assert (> x 4))");
        assert_eq!(c.key, e.key);
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn real_strictness_is_preserved() {
        // No integrality to exploit over Real: strict stays strict.
        let a = canon("(declare-fun r () Real)(assert (< r 1.0))");
        let b = canon("(declare-fun r () Real)(assert (<= r 1.0))");
        let c = canon("(declare-fun r () Real)(assert (<= r 0.0))");
        assert_ne!(a.key, b.key);
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn deep_nesting_does_not_recurse() {
        // A 1500-deep left nest canonicalises without stack overflow.
        let mut src = String::from("(declare-fun x () Int)(assert (< ");
        src.push_str(&"(+ 1 ".repeat(1500));
        src.push('x');
        src.push_str(&")".repeat(1500));
        src.push_str(" 10))");
        let c = canon(&src);
        assert!(!c.key.is_empty());
    }
}
