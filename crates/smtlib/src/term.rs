//! Hash-consed term storage.

use std::collections::HashMap;
use std::fmt;

use staub_numeric::{BigInt, BigRational, BitVecValue, RoundingMode, SoftFloat};

use crate::op::{Op, SortError};
use crate::sort::Sort;

/// Identifier of an interned term inside a [`TermStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    /// The index into the store's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an interned symbol (declared constant) in a [`TermStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(u32);

impl SymbolId {
    /// The index into the store's symbol table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned term: an operator applied to already-interned arguments,
/// together with its computed sort.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Term {
    op: Op,
    args: Vec<TermId>,
    sort: Sort,
}

impl Term {
    /// The head operator.
    pub fn op(&self) -> &Op {
        &self.op
    }

    /// The argument terms.
    pub fn args(&self) -> &[TermId] {
        &self.args
    }

    /// The term's sort.
    pub fn sort(&self) -> Sort {
        self.sort
    }
}

/// A hash-consing arena for terms and symbols.
///
/// Identical terms are interned once, so `TermId` equality is structural
/// equality, and analyses can memoize by `TermId` (giving linear-time
/// traversals of DAG-shaped constraints).
///
/// # Examples
///
/// ```
/// use staub_smtlib::{Sort, TermStore};
/// use staub_numeric::BigInt;
///
/// let mut store = TermStore::new();
/// let x = store.declare("x", Sort::Int)?;
/// let xv = store.var(x);
/// let two = store.int(BigInt::from(2));
/// let a = store.add(&[xv, two])?;
/// let b = store.add(&[xv, two])?;
/// assert_eq!(a, b); // hash-consed
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermStore {
    terms: Vec<Term>,
    intern: HashMap<Term, TermId>,
    symbols: Vec<(String, Sort)>,
    symbol_names: HashMap<String, SymbolId>,
}

impl TermStore {
    /// Creates an empty store.
    pub fn new() -> TermStore {
        TermStore::default()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Declares a fresh 0-ary symbol of the given sort.
    ///
    /// # Errors
    ///
    /// Returns [`SortError`] if the name is already declared with a
    /// different sort. Re-declaring with the same sort is idempotent.
    pub fn declare(&mut self, name: &str, sort: Sort) -> Result<SymbolId, SortError> {
        if let Some(&id) = self.symbol_names.get(name) {
            let (_, existing) = &self.symbols[id.index()];
            if *existing == sort {
                return Ok(id);
            }
            return Err(SortError::new(format!(
                "symbol `{name}` already declared with sort {existing}, redeclared as {sort}"
            )));
        }
        let id = SymbolId(u32::try_from(self.symbols.len()).expect("symbol count fits u32"));
        self.symbols.push((name.to_string(), sort));
        self.symbol_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a declared symbol by name.
    pub fn symbol(&self, name: &str) -> Option<SymbolId> {
        self.symbol_names.get(name).copied()
    }

    /// The name of a symbol.
    pub fn symbol_name(&self, id: SymbolId) -> &str {
        &self.symbols[id.index()].0
    }

    /// The declared sort of a symbol.
    pub fn symbol_sort(&self, id: SymbolId) -> Sort {
        self.symbols[id.index()].1
    }

    /// All declared symbols, in declaration order.
    pub fn symbols(&self) -> impl Iterator<Item = SymbolId> + '_ {
        (0..self.symbols.len()).map(|i| SymbolId(i as u32))
    }

    /// Number of declared symbols.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }

    /// All interned term ids, in interning order (arguments always precede
    /// the applications using them).
    pub fn ids(&self) -> impl Iterator<Item = TermId> + '_ {
        (0..self.terms.len()).map(|i| TermId(i as u32))
    }

    /// Fetches an interned term.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// The free variables of `root`, in first-encounter (DFS) order,
    /// deduplicated. Linear in the term DAG: each interned node is
    /// visited at most once.
    pub fn free_vars(&self, root: TermId) -> Vec<SymbolId> {
        let mut seen = vec![false; self.terms.len()];
        let mut vars = Vec::new();
        let mut var_seen = vec![false; self.symbols.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            let term = &self.terms[id.index()];
            if let Op::Var(sym) = *term.op() {
                if !std::mem::replace(&mut var_seen[sym.index()], true) {
                    vars.push(sym);
                }
            }
            stack.extend(term.args().iter().rev());
        }
        vars
    }

    /// Overwrites a term's cached sort, bypassing sort-checking.
    ///
    /// Exists only so negative tests can seed the store corruption that
    /// `staub-lint`'s resort pass certifies against. Never call this from
    /// production code.
    #[doc(hidden)]
    pub fn corrupt_sort_for_test(&mut self, id: TermId, sort: Sort) {
        self.terms[id.index()].sort = sort;
    }

    /// Overwrites a term's operator in place, bypassing sort-checking and
    /// interning (the term keeps its cached sort and arguments).
    ///
    /// Exists only so negative tests can seed the store corruption that
    /// `staub-lint` certifies against. Never call this from production code.
    #[doc(hidden)]
    pub fn corrupt_op_for_test(&mut self, id: TermId, op: Op) {
        self.terms[id.index()].op = op;
    }

    /// Overwrites a term's argument list in place, bypassing sort-checking
    /// and the bottom-up interning invariant.
    ///
    /// Exists only so negative tests can seed the store corruption that
    /// `staub-lint` certifies against (e.g. the acyclicity check). Never
    /// call this from production code.
    #[doc(hidden)]
    pub fn corrupt_args_for_test(&mut self, id: TermId, args: Vec<TermId>) {
        self.terms[id.index()].args = args;
    }

    /// The sort of an interned term.
    pub fn sort(&self, id: TermId) -> Sort {
        self.terms[id.index()].sort
    }

    /// Interns an application after sort-checking it.
    ///
    /// # Errors
    ///
    /// Returns [`SortError`] when the operator's arity or argument sorts are
    /// invalid (see [`Op::result_sort`]).
    pub fn app(&mut self, op: Op, args: &[TermId]) -> Result<TermId, SortError> {
        let arg_sorts: Vec<Sort> = args.iter().map(|&a| self.sort(a)).collect();
        let var_sort = match &op {
            Op::Var(sym) => Some(self.symbol_sort(*sym)),
            _ => None,
        };
        let sort = op.result_sort(&arg_sorts, var_sort)?;
        let term = Term {
            op,
            args: args.to_vec(),
            sort,
        };
        if let Some(&id) = self.intern.get(&term) {
            return Ok(id);
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term count fits u32"));
        self.terms.push(term.clone());
        self.intern.insert(term, id);
        Ok(id)
    }

    // --- leaf builders (infallible) ----------------------------------------

    /// A variable reference term.
    pub fn var(&mut self, sym: SymbolId) -> TermId {
        self.app(Op::Var(sym), &[])
            .expect("variables are well-sorted")
    }

    /// The boolean constant.
    pub fn bool(&mut self, v: bool) -> TermId {
        self.app(if v { Op::True } else { Op::False }, &[])
            .expect("booleans are well-sorted")
    }

    /// An integer literal.
    pub fn int(&mut self, v: BigInt) -> TermId {
        self.app(Op::IntConst(v), &[])
            .expect("integer literals are well-sorted")
    }

    /// An integer literal from `i64`.
    pub fn int_i64(&mut self, v: i64) -> TermId {
        self.int(BigInt::from(v))
    }

    /// A real literal.
    pub fn real(&mut self, v: BigRational) -> TermId {
        self.app(Op::RealConst(v), &[])
            .expect("real literals are well-sorted")
    }

    /// A bitvector literal.
    pub fn bv(&mut self, v: BitVecValue) -> TermId {
        self.app(Op::BvConst(v), &[])
            .expect("bitvector literals are well-sorted")
    }

    /// A floating-point literal.
    pub fn fp(&mut self, v: SoftFloat) -> TermId {
        self.app(Op::FpConst(v), &[])
            .expect("fp literals are well-sorted")
    }

    /// A rounding-mode literal.
    pub fn rm(&mut self, v: RoundingMode) -> TermId {
        self.app(Op::RmConst(v), &[])
            .expect("rounding modes are well-sorted")
    }

    // --- checked application helpers ---------------------------------------
    // Each forwards to `app`; see `Op` for the sorting rules.

    /// Boolean negation. See [`TermStore::app`] for errors.
    pub fn not(&mut self, a: TermId) -> Result<TermId, SortError> {
        self.app(Op::Not, &[a])
    }

    /// N-ary conjunction. See [`TermStore::app`] for errors.
    pub fn and(&mut self, args: &[TermId]) -> Result<TermId, SortError> {
        self.app(Op::And, args)
    }

    /// N-ary disjunction. See [`TermStore::app`] for errors.
    pub fn or(&mut self, args: &[TermId]) -> Result<TermId, SortError> {
        self.app(Op::Or, args)
    }

    /// Equality. See [`TermStore::app`] for errors.
    pub fn eq(&mut self, a: TermId, b: TermId) -> Result<TermId, SortError> {
        self.app(Op::Eq, &[a, b])
    }

    /// N-ary addition. See [`TermStore::app`] for errors.
    pub fn add(&mut self, args: &[TermId]) -> Result<TermId, SortError> {
        self.app(Op::Add, args)
    }

    /// Subtraction. See [`TermStore::app`] for errors.
    pub fn sub(&mut self, a: TermId, b: TermId) -> Result<TermId, SortError> {
        self.app(Op::Sub, &[a, b])
    }

    /// N-ary multiplication. See [`TermStore::app`] for errors.
    pub fn mul(&mut self, args: &[TermId]) -> Result<TermId, SortError> {
        self.app(Op::Mul, args)
    }

    /// `<=`. See [`TermStore::app`] for errors.
    pub fn le(&mut self, a: TermId, b: TermId) -> Result<TermId, SortError> {
        self.app(Op::Le, &[a, b])
    }

    /// `<`. See [`TermStore::app`] for errors.
    pub fn lt(&mut self, a: TermId, b: TermId) -> Result<TermId, SortError> {
        self.app(Op::Lt, &[a, b])
    }

    /// `>=`. See [`TermStore::app`] for errors.
    pub fn ge(&mut self, a: TermId, b: TermId) -> Result<TermId, SortError> {
        self.app(Op::Ge, &[a, b])
    }

    /// `>`. See [`TermStore::app`] for errors.
    pub fn gt(&mut self, a: TermId, b: TermId) -> Result<TermId, SortError> {
        self.app(Op::Gt, &[a, b])
    }

    /// Computes the set of variables occurring in a term (deduplicated, in
    /// first-occurrence order).
    pub fn vars_of(&self, root: TermId) -> Vec<SymbolId> {
        let mut seen_terms = vec![false; self.terms.len()];
        let mut seen_vars: Vec<SymbolId> = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if seen_terms[id.index()] {
                continue;
            }
            seen_terms[id.index()] = true;
            let t = &self.terms[id.index()];
            if let Op::Var(sym) = t.op() {
                if !seen_vars.contains(sym) {
                    seen_vars.push(*sym);
                }
            }
            stack.extend(t.args().iter().copied());
        }
        seen_vars
    }

    /// Number of distinct DAG nodes reachable from `root`.
    pub fn dag_size(&self, root: TermId) -> usize {
        let mut seen = vec![false; self.terms.len()];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            count += 1;
            stack.extend(self.terms[id.index()].args().iter().copied());
        }
        count
    }
}

impl fmt::Display for TermStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TermStore({} terms, {} symbols)",
            self.terms.len(),
            self.symbols.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut s = TermStore::new();
        let x = s.declare("x", Sort::Int).unwrap();
        let xv = s.var(x);
        let one = s.int_i64(1);
        let a = s.add(&[xv, one]).unwrap();
        let b = s.add(&[xv, one]).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn declare_idempotent_same_sort() {
        let mut s = TermStore::new();
        let a = s.declare("x", Sort::Int).unwrap();
        let b = s.declare("x", Sort::Int).unwrap();
        assert_eq!(a, b);
        assert!(s.declare("x", Sort::Real).is_err());
    }

    #[test]
    fn sorts_computed() {
        let mut s = TermStore::new();
        let x = s.declare("x", Sort::Real).unwrap();
        let xv = s.var(x);
        assert_eq!(s.sort(xv), Sort::Real);
        let lt = s.lt(xv, xv).unwrap();
        assert_eq!(s.sort(lt), Sort::Bool);
    }

    #[test]
    fn ill_sorted_rejected() {
        let mut s = TermStore::new();
        let x = s.declare("x", Sort::Int).unwrap();
        let xv = s.var(x);
        let t = s.bool(true);
        assert!(s.add(&[xv, t]).is_err());
        assert!(s.not(xv).is_err());
    }

    #[test]
    fn vars_of_collects_in_order() {
        let mut s = TermStore::new();
        let x = s.declare("x", Sort::Int).unwrap();
        let y = s.declare("y", Sort::Int).unwrap();
        let xv = s.var(x);
        let yv = s.var(y);
        let sum = s.add(&[yv, xv, yv]).unwrap();
        let vars = s.vars_of(sum);
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&x) && vars.contains(&y));
    }

    #[test]
    fn interning_scales_linearly() {
        // Build a deep chain x + 1 + 1 + ... and a wide balanced tree; the
        // store should hold exactly one node per distinct term.
        let mut s = TermStore::new();
        let x = s.declare("x", Sort::Int).unwrap();
        let xv = s.var(x);
        let one = s.int_i64(1);
        let mut acc = xv;
        for _ in 0..1000 {
            acc = s.add(&[acc, one]).unwrap();
        }
        let after_chain = s.len();
        assert_eq!(after_chain, 1002, "x, 1, and 1000 distinct sums");
        // Rebuilding the same chain adds nothing.
        let mut acc2 = xv;
        for _ in 0..1000 {
            acc2 = s.add(&[acc2, one]).unwrap();
        }
        assert_eq!(acc, acc2);
        assert_eq!(s.len(), after_chain);
    }

    #[test]
    fn symbols_iterate_in_declaration_order() {
        let mut s = TermStore::new();
        let names = ["c", "a", "b"];
        for n in names {
            s.declare(n, Sort::Int).unwrap();
        }
        let got: Vec<&str> = s.symbols().map(|sym| s.symbol_name(sym)).collect();
        assert_eq!(got, names);
    }

    #[test]
    fn free_vars_dedups_in_encounter_order() {
        let mut s = TermStore::new();
        let x = s.declare("x", Sort::Int).unwrap();
        let y = s.declare("y", Sort::Int).unwrap();
        let z = s.declare("z", Sort::Int).unwrap();
        let (xv, yv) = (s.var(x), s.var(y));
        let sum = s.add(&[xv, yv]).unwrap();
        let prod = s.mul(&[sum, xv]).unwrap();
        assert_eq!(s.free_vars(prod), vec![x, y]);
        // A constant has no free variables; z never appears.
        let five = s.int_i64(5);
        assert_eq!(s.free_vars(five), Vec::<SymbolId>::new());
        let zv = s.var(z);
        assert_eq!(s.free_vars(zv), vec![z]);
    }

    #[test]
    fn dag_size_counts_shared_nodes_once() {
        let mut s = TermStore::new();
        let x = s.declare("x", Sort::Int).unwrap();
        let xv = s.var(x);
        let sq = s.mul(&[xv, xv]).unwrap();
        let quad = s.mul(&[sq, sq]).unwrap();
        // Nodes: xv, sq, quad.
        assert_eq!(s.dag_size(quad), 3);
    }
}
