//! SMT-LIB v2 front end for STAUB.
//!
//! This crate provides everything needed to read, build, inspect, evaluate,
//! and print SMT-LIB constraints over the theories STAUB manipulates: Core,
//! Ints, Reals, FixedSizeBitVectors, and FloatingPoint.
//!
//! # Architecture
//!
//! * [`Sort`] — the sorts of the supported theories.
//! * [`TermStore`] — a hash-consing arena; terms are referenced by [`TermId`]
//!   so structural equality and memoized traversals are O(1) per node. This
//!   is what keeps STAUB's abstract interpretation linear in the constraint
//!   size (paper §6.1).
//! * [`Op`] — every function symbol, with sort-checking in
//!   [`TermStore::app`].
//! * [`Script`] — a parsed SMT-LIB script (declarations, assertions,
//!   `check-sat`), with [`Script::parse`] and [`std::fmt::Display`] printing.
//! * [`Value`] / [`Model`] / [`evaluate`] — exact evaluation of terms under
//!   an assignment, used by solvers and by STAUB's verification step.
//!
//! # Examples
//!
//! Parsing the paper's motivating constraint (Fig. 1a) and evaluating it
//! under the published satisfying assignment:
//!
//! ```
//! use staub_smtlib::{evaluate, Model, Script, Value};
//! use staub_numeric::BigInt;
//!
//! let src = "\
//! (declare-fun x () Int)
//! (declare-fun y () Int)
//! (declare-fun z () Int)
//! (assert (= (+ (* x x x) (* y y y) (* z z z)) 855))
//! (check-sat)";
//! let script = Script::parse(src)?;
//!
//! let mut model = Model::new();
//! for (name, v) in [("x", 7), ("y", 8), ("z", 0)] {
//!     let sym = script.store().symbol(name).unwrap();
//!     model.insert(sym, Value::Int(BigInt::from(v)));
//! }
//! let assertion = script.assertions()[0];
//! assert_eq!(evaluate(script.store(), assertion, &model)?, Value::Bool(true));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod canon;

mod eval;
mod lexer;
mod op;
mod parser;
mod printer;
mod script;
mod sort;
mod term;
mod value;

pub use canon::{canonicalize, Canonical};
pub use eval::{evaluate, evaluate_with_max_depth, EvalError};
pub use op::{Op, SortError};
pub use parser::{ParseError, ParseErrorKind, DEFAULT_MAX_DEPTH};
pub use printer::print_term;
pub use script::{Command, Logic, Script};
pub use sort::Sort;
pub use term::{SymbolId, Term, TermId, TermStore};
pub use value::{Model, Value};
