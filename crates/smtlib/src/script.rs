//! Parsed SMT-LIB scripts.

use std::fmt;

use crate::parser::{self, ParseError};
use crate::printer;
use crate::sort::Sort;
use crate::term::{SymbolId, TermId, TermStore};

/// The SMT-LIB logics relevant to STAUB.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Logic {
    /// Quantifier-free linear integer arithmetic.
    QfLia,
    /// Quantifier-free nonlinear integer arithmetic.
    QfNia,
    /// Quantifier-free linear real arithmetic.
    QfLra,
    /// Quantifier-free nonlinear real arithmetic.
    QfNra,
    /// Quantifier-free bitvectors.
    QfBv,
    /// Quantifier-free floating point.
    QfFp,
    /// Any other logic string, passed through verbatim.
    Other(String),
}

impl Logic {
    /// Parses an SMT-LIB logic name.
    pub fn from_name(name: &str) -> Logic {
        match name {
            "QF_LIA" => Logic::QfLia,
            "QF_NIA" => Logic::QfNia,
            "QF_LRA" => Logic::QfLra,
            "QF_NRA" => Logic::QfNra,
            "QF_BV" => Logic::QfBv,
            "QF_FP" => Logic::QfFp,
            other => Logic::Other(other.to_string()),
        }
    }

    /// The SMT-LIB name of the logic.
    pub fn name(&self) -> &str {
        match self {
            Logic::QfLia => "QF_LIA",
            Logic::QfNia => "QF_NIA",
            Logic::QfLra => "QF_LRA",
            Logic::QfNra => "QF_NRA",
            Logic::QfBv => "QF_BV",
            Logic::QfFp => "QF_FP",
            Logic::Other(s) => s,
        }
    }

    /// Returns `true` for the unbounded arithmetic logics STAUB transforms.
    pub fn is_unbounded(&self) -> bool {
        matches!(
            self,
            Logic::QfLia | Logic::QfNia | Logic::QfLra | Logic::QfNra
        )
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One SMT-LIB command, in script order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `(set-logic L)`.
    SetLogic(Logic),
    /// `(set-info :key value)` — preserved for round-tripping.
    SetInfo(String, String),
    /// `(declare-fun name () sort)` or `(declare-const name sort)`.
    Declare(SymbolId),
    /// `(assert t)`.
    Assert(TermId),
    /// `(check-sat)`.
    CheckSat,
    /// `(get-model)`.
    GetModel,
    /// `(exit)`.
    Exit,
}

/// A parsed SMT-LIB script: a term store plus a command sequence.
///
/// # Examples
///
/// ```
/// use staub_smtlib::{Logic, Script};
///
/// let script = Script::parse("\
/// (set-logic QF_LIA)
/// (declare-fun a () Int)
/// (assert (>= a 15))
/// (check-sat)")?;
/// assert_eq!(script.logic(), Some(&Logic::QfLia));
/// assert_eq!(script.assertions().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Script {
    store: TermStore,
    commands: Vec<Command>,
    assertions: Vec<TermId>,
    logic: Option<Logic>,
}

impl Script {
    /// Creates an empty script with a fresh store.
    pub fn new() -> Script {
        Script::default()
    }

    /// Parses SMT-LIB source text.
    ///
    /// Supports the command subset used by the QF arithmetic, bitvector, and
    /// floating-point benchmark suites: `set-logic`, `set-info`,
    /// `set-option` (ignored), `declare-fun`/`declare-const` (0-ary),
    /// `define-fun` (0-ary, inlined), `assert`, `check-sat`, `get-model`,
    /// and `exit`. Terms may use `let` bindings.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] with line/column information on malformed
    /// input, unsupported commands, or ill-sorted terms.
    pub fn parse(src: &str) -> Result<Script, ParseError> {
        parser::parse_script(src)
    }

    /// [`Script::parse`] with an explicit nesting-depth cap (the default is
    /// [`crate::DEFAULT_MAX_DEPTH`]). Input nested deeper than `max_depth`
    /// is rejected with [`crate::ParseErrorKind::MaxDepthExceeded`] before
    /// any tree is built, so adversarially deep scripts error cleanly
    /// instead of overflowing the stack.
    ///
    /// # Errors
    ///
    /// As [`Script::parse`], plus the depth rejection above.
    pub fn parse_with_max_depth(src: &str, max_depth: usize) -> Result<Script, ParseError> {
        parser::parse_script_with_max_depth(src, max_depth)
    }

    /// The term store backing this script.
    pub fn store(&self) -> &TermStore {
        &self.store
    }

    /// Mutable access to the term store (for building derived constraints).
    pub fn store_mut(&mut self) -> &mut TermStore {
        &mut self.store
    }

    /// All asserted terms, in order.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// The full command list.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// The declared logic, if a `set-logic` command was present.
    pub fn logic(&self) -> Option<&Logic> {
        self.logic.as_ref()
    }

    /// Sets the logic and records the command.
    pub fn set_logic(&mut self, logic: Logic) {
        self.logic = Some(logic.clone());
        self.commands.push(Command::SetLogic(logic));
    }

    /// Declares a symbol and records the command.
    ///
    /// # Errors
    ///
    /// Propagates the store's redeclaration error.
    pub fn declare(&mut self, name: &str, sort: Sort) -> Result<SymbolId, crate::op::SortError> {
        let id = self.store.declare(name, sort)?;
        self.commands.push(Command::Declare(id));
        Ok(id)
    }

    /// Asserts a boolean term and records the command.
    ///
    /// # Panics
    ///
    /// Panics if the term is not boolean.
    pub fn assert(&mut self, term: TermId) {
        assert_eq!(
            self.store.sort(term),
            Sort::Bool,
            "asserted term must be Bool"
        );
        self.assertions.push(term);
        self.commands.push(Command::Assert(term));
    }

    /// Appends a `(check-sat)` command.
    pub fn check_sat(&mut self) {
        self.commands.push(Command::CheckSat);
    }

    /// Assembles a script from parts (used by the parser and generators).
    pub(crate) fn from_parts(
        store: TermStore,
        commands: Vec<Command>,
        assertions: Vec<TermId>,
        logic: Option<Logic>,
    ) -> Script {
        Script {
            store,
            commands,
            assertions,
            logic,
        }
    }

    /// Replaces this script's assertions (keeping declarations and logic).
    /// Used by SLOT's pass pipeline to swap in simplified assertions.
    pub fn set_assertions(&mut self, assertions: Vec<TermId>) {
        self.commands.retain(|c| !matches!(c, Command::Assert(_)));
        // Keep check-sat last: insert asserts before trailing commands.
        let insert_at = self
            .commands
            .iter()
            .position(|c| matches!(c, Command::CheckSat | Command::GetModel | Command::Exit))
            .unwrap_or(self.commands.len());
        for (i, &a) in assertions.iter().enumerate() {
            self.commands.insert(insert_at + i, Command::Assert(a));
        }
        self.assertions = assertions;
    }
}

impl fmt::Display for Script {
    /// Prints the script in SMT-LIB concrete syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        printer::print_script(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_names_round_trip() {
        for name in [
            "QF_LIA", "QF_NIA", "QF_LRA", "QF_NRA", "QF_BV", "QF_FP", "QF_UFNIA",
        ] {
            assert_eq!(Logic::from_name(name).name(), name);
        }
    }

    #[test]
    fn unbounded_logics() {
        assert!(Logic::QfNia.is_unbounded());
        assert!(Logic::QfLra.is_unbounded());
        assert!(!Logic::QfBv.is_unbounded());
        assert!(!Logic::Other("QF_S".into()).is_unbounded());
    }

    #[test]
    fn programmatic_construction() {
        let mut script = Script::new();
        script.set_logic(Logic::QfLia);
        let x = script.declare("x", Sort::Int).unwrap();
        let (xv, five) = {
            let s = script.store_mut();
            let xv = s.var(x);
            let five = s.int_i64(5);
            (xv, five)
        };
        let c = script.store_mut().lt(xv, five).unwrap();
        script.assert(c);
        script.check_sat();
        assert_eq!(script.assertions().len(), 1);
        assert_eq!(script.commands().len(), 4);
    }

    #[test]
    #[should_panic(expected = "must be Bool")]
    fn assert_non_bool_panics() {
        let mut script = Script::new();
        let x = script.declare("x", Sort::Int).unwrap();
        let xv = script.store_mut().var(x);
        script.assert(xv);
    }

    #[test]
    fn set_assertions_replaces_and_keeps_position() {
        let mut script = Script::new();
        let x = script.declare("x", Sort::Int).unwrap();
        let xv = script.store_mut().var(x);
        let zero = script.store_mut().int_i64(0);
        let a1 = script.store_mut().lt(xv, zero).unwrap();
        let a2 = script.store_mut().gt(xv, zero).unwrap();
        script.assert(a1);
        script.check_sat();
        script.set_assertions(vec![a2]);
        assert_eq!(script.assertions(), &[a2]);
        // assert must still precede check-sat
        let pos_assert = script
            .commands()
            .iter()
            .position(|c| matches!(c, Command::Assert(_)))
            .unwrap();
        let pos_check = script
            .commands()
            .iter()
            .position(|c| matches!(c, Command::CheckSat))
            .unwrap();
        assert!(pos_assert < pos_check);
    }
}
