//! Runtime values and models (variable assignments).

use std::collections::BTreeMap;
use std::fmt;

use staub_numeric::{BigInt, BigRational, BitVecValue, RoundingMode, SoftFloat};

use crate::sort::Sort;
use crate::term::{SymbolId, TermStore};

/// A value of one of the supported sorts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An unbounded integer.
    Int(BigInt),
    /// An unbounded rational (the reals restricted to rationals — SMT-LIB
    /// models of linear/nonlinear real arithmetic over our solver are always
    /// rational).
    Real(BigRational),
    /// A bitvector value.
    BitVec(BitVecValue),
    /// A floating-point value.
    Float(SoftFloat),
    /// A rounding mode.
    Rm(RoundingMode),
}

impl Value {
    /// The sort this value belongs to.
    pub fn sort(&self) -> Sort {
        match self {
            Value::Bool(_) => Sort::Bool,
            Value::Int(_) => Sort::Int,
            Value::Real(_) => Sort::Real,
            Value::BitVec(v) => Sort::BitVec(v.width()),
            Value::Float(v) => Sort::Float(v.eb(), v.sb()),
            Value::Rm(_) => Sort::RoundingMode,
        }
    }

    /// Extracts a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts an integer, if this is one.
    pub fn as_int(&self) -> Option<&BigInt> {
        match self {
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Extracts a rational, if this is one.
    pub fn as_real(&self) -> Option<&BigRational> {
        match self {
            Value::Real(v) => Some(v),
            _ => None,
        }
    }

    /// Extracts a bitvector, if this is one.
    pub fn as_bitvec(&self) -> Option<&BitVecValue> {
        match self {
            Value::BitVec(v) => Some(v),
            _ => None,
        }
    }

    /// Extracts a float, if this is one.
    pub fn as_float(&self) -> Option<&SoftFloat> {
        match self {
            Value::Float(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::BitVec(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Rm(m) => write!(f, "{m:?}"),
        }
    }
}

/// A variable assignment: symbol → value.
///
/// # Examples
///
/// ```
/// use staub_smtlib::{Model, Script, Value};
/// use staub_numeric::BigInt;
///
/// let script = Script::parse("(declare-fun x () Int)(assert (> x 2))")?;
/// let x = script.store().symbol("x").unwrap();
/// let mut model = Model::new();
/// model.insert(x, Value::Int(BigInt::from(3)));
/// assert_eq!(model.get(x).and_then(Value::as_bool), None);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<SymbolId, Value>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Model {
        Model::default()
    }

    /// Binds a symbol to a value, returning any previous binding.
    pub fn insert(&mut self, sym: SymbolId, value: Value) -> Option<Value> {
        self.values.insert(sym, value)
    }

    /// Looks up a symbol's value.
    pub fn get(&self, sym: SymbolId) -> Option<&Value> {
        self.values.get(&sym)
    }

    /// Iterates over the bindings in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &Value)> {
        self.values.iter().map(|(&k, v)| (k, v))
    }

    /// Number of bound symbols.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no symbols are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Renders the model as an SMT-LIB `get-model` response.
    pub fn to_smtlib(&self, store: &TermStore) -> String {
        let mut out = String::from("(\n");
        for (sym, value) in self.iter() {
            out.push_str(&format!(
                "  (define-fun {} () {} {})\n",
                store.symbol_name(sym),
                store.symbol_sort(sym),
                value
            ));
        }
        out.push(')');
        out
    }
}

impl FromIterator<(SymbolId, Value)> for Model {
    fn from_iter<I: IntoIterator<Item = (SymbolId, Value)>>(iter: I) -> Model {
        Model {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(SymbolId, Value)> for Model {
    fn extend<I: IntoIterator<Item = (SymbolId, Value)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Script;

    #[test]
    fn value_sorts() {
        assert_eq!(Value::Bool(true).sort(), Sort::Bool);
        assert_eq!(Value::Int(BigInt::from(3)).sort(), Sort::Int);
        assert_eq!(Value::Real(BigRational::one()).sort(), Sort::Real);
        assert_eq!(
            Value::BitVec(BitVecValue::from_i64(1, 9)).sort(),
            Sort::BitVec(9)
        );
        assert_eq!(
            Value::Float(SoftFloat::zero(8, 24)).sort(),
            Sort::Float(8, 24)
        );
        assert_eq!(
            Value::Rm(RoundingMode::NearestEven).sort(),
            Sort::RoundingMode
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(BigInt::one()).as_bool(), None);
        assert!(Value::Int(BigInt::one()).as_int().is_some());
        assert!(Value::Real(BigRational::one()).as_real().is_some());
    }

    #[test]
    fn model_smtlib_rendering() {
        let script = Script::parse("(declare-fun x () Int)(declare-fun b () Bool)").unwrap();
        let x = script.store().symbol("x").unwrap();
        let b = script.store().symbol("b").unwrap();
        let model: Model = [(x, Value::Int(BigInt::from(-3))), (b, Value::Bool(true))]
            .into_iter()
            .collect();
        let rendered = model.to_smtlib(script.store());
        assert!(rendered.contains("(define-fun x () Int -3)"));
        assert!(rendered.contains("(define-fun b () Bool true)"));
    }
}
