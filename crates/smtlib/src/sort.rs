//! Sorts of the supported SMT-LIB theories.

use std::fmt;

/// A sort (type) from the SMT-LIB theories STAUB supports.
///
/// The paper's notion of a *kind* (a family of related sorts, §3.1) maps to
/// the parameterized variants: every `BitVec(w)` is of the bitvector kind and
/// every `Float(eb, sb)` is of the floating-point kind.
///
/// # Examples
///
/// ```
/// use staub_smtlib::Sort;
/// assert!(Sort::Int.is_unbounded());
/// assert!(!Sort::BitVec(12).is_unbounded());
/// assert_eq!(Sort::BitVec(12).to_string(), "(_ BitVec 12)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// The core theory's boolean sort.
    Bool,
    /// Unbounded mathematical integers.
    Int,
    /// Unbounded mathematical reals.
    Real,
    /// Fixed-width bitvectors; the width is positive.
    BitVec(u32),
    /// IEEE-754 floating point with the given exponent and significand
    /// widths (significand includes the hidden bit).
    Float(u32, u32),
    /// The five IEEE-754 rounding modes.
    RoundingMode,
}

impl Sort {
    /// Returns `true` if the sort has infinitely many values
    /// (paper Definition 3.4 applied sort-wise).
    pub fn is_unbounded(self) -> bool {
        matches!(self, Sort::Int | Sort::Real)
    }

    /// Returns `true` if this is a numeric sort on which arithmetic
    /// operations are defined.
    pub fn is_numeric(self) -> bool {
        !matches!(self, Sort::Bool | Sort::RoundingMode)
    }

    /// Returns `true` if the sort belongs to the bitvector kind.
    pub fn is_bitvec(self) -> bool {
        matches!(self, Sort::BitVec(_))
    }

    /// Returns `true` if the sort belongs to the floating-point kind.
    pub fn is_float(self) -> bool {
        matches!(self, Sort::Float(..))
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => f.write_str("Bool"),
            Sort::Int => f.write_str("Int"),
            Sort::Real => f.write_str("Real"),
            Sort::BitVec(w) => write!(f, "(_ BitVec {w})"),
            Sort::Float(eb, sb) => write!(f, "(_ FloatingPoint {eb} {sb})"),
            Sort::RoundingMode => f.write_str("RoundingMode"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundedness() {
        assert!(Sort::Int.is_unbounded());
        assert!(Sort::Real.is_unbounded());
        assert!(!Sort::Bool.is_unbounded());
        assert!(!Sort::BitVec(64).is_unbounded());
        assert!(!Sort::Float(8, 24).is_unbounded());
        assert!(!Sort::RoundingMode.is_unbounded());
    }

    #[test]
    fn display() {
        assert_eq!(Sort::Bool.to_string(), "Bool");
        assert_eq!(Sort::Int.to_string(), "Int");
        assert_eq!(Sort::Real.to_string(), "Real");
        assert_eq!(Sort::Float(8, 24).to_string(), "(_ FloatingPoint 8 24)");
        assert_eq!(Sort::RoundingMode.to_string(), "RoundingMode");
    }

    #[test]
    fn kinds() {
        assert!(Sort::BitVec(1).is_bitvec());
        assert!(!Sort::Int.is_bitvec());
        assert!(Sort::Float(5, 11).is_float());
        assert!(!Sort::BitVec(16).is_float());
    }
}
