//! Exact arithmetic substrate for STAUB.
//!
//! SMT solving over unbounded theories requires arithmetic that is unbounded
//! in both magnitude and precision; solving over bounded theories requires
//! faithful two's-complement and IEEE-754 semantics. This crate provides all
//! four value domains used throughout the workspace:
//!
//! * [`BigInt`] — arbitrary-precision signed integers (sign + magnitude).
//! * [`BigRational`] — arbitrary-precision rationals, always normalized.
//! * [`BitVecValue`] — fixed-width two's-complement bitvector values with the
//!   full SMT-LIB operation set, including the overflow predicates
//!   (`bvsmulo` and friends) used by STAUB's translation guards.
//! * [`SoftFloat`] — software IEEE-754 binary floating point with *arbitrary*
//!   exponent/significand widths, as required by SMT-LIB's `FloatingPoint`
//!   theory. Rounding is round-to-nearest-even, implemented by exact rational
//!   arithmetic followed by a single correct rounding step.
//!
//! # Examples
//!
//! ```
//! use staub_numeric::{BigInt, BigRational, BitVecValue, SoftFloat};
//!
//! let a = BigInt::from(7);
//! assert_eq!(&a * &a * &a, BigInt::from(343));
//!
//! let half = BigRational::new(BigInt::from(1), BigInt::from(2));
//! assert_eq!(half.dig(), Some(1)); // one binary digit after the point
//!
//! let x = BitVecValue::from_i64(-3, 12);
//! assert_eq!(x.to_signed(), BigInt::from(-3));
//!
//! let f = SoftFloat::from_rational(8, 24, &half);
//! assert_eq!(f.to_rational(), Some(half));
//! ```

#![forbid(unsafe_code)]

mod bigint;
mod bitvec;
mod rational;
mod softfloat;

pub use bigint::{BigInt, ParseBigIntError, Sign};
pub use bitvec::BitVecValue;
pub use rational::{BigRational, ParseRationalError};
pub use softfloat::{FloatClass, RoundingMode, SoftFloat};
