//! Arbitrary-precision rational numbers.
//!
//! Always held in canonical form: `gcd(num, den) = 1` and `den > 0`, so
//! structural equality coincides with numeric equality.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::str::FromStr;

use crate::bigint::{BigInt, Sign};

/// An arbitrary-precision rational number.
///
/// # Examples
///
/// ```
/// use staub_numeric::{BigInt, BigRational};
///
/// let third = BigRational::new(BigInt::from(1), BigInt::from(3));
/// let sum = &third + &third + &third;
/// assert_eq!(sum, BigRational::from_int(BigInt::from(1)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    num: BigInt,
    /// Invariant: strictly positive and coprime with `num`.
    den: BigInt,
}

/// Error returned when parsing a [`BigRational`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    offending: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal `{}`", self.offending)
    }
}

impl Error for ParseRationalError {}

impl BigRational {
    /// Creates the rational `num / den`, reducing to canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> BigRational {
        assert!(!den.is_zero(), "rational with zero denominator");
        let g = num.gcd(&den);
        let (mut num, mut den) = if g == BigInt::one() {
            (num, den)
        } else {
            (&num / &g, &den / &g)
        };
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        BigRational { num, den }
    }

    /// The rational zero.
    pub fn zero() -> BigRational {
        BigRational::from_int(BigInt::zero())
    }

    /// The rational one.
    pub fn one() -> BigRational {
        BigRational::from_int(BigInt::one())
    }

    /// Creates a rational from an integer.
    pub fn from_int(v: BigInt) -> BigRational {
        BigRational {
            num: v,
            den: BigInt::one(),
        }
    }

    /// Creates the dyadic rational `mantissa * 2^exp`.
    ///
    /// ```
    /// use staub_numeric::{BigInt, BigRational};
    /// let v = BigRational::dyadic(BigInt::from(3), -2); // 3/4
    /// assert_eq!(v, BigRational::new(BigInt::from(3), BigInt::from(4)));
    /// ```
    pub fn dyadic(mantissa: BigInt, exp: i64) -> BigRational {
        if exp >= 0 {
            BigRational::from_int(mantissa.shl_bits(exp as usize))
        } else {
            BigRational::new(mantissa, BigInt::one().shl_bits((-exp) as usize))
        }
    }

    /// The numerator (canonical form).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (canonical form; always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRational {
        BigRational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> BigRational {
        BigRational::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer `<= self`.
    ///
    /// ```
    /// use staub_numeric::{BigInt, BigRational};
    /// let v = BigRational::new(BigInt::from(-7), BigInt::from(2));
    /// assert_eq!(v.floor(), BigInt::from(-4));
    /// ```
    pub fn floor(&self) -> BigInt {
        self.num.div_rem_euclid(&self.den).0
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -((-self.clone()).floor())
    }

    /// The minimum number `d` of binary fraction digits such that
    /// `2^d * self` is an integer, or `None` if no such `d` exists (the
    /// denominator has an odd factor). This is the paper's `dig(c)` function
    /// (Section 4.2), with `None` standing for the infinite-precision case.
    ///
    /// ```
    /// use staub_numeric::{BigInt, BigRational};
    /// let three_eighths = BigRational::new(BigInt::from(3), BigInt::from(8));
    /// assert_eq!(three_eighths.dig(), Some(3));
    /// let third = BigRational::new(BigInt::from(1), BigInt::from(3));
    /// assert_eq!(third.dig(), None);
    /// ```
    pub fn dig(&self) -> Option<usize> {
        if self.is_zero() || self.is_integer() {
            return Some(0);
        }
        let tz = self
            .den
            .trailing_zeros()
            .expect("nonzero denominator has defined trailing zeros");
        // After shifting out all factors of two, the denominator must be 1.
        if self.den.shr_bits(tz) == BigInt::one() {
            Some(tz)
        } else {
            None
        }
    }

    /// Approximates the value as an `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale so the integer division retains ~60 bits of precision.
        let nbits = self.num.bit_len() as i64;
        let dbits = self.den.bit_len() as i64;
        let shift = (dbits - nbits + 64).max(0) as usize;
        let scaled = (&self.num.shl_bits(shift) / &self.den).to_f64();
        scaled * 2f64.powi(-(shift as i32))
    }

    /// Parses an SMT-LIB style decimal literal such as `3.25` or `-0.5`,
    /// in addition to plain integers and `p/q` fraction syntax.
    fn parse_impl(s: &str) -> Option<BigRational> {
        if let Some((p, q)) = s.split_once('/') {
            let num: BigInt = p.trim().parse().ok()?;
            let den: BigInt = q.trim().parse().ok()?;
            if den.is_zero() {
                return None;
            }
            return Some(BigRational::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            if frac_part.is_empty() || !frac_part.chars().all(|c| c.is_ascii_digit()) {
                return None;
            }
            let negative = int_part.starts_with('-');
            let int_val: BigInt = if int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse().ok()?
            };
            let frac_val: BigInt = frac_part.parse().ok()?;
            let scale = BigInt::from(10).pow(frac_part.len() as u32);
            let mag = &(&int_val.abs() * &scale) + &frac_val;
            let num = if negative || int_val.is_negative() {
                -mag
            } else {
                mag
            };
            return Some(BigRational::new(num, scale));
        }
        s.parse::<BigInt>().ok().map(BigRational::from_int)
    }
}

impl Default for BigRational {
    fn default() -> BigRational {
        BigRational::zero()
    }
}

impl From<BigInt> for BigRational {
    fn from(v: BigInt) -> BigRational {
        BigRational::from_int(v)
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> BigRational {
        BigRational::from_int(BigInt::from(v))
    }
}

impl FromStr for BigRational {
    type Err = ParseRationalError;
    fn from_str(s: &str) -> Result<BigRational, ParseRationalError> {
        BigRational::parse_impl(s).ok_or_else(|| ParseRationalError {
            offending: s.to_string(),
        })
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({self})")
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &BigRational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &BigRational) -> Ordering {
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        -self.clone()
    }
}

impl Add for &BigRational {
    type Output = BigRational;
    fn add(self, rhs: &BigRational) -> BigRational {
        BigRational::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &BigRational {
    type Output = BigRational;
    fn sub(self, rhs: &BigRational) -> BigRational {
        self + &(-rhs)
    }
}

impl Mul for &BigRational {
    type Output = BigRational;
    fn mul(self, rhs: &BigRational) -> BigRational {
        if self.is_zero() || rhs.is_zero() {
            return BigRational::zero();
        }
        BigRational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &BigRational {
    type Output = BigRational;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &BigRational) -> BigRational {
        assert!(!rhs.is_zero(), "rational division by zero");
        BigRational::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! impl_owned_binops {
    ($($trait:ident, $method:ident);*) => {$(
        impl $trait for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                self.$method(&rhs)
            }
        }
    )*};
}

impl_owned_binops!(Add, add; Sub, sub; Mul, mul; Div, div);

impl std::iter::Sum for BigRational {
    fn sum<I: Iterator<Item = BigRational>>(iter: I) -> BigRational {
        iter.fold(BigRational::zero(), |acc, x| &acc + &x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> BigRational {
        BigRational::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn canonical_form() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(1, -2), r(-1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(0, 7), BigRational::zero());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = BigRational::new(BigInt::one(), BigInt::zero());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(2, 3) / &r(4, 3), r(1, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(r(6, 2).floor(), BigInt::from(3));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3));
    }

    #[test]
    fn dig_of_dyadic_and_non_dyadic() {
        assert_eq!(BigRational::zero().dig(), Some(0));
        assert_eq!(r(5, 1).dig(), Some(0));
        assert_eq!(r(1, 2).dig(), Some(1));
        assert_eq!(r(3, 8).dig(), Some(3));
        assert_eq!(r(1, 3).dig(), None);
        assert_eq!(r(5, 6).dig(), None);
        assert_eq!(r(7, 64).dig(), Some(6));
    }

    #[test]
    fn dyadic_constructor() {
        assert_eq!(BigRational::dyadic(BigInt::from(3), 2), r(12, 1));
        assert_eq!(BigRational::dyadic(BigInt::from(3), -2), r(3, 4));
        assert_eq!(BigRational::dyadic(BigInt::from(-1), -3), r(-1, 8));
    }

    #[test]
    fn parse_decimal() {
        assert_eq!("3.25".parse::<BigRational>().unwrap(), r(13, 4));
        assert_eq!("-0.5".parse::<BigRational>().unwrap(), r(-1, 2));
        assert_eq!("42".parse::<BigRational>().unwrap(), r(42, 1));
        assert_eq!("7/3".parse::<BigRational>().unwrap(), r(7, 3));
        assert!("1.".parse::<BigRational>().is_err());
        assert!("x".parse::<BigRational>().is_err());
        assert!("1/0".parse::<BigRational>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(-3, 9).to_string(), "-1/3");
    }

    #[test]
    fn to_f64() {
        assert!((r(1, 2).to_f64() - 0.5).abs() < 1e-15);
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert!((r(-22, 7).to_f64() + 22.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
        assert_eq!(r(-2, 3).abs(), r(2, 3));
    }
}
