//! Software IEEE-754 binary floating point with arbitrary widths.
//!
//! SMT-LIB's `FloatingPoint` theory permits any exponent width `eb >= 2` and
//! significand width `sb >= 2` (the significand width counts the hidden bit).
//! STAUB's real-to-float translation picks widths from abstract
//! interpretation, so standard `f32`/`f64` are not enough.
//!
//! Every arithmetic operation is computed exactly in rational arithmetic and
//! then rounded once, which is precisely the IEEE-754 definition of correctly
//! rounded arithmetic.

use std::cmp::Ordering;
use std::fmt;

use crate::bigint::BigInt;
use crate::rational::BigRational;

/// IEEE-754 / SMT-LIB rounding modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// Round to nearest, ties to even (`RNE`) — the SMT-LIB default.
    #[default]
    NearestEven,
    /// Round to nearest, ties away from zero (`RNA`).
    NearestAway,
    /// Round toward positive infinity (`RTP`).
    TowardPositive,
    /// Round toward negative infinity (`RTN`).
    TowardNegative,
    /// Round toward zero (`RTZ`).
    TowardZero,
}

/// Classification of a [`SoftFloat`] value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatClass {
    /// Not a number.
    Nan,
    /// Positive or negative infinity.
    Infinite,
    /// Positive or negative zero.
    Zero,
    /// A subnormal (denormalized) value.
    Subnormal,
    /// A normal value.
    Normal,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    Nan,
    /// `true` means negative.
    Inf(bool),
    /// `true` means negative.
    Zero(bool),
    /// Value is `(-1)^sign * sig * 2^exp` where `sig` is an integer with
    /// `2^(sb-1) <= sig < 2^sb` for normals, or `0 < sig < 2^(sb-1)` with
    /// `exp == min_exp(eb, sb)` for subnormals.
    Finite {
        sign: bool,
        exp: i64,
        sig: BigInt,
    },
}

/// An IEEE-754 binary floating-point value with `eb` exponent bits and `sb`
/// significand bits (including the hidden bit).
///
/// Equality and hashing are *structural*: two NaNs of the same format are
/// equal, and `+0 != -0`. Use [`SoftFloat::ieee_eq`] and
/// [`SoftFloat::ieee_cmp`] for IEEE semantics (used by `fp.eq`, `fp.lt`, ...).
///
/// # Examples
///
/// ```
/// use staub_numeric::{BigInt, BigRational, SoftFloat};
///
/// let a = SoftFloat::from_rational(8, 24, &"0.1".parse().unwrap());
/// // 0.1 is not a dyadic rational, so rounding was inexact:
/// assert_ne!(a.to_rational().unwrap(), "0.1".parse().unwrap());
///
/// let b = SoftFloat::from_rational(8, 24, &"0.25".parse().unwrap());
/// assert_eq!(b.to_rational().unwrap(), "0.25".parse().unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SoftFloat {
    eb: u32,
    sb: u32,
    repr: Repr,
}

impl SoftFloat {
    /// Exponent bias: `2^(eb-1) - 1`.
    fn bias(eb: u32) -> i64 {
        (1i64 << (eb - 1)) - 1
    }

    /// Smallest exponent of the integer significand (subnormal scale).
    fn min_exp(eb: u32, sb: u32) -> i64 {
        1 - Self::bias(eb) - (i64::from(sb) - 1)
    }

    /// Largest unbiased exponent of the leading bit of a normal value.
    fn max_unbiased(eb: u32) -> i64 {
        Self::bias(eb)
    }

    fn check_format(eb: u32, sb: u32) {
        assert!(eb >= 2, "exponent width must be at least 2, got {eb}");
        assert!(sb >= 2, "significand width must be at least 2, got {sb}");
        assert!(eb <= 60, "exponent width {eb} unreasonably large");
    }

    /// Positive zero in the given format.
    pub fn zero(eb: u32, sb: u32) -> SoftFloat {
        Self::check_format(eb, sb);
        SoftFloat {
            eb,
            sb,
            repr: Repr::Zero(false),
        }
    }

    /// Negative zero.
    pub fn neg_zero(eb: u32, sb: u32) -> SoftFloat {
        Self::check_format(eb, sb);
        SoftFloat {
            eb,
            sb,
            repr: Repr::Zero(true),
        }
    }

    /// NaN (a single canonical quiet NaN per format).
    pub fn nan(eb: u32, sb: u32) -> SoftFloat {
        Self::check_format(eb, sb);
        SoftFloat {
            eb,
            sb,
            repr: Repr::Nan,
        }
    }

    /// Positive or negative infinity.
    pub fn infinity(eb: u32, sb: u32, negative: bool) -> SoftFloat {
        Self::check_format(eb, sb);
        SoftFloat {
            eb,
            sb,
            repr: Repr::Inf(negative),
        }
    }

    /// Rounds a rational to the nearest representable value (ties to even).
    ///
    /// This is STAUB's constant-translation function φ for reals; see
    /// [`SoftFloat::round_from_rational`] to choose a different mode.
    ///
    /// # Panics
    ///
    /// Panics if `eb < 2`, `sb < 2`, or `eb > 60`.
    pub fn from_rational(eb: u32, sb: u32, value: &BigRational) -> SoftFloat {
        Self::round_from_rational(eb, sb, value, RoundingMode::NearestEven)
    }

    /// Rounds a rational to the given format with an explicit rounding mode.
    pub fn round_from_rational(
        eb: u32,
        sb: u32,
        value: &BigRational,
        mode: RoundingMode,
    ) -> SoftFloat {
        Self::check_format(eb, sb);
        if value.is_zero() {
            return SoftFloat::zero(eb, sb);
        }
        let sign = value.is_negative();
        let mag = value.abs();
        // E = floor(log2 mag), found by bit-length estimate and correction.
        let mut e_lead = mag.numer().bit_len() as i64 - mag.denom().bit_len() as i64;
        while Self::cmp_pow2(&mag, e_lead) == Ordering::Less {
            e_lead -= 1;
        }
        while Self::cmp_pow2(&mag, e_lead + 1) != Ordering::Less {
            e_lead += 1;
        }
        debug_assert!(Self::cmp_pow2(&mag, e_lead) != Ordering::Less);
        let min_e = Self::min_exp(eb, sb);
        // Exponent of the integer significand; clamped for subnormals.
        let mut e = (e_lead - (i64::from(sb) - 1)).max(min_e);
        let mut sig = Self::round_scaled(&mag, e, sign, mode);
        if sig.is_zero() {
            return SoftFloat {
                eb,
                sb,
                repr: Repr::Zero(sign),
            };
        }
        // Rounding may have carried to sb+1 bits: renormalize.
        if sig.bit_len() as i64 > i64::from(sb) {
            sig = sig.shr_bits(1);
            e += 1;
        }
        // Overflow to infinity if the leading bit exceeds the max exponent.
        let lead = e + sig.bit_len() as i64 - 1;
        if lead > Self::max_unbiased(eb) {
            // IEEE: directed rounding toward zero saturates at max finite.
            let saturate = match mode {
                RoundingMode::TowardZero => true,
                RoundingMode::TowardPositive => sign,
                RoundingMode::TowardNegative => !sign,
                _ => false,
            };
            if saturate {
                return SoftFloat::max_finite(eb, sb, sign);
            }
            return SoftFloat::infinity(eb, sb, sign);
        }
        SoftFloat {
            eb,
            sb,
            repr: Repr::Finite { sign, exp: e, sig },
        }
    }

    /// The largest finite value of the format, with the given sign.
    pub fn max_finite(eb: u32, sb: u32, negative: bool) -> SoftFloat {
        Self::check_format(eb, sb);
        let sig = BigInt::one().shl_bits(sb as usize) - BigInt::one();
        let exp = Self::max_unbiased(eb) - (i64::from(sb) - 1);
        SoftFloat {
            eb,
            sb,
            repr: Repr::Finite {
                sign: negative,
                exp,
                sig,
            },
        }
    }

    /// Compares `mag` (positive) against `2^e`.
    fn cmp_pow2(mag: &BigRational, e: i64) -> Ordering {
        // mag ? 2^e  <=>  num ? den * 2^e
        if e >= 0 {
            mag.numer().cmp(&mag.denom().shl_bits(e as usize))
        } else {
            mag.numer().shl_bits((-e) as usize).cmp(mag.denom())
        }
    }

    /// Rounds `mag / 2^e` to an integer under `mode` (`sign` is the sign of
    /// the original value, needed for directed modes).
    fn round_scaled(mag: &BigRational, e: i64, sign: bool, mode: RoundingMode) -> BigInt {
        let (num, den) = if e >= 0 {
            (mag.numer().clone(), mag.denom().shl_bits(e as usize))
        } else {
            (mag.numer().shl_bits((-e) as usize), mag.denom().clone())
        };
        let (q, r) = num.div_rem_trunc(&den);
        if r.is_zero() {
            return q;
        }
        let twice_r = r.shl_bits(1);
        let round_up = match mode {
            RoundingMode::NearestEven => match twice_r.cmp(&den) {
                Ordering::Greater => true,
                Ordering::Less => false,
                Ordering::Equal => q.is_odd(),
            },
            RoundingMode::NearestAway => twice_r.cmp(&den) != Ordering::Less,
            RoundingMode::TowardZero => false,
            RoundingMode::TowardPositive => !sign,
            RoundingMode::TowardNegative => sign,
        };
        if round_up {
            &q + &BigInt::one()
        } else {
            q
        }
    }

    /// Exponent width.
    pub fn eb(&self) -> u32 {
        self.eb
    }

    /// Significand width (including the hidden bit).
    pub fn sb(&self) -> u32 {
        self.sb
    }

    /// Classifies the value.
    pub fn classify(&self) -> FloatClass {
        match &self.repr {
            Repr::Nan => FloatClass::Nan,
            Repr::Inf(_) => FloatClass::Infinite,
            Repr::Zero(_) => FloatClass::Zero,
            Repr::Finite { sig, .. } => {
                if sig.bit_len() as u32 == self.sb {
                    FloatClass::Normal
                } else {
                    FloatClass::Subnormal
                }
            }
        }
    }

    /// Returns `true` for NaN.
    pub fn is_nan(&self) -> bool {
        matches!(self.repr, Repr::Nan)
    }

    /// Returns `true` for ±∞.
    pub fn is_infinite(&self) -> bool {
        matches!(self.repr, Repr::Inf(_))
    }

    /// Returns `true` for ±0.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Zero(_))
    }

    /// Returns `true` for finite values, including zeros.
    pub fn is_finite(&self) -> bool {
        matches!(self.repr, Repr::Zero(_) | Repr::Finite { .. })
    }

    /// The sign bit (`true` means negative). NaN reports `false`.
    pub fn sign(&self) -> bool {
        match &self.repr {
            Repr::Nan => false,
            Repr::Inf(s) | Repr::Zero(s) => *s,
            Repr::Finite { sign, .. } => *sign,
        }
    }

    /// Converts a finite value to an exact rational. Returns `None` for NaN
    /// and infinities. Both zeros map to rational zero (STAUB's φ⁻¹, which
    /// treats the three pathological values as semantic differences).
    pub fn to_rational(&self) -> Option<BigRational> {
        match &self.repr {
            Repr::Nan | Repr::Inf(_) => None,
            Repr::Zero(_) => Some(BigRational::zero()),
            Repr::Finite { sign, exp, sig } => {
                let v = BigRational::dyadic(sig.clone(), *exp);
                Some(if *sign { -v } else { v })
            }
        }
    }

    /// IEEE equality (`fp.eq`): NaN is not equal to anything, `-0 == +0`.
    pub fn ieee_eq(&self, other: &SoftFloat) -> bool {
        self.ieee_cmp(other) == Some(Ordering::Equal)
    }

    /// IEEE ordered comparison: `None` if either operand is NaN.
    pub fn ieee_cmp(&self, other: &SoftFloat) -> Option<Ordering> {
        match (&self.repr, &other.repr) {
            (Repr::Nan, _) | (_, Repr::Nan) => None,
            (Repr::Inf(a), Repr::Inf(b)) => Some(if a == b {
                Ordering::Equal
            } else if *a {
                Ordering::Less
            } else {
                Ordering::Greater
            }),
            (Repr::Inf(a), _) => Some(if *a {
                Ordering::Less
            } else {
                Ordering::Greater
            }),
            (_, Repr::Inf(b)) => Some(if *b {
                Ordering::Greater
            } else {
                Ordering::Less
            }),
            _ => {
                let a = self.to_rational().expect("finite");
                let b = other.to_rational().expect("finite");
                Some(a.cmp(&b))
            }
        }
    }

    /// `fp.neg`: flips the sign (exact; NaN stays NaN).
    pub fn neg(&self) -> SoftFloat {
        let repr = match &self.repr {
            Repr::Nan => Repr::Nan,
            Repr::Inf(s) => Repr::Inf(!s),
            Repr::Zero(s) => Repr::Zero(!s),
            Repr::Finite { sign, exp, sig } => Repr::Finite {
                sign: !sign,
                exp: *exp,
                sig: sig.clone(),
            },
        };
        SoftFloat {
            eb: self.eb,
            sb: self.sb,
            repr,
        }
    }

    /// `fp.abs`: clears the sign.
    pub fn abs(&self) -> SoftFloat {
        if self.sign() {
            self.neg()
        } else {
            self.clone()
        }
    }

    fn check_format_match(&self, other: &SoftFloat, op: &str) {
        assert!(
            self.eb == other.eb && self.sb == other.sb,
            "format mismatch in {op}: ({}, {}) vs ({}, {})",
            self.eb,
            self.sb,
            other.eb,
            other.sb
        );
    }

    /// `fp.add` with the given rounding mode.
    pub fn add(&self, other: &SoftFloat, mode: RoundingMode) -> SoftFloat {
        self.check_format_match(other, "fp.add");
        match (&self.repr, &other.repr) {
            (Repr::Nan, _) | (_, Repr::Nan) => SoftFloat::nan(self.eb, self.sb),
            (Repr::Inf(a), Repr::Inf(b)) => {
                if a == b {
                    self.clone()
                } else {
                    SoftFloat::nan(self.eb, self.sb)
                }
            }
            (Repr::Inf(_), _) => self.clone(),
            (_, Repr::Inf(_)) => other.clone(),
            (Repr::Zero(a), Repr::Zero(b)) => {
                // IEEE: (+0) + (-0) = +0 under RNE/RNA/RTZ/RTP, -0 under RTN.
                let sign = if a == b {
                    *a
                } else {
                    mode == RoundingMode::TowardNegative
                };
                SoftFloat {
                    eb: self.eb,
                    sb: self.sb,
                    repr: Repr::Zero(sign),
                }
            }
            _ => {
                let a = self.to_rational().expect("finite");
                let b = other.to_rational().expect("finite");
                let sum = &a + &b;
                if sum.is_zero() {
                    // Exact cancellation of nonzero operands: sign per mode.
                    if a.is_zero() {
                        return other.clone();
                    }
                    if b.is_zero() {
                        return self.clone();
                    }
                    let sign = mode == RoundingMode::TowardNegative;
                    return SoftFloat {
                        eb: self.eb,
                        sb: self.sb,
                        repr: Repr::Zero(sign),
                    };
                }
                SoftFloat::round_from_rational(self.eb, self.sb, &sum, mode)
            }
        }
    }

    /// `fp.sub` with the given rounding mode.
    pub fn sub(&self, other: &SoftFloat, mode: RoundingMode) -> SoftFloat {
        self.add(&other.neg(), mode)
    }

    /// `fp.mul` with the given rounding mode.
    pub fn mul(&self, other: &SoftFloat, mode: RoundingMode) -> SoftFloat {
        self.check_format_match(other, "fp.mul");
        let sign = self.sign() ^ other.sign();
        match (&self.repr, &other.repr) {
            (Repr::Nan, _) | (_, Repr::Nan) => SoftFloat::nan(self.eb, self.sb),
            (Repr::Inf(_), Repr::Zero(_)) | (Repr::Zero(_), Repr::Inf(_)) => {
                SoftFloat::nan(self.eb, self.sb)
            }
            (Repr::Inf(_), _) | (_, Repr::Inf(_)) => SoftFloat::infinity(self.eb, self.sb, sign),
            (Repr::Zero(_), _) | (_, Repr::Zero(_)) => SoftFloat {
                eb: self.eb,
                sb: self.sb,
                repr: Repr::Zero(sign),
            },
            _ => {
                let p = self.to_rational().expect("finite") * other.to_rational().expect("finite");
                SoftFloat::round_from_rational(self.eb, self.sb, &p, mode)
            }
        }
    }

    /// `fp.div` with the given rounding mode.
    pub fn div(&self, other: &SoftFloat, mode: RoundingMode) -> SoftFloat {
        self.check_format_match(other, "fp.div");
        let sign = self.sign() ^ other.sign();
        match (&self.repr, &other.repr) {
            (Repr::Nan, _) | (_, Repr::Nan) => SoftFloat::nan(self.eb, self.sb),
            (Repr::Inf(_), Repr::Inf(_)) | (Repr::Zero(_), Repr::Zero(_)) => {
                SoftFloat::nan(self.eb, self.sb)
            }
            (Repr::Inf(_), _) => SoftFloat::infinity(self.eb, self.sb, sign),
            (_, Repr::Inf(_)) => SoftFloat {
                eb: self.eb,
                sb: self.sb,
                repr: Repr::Zero(sign),
            },
            (Repr::Zero(_), _) => SoftFloat {
                eb: self.eb,
                sb: self.sb,
                repr: Repr::Zero(sign),
            },
            (_, Repr::Zero(_)) => SoftFloat::infinity(self.eb, self.sb, sign),
            _ => {
                let q = self.to_rational().expect("finite") / other.to_rational().expect("finite");
                SoftFloat::round_from_rational(self.eb, self.sb, &q, mode)
            }
        }
    }

    /// Decomposes into SMT-LIB `(fp s e m)` literal fields:
    /// `(sign_bit, biased_exponent_field, trailing_significand)`.
    pub fn to_fields(&self) -> (bool, BigInt, BigInt) {
        let all_ones_exp = BigInt::from((1i64 << self.eb) - 1);
        match &self.repr {
            Repr::Nan => (false, all_ones_exp, BigInt::one()),
            Repr::Inf(s) => (*s, all_ones_exp, BigInt::zero()),
            Repr::Zero(s) => (*s, BigInt::zero(), BigInt::zero()),
            Repr::Finite { sign, exp, sig } => {
                let hidden = BigInt::one().shl_bits(self.sb as usize - 1);
                if sig.bit_len() as u32 == self.sb {
                    // Normal: field = unbiased-lead-exponent + bias.
                    let lead = exp + i64::from(self.sb) - 1;
                    let field = BigInt::from(lead + Self::bias(self.eb));
                    (*sign, field, sig - &hidden)
                } else {
                    (*sign, BigInt::zero(), sig.clone())
                }
            }
        }
    }

    /// Reconstructs a value from SMT-LIB `(fp s e m)` literal fields.
    ///
    /// # Panics
    ///
    /// Panics if the fields are out of range for the format.
    pub fn from_fields(
        eb: u32,
        sb: u32,
        sign: bool,
        exp_field: &BigInt,
        sig_field: &BigInt,
    ) -> SoftFloat {
        Self::check_format(eb, sb);
        let max_exp = BigInt::from((1i64 << eb) - 1);
        assert!(
            !exp_field.is_negative() && exp_field <= &max_exp,
            "exponent field out of range"
        );
        let max_sig = BigInt::one().shl_bits(sb as usize - 1);
        assert!(
            !sig_field.is_negative() && sig_field < &max_sig,
            "significand field out of range"
        );
        if *exp_field == max_exp {
            return if sig_field.is_zero() {
                SoftFloat::infinity(eb, sb, sign)
            } else {
                SoftFloat::nan(eb, sb)
            };
        }
        if exp_field.is_zero() {
            if sig_field.is_zero() {
                return SoftFloat {
                    eb,
                    sb,
                    repr: Repr::Zero(sign),
                };
            }
            return SoftFloat {
                eb,
                sb,
                repr: Repr::Finite {
                    sign,
                    exp: Self::min_exp(eb, sb),
                    sig: sig_field.clone(),
                },
            };
        }
        let hidden = BigInt::one().shl_bits(sb as usize - 1);
        let sig = sig_field + &hidden;
        let lead = exp_field.to_i64().expect("eb <= 60") - Self::bias(eb);
        SoftFloat {
            eb,
            sb,
            repr: Repr::Finite {
                sign,
                exp: lead - (i64::from(sb) - 1),
                sig,
            },
        }
    }
}

impl fmt::Display for SoftFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Nan => write!(f, "NaN[{},{}]", self.eb, self.sb),
            Repr::Inf(s) => write!(
                f,
                "{}oo[{},{}]",
                if *s { "-" } else { "+" },
                self.eb,
                self.sb
            ),
            Repr::Zero(s) => write!(
                f,
                "{}0[{},{}]",
                if *s { "-" } else { "+" },
                self.eb,
                self.sb
            ),
            Repr::Finite { .. } => {
                let r = self.to_rational().expect("finite");
                write!(f, "{}[{},{}]", r, self.eb, self.sb)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(s: &str) -> BigRational {
        s.parse().unwrap()
    }

    fn f32sf(s: &str) -> SoftFloat {
        SoftFloat::from_rational(8, 24, &rat(s))
    }

    #[test]
    fn exact_small_values() {
        for s in ["1", "-1", "0.5", "0.25", "1.5", "-3.75", "1024"] {
            let f = f32sf(s);
            assert_eq!(f.to_rational().unwrap(), rat(s), "value {s}");
        }
    }

    #[test]
    fn rounding_matches_hardware_f32() {
        // Cross-check against the platform's IEEE-754 binary32 arithmetic.
        let cases = [0.1f64, 0.2, 0.3, 1.0 / 3.0, 1e10, -7.3, 123456.789];
        for &c in &cases {
            let hw = c as f32;
            let r = BigRational::new(
                BigInt::from((c * 1e9).round() as i64),
                BigInt::from(1_000_000_000i64),
            );
            let sf = SoftFloat::from_rational(8, 24, &r);
            let sf_back = sf.to_rational().unwrap().to_f64() as f32;
            let hw_from_r = (r.to_f64()) as f32;
            assert_eq!(sf_back.to_bits(), hw_from_r.to_bits(), "case {c} (hw {hw})");
        }
    }

    #[test]
    fn addition_rounds_like_f32() {
        let cases: [(f32, f32); 5] = [
            (0.1, 0.2),
            (1.0e20, 1.0),
            (1.5, -1.5),
            (3.0e38, 3.0e38),
            (-1.0e-40, 1.0e-42),
        ];
        for &(a, b) in &cases {
            let ra = BigRational::dyadic(BigInt::from((a as f64 * 2f64.powi(60)) as i128), -60);
            let rb = BigRational::dyadic(BigInt::from((b as f64 * 2f64.powi(60)) as i128), -60);
            // Reconstruct exactly-representable f32 inputs.
            let fa = SoftFloat::from_rational(8, 24, &ra);
            let fb = SoftFloat::from_rational(8, 24, &rb);
            let sum = fa.add(&fb, RoundingMode::NearestEven);
            let hw = (fa.to_rational().unwrap().to_f64() as f32)
                + (fb.to_rational().unwrap().to_f64() as f32);
            if hw.is_infinite() {
                assert!(sum.is_infinite(), "case {a} + {b}");
            } else {
                let got = sum.to_rational().unwrap().to_f64() as f32;
                assert_eq!(got.to_bits(), hw.to_bits(), "case {a} + {b}");
            }
        }
    }

    #[test]
    fn multiplication_rounds_like_f32() {
        let pairs: [(f32, f32); 4] = [(3.0, 7.0), (0.1, 0.1), (1.0e30, 1.0e30), (1.0e-30, 1.0e-30)];
        for &(a, b) in &pairs {
            let fa = f32_to_sf(a);
            let fb = f32_to_sf(b);
            let prod = fa.mul(&fb, RoundingMode::NearestEven);
            let hw = a * b;
            assert_sf_eq_f32(&prod, hw, &format!("{a} * {b}"));
        }
    }

    #[test]
    fn division_rounds_like_f32() {
        let pairs: [(f32, f32); 4] = [(1.0, 3.0), (-22.0, 7.0), (1.0, 1.0e38), (5.0, 0.5)];
        for &(a, b) in &pairs {
            let q = f32_to_sf(a).div(&f32_to_sf(b), RoundingMode::NearestEven);
            assert_sf_eq_f32(&q, a / b, &format!("{a} / {b}"));
        }
    }

    fn f32_to_sf(v: f32) -> SoftFloat {
        let bits = v.to_bits();
        let sign = bits >> 31 == 1;
        let exp = BigInt::from((bits >> 23) & 0xff);
        let sig = BigInt::from(bits & 0x7f_ffff);
        SoftFloat::from_fields(8, 24, sign, &exp, &sig)
    }

    fn assert_sf_eq_f32(sf: &SoftFloat, hw: f32, ctx: &str) {
        if hw.is_nan() {
            assert!(sf.is_nan(), "{ctx}: expected NaN, got {sf}");
        } else if hw.is_infinite() {
            assert!(
                sf.is_infinite() && sf.sign() == (hw < 0.0),
                "{ctx}: expected {hw}, got {sf}"
            );
        } else {
            let got = sf.to_rational().unwrap().to_f64() as f32;
            assert_eq!(
                got.to_bits(),
                hw.to_bits(),
                "{ctx}: expected {hw}, got {sf}"
            );
        }
    }

    #[test]
    fn specials_arithmetic() {
        let inf = SoftFloat::infinity(8, 24, false);
        let ninf = SoftFloat::infinity(8, 24, true);
        let nan = SoftFloat::nan(8, 24);
        let one = f32sf("1");
        let zero = SoftFloat::zero(8, 24);
        let m = RoundingMode::NearestEven;

        assert!(inf.add(&ninf, m).is_nan());
        assert!(inf.add(&one, m).is_infinite());
        assert!(nan.add(&one, m).is_nan());
        assert!(inf.mul(&zero, m).is_nan());
        assert!(zero.div(&zero, m).is_nan());
        assert!(inf.div(&inf, m).is_nan());
        assert!(one.div(&zero, m).is_infinite());
        let q = one.div(&inf, m);
        assert!(q.is_zero() && !q.sign());
        let qn = one.neg().div(&inf, m);
        assert!(qn.is_zero() && qn.sign());
    }

    #[test]
    fn zero_sign_rules() {
        let pz = SoftFloat::zero(8, 24);
        let nz = SoftFloat::neg_zero(8, 24);
        let rne = RoundingMode::NearestEven;
        let rtn = RoundingMode::TowardNegative;
        assert!(!pz.add(&nz, rne).sign());
        assert!(pz.add(&nz, rtn).sign());
        assert!(nz.add(&nz, rne).sign());
        // Exact cancellation: 1 + (-1) = +0 under RNE, -0 under RTN.
        let one = f32sf("1");
        assert!(!one.add(&one.neg(), rne).sign());
        assert!(one.add(&one.neg(), rtn).sign());
    }

    #[test]
    fn overflow_to_infinity() {
        let max = SoftFloat::max_finite(8, 24, false);
        let sum = max.add(&max, RoundingMode::NearestEven);
        assert!(sum.is_infinite());
        // Toward-zero saturates instead.
        let sat = max.add(&max, RoundingMode::TowardZero);
        assert_eq!(sat, max);
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal of binary32 is 2^-149.
        let tiny = BigRational::dyadic(BigInt::one(), -149);
        let f = SoftFloat::from_rational(8, 24, &tiny);
        assert_eq!(f.classify(), FloatClass::Subnormal);
        assert_eq!(f.to_rational().unwrap(), tiny);
        // Half of it rounds to zero under RNE (ties to even).
        let half_tiny = BigRational::dyadic(BigInt::one(), -150);
        let g = SoftFloat::from_rational(8, 24, &half_tiny);
        assert!(g.is_zero());
        // But three-quarters of the smallest subnormal rounds up.
        let three_q = BigRational::dyadic(BigInt::from(3), -151);
        let h = SoftFloat::from_rational(8, 24, &three_q);
        assert_eq!(h, f);
    }

    #[test]
    fn ieee_comparison() {
        let one = f32sf("1");
        let two = f32sf("2");
        let nan = SoftFloat::nan(8, 24);
        let pz = SoftFloat::zero(8, 24);
        let nz = SoftFloat::neg_zero(8, 24);
        assert_eq!(one.ieee_cmp(&two), Some(Ordering::Less));
        assert_eq!(nan.ieee_cmp(&one), None);
        assert!(pz.ieee_eq(&nz));
        assert_ne!(pz, nz, "structural equality distinguishes zero signs");
        assert!(!nan.ieee_eq(&nan));
        assert_eq!(nan, nan.clone(), "structural equality unifies NaNs");
    }

    #[test]
    fn fields_round_trip() {
        for s in ["1", "-0.5", "3.25", "1000000"] {
            let f = f32sf(s);
            let (sign, e, m) = f.to_fields();
            let g = SoftFloat::from_fields(8, 24, sign, &e, &m);
            assert_eq!(f, g, "round trip {s}");
        }
        let nan = SoftFloat::nan(8, 24);
        let (_, e, m) = nan.to_fields();
        assert!(SoftFloat::from_fields(8, 24, false, &e, &m).is_nan());
    }

    #[test]
    fn tiny_formats() {
        // A (3,3) float: values like ±{0, 0.25 .. 3.5, inf}.
        let v = SoftFloat::from_rational(3, 3, &rat("1.25"));
        // 1.25 with 3 significand bits: representable exactly (1.01b).
        assert_eq!(v.to_rational().unwrap(), rat("1.25"));
        let big = SoftFloat::from_rational(3, 3, &rat("100"));
        assert!(big.is_infinite());
    }

    #[test]
    fn neg_abs() {
        let v = f32sf("-2.5");
        assert_eq!(v.abs(), f32sf("2.5"));
        assert_eq!(v.neg(), f32sf("2.5"));
        assert!(SoftFloat::nan(8, 24).neg().is_nan());
    }

    #[test]
    fn subnormal_arithmetic() {
        // Subnormal + subnormal stays exact (no hidden-bit normalization).
        let tiny = BigRational::dyadic(BigInt::one(), -149);
        let a = SoftFloat::from_rational(8, 24, &tiny);
        let sum = a.add(&a, RoundingMode::NearestEven);
        assert_eq!(
            sum.to_rational().unwrap(),
            BigRational::dyadic(BigInt::one(), -148)
        );
        // Dividing the smallest subnormal by 2 underflows to zero (RNE).
        let two = SoftFloat::from_rational(8, 24, &"2".parse().unwrap());
        let q = a.div(&two, RoundingMode::NearestEven);
        assert!(q.is_zero());
    }

    #[test]
    fn max_finite_boundary() {
        let max = SoftFloat::max_finite(8, 24, false);
        let one = SoftFloat::from_rational(8, 24, &"1".parse().unwrap());
        // Adding 1 to the max finite value rounds back to it (ulp >> 1).
        assert_eq!(max.add(&one, RoundingMode::NearestEven), max);
        assert!(max.neg().sign());
        assert_eq!(max.classify(), FloatClass::Normal);
    }

    #[test]
    fn format_mismatch_panics() {
        let a = SoftFloat::zero(8, 24);
        let b = SoftFloat::zero(5, 11);
        let r = std::panic::catch_unwind(|| a.add(&b, RoundingMode::NearestEven));
        assert!(r.is_err());
    }

    #[test]
    fn directed_rounding_modes() {
        let third = rat("1/3");
        let up = SoftFloat::round_from_rational(8, 24, &third, RoundingMode::TowardPositive);
        let down = SoftFloat::round_from_rational(8, 24, &third, RoundingMode::TowardNegative);
        assert!(up.to_rational().unwrap() > third);
        assert!(down.to_rational().unwrap() < third);
        let nthird = rat("-1/3");
        let nup = SoftFloat::round_from_rational(8, 24, &nthird, RoundingMode::TowardPositive);
        let ndown = SoftFloat::round_from_rational(8, 24, &nthird, RoundingMode::TowardNegative);
        assert!(nup.to_rational().unwrap() > nthird);
        assert!(ndown.to_rational().unwrap() < nthird);
    }
}
