//! Fixed-width two's-complement bitvector values.
//!
//! [`BitVecValue`] implements the value-level semantics of SMT-LIB's
//! `FixedSizeBitVectors` theory, including the overflow-detection predicates
//! (`bvsaddo`, `bvsmulo`, ...) that STAUB inserts as translation guards.

use std::cmp::Ordering;
use std::fmt;

use crate::bigint::BigInt;

/// A bitvector value: an unsigned residue modulo `2^width`.
///
/// All operations follow SMT-LIB semantics. The signed interpretation is
/// two's complement.
///
/// # Examples
///
/// ```
/// use staub_numeric::{BigInt, BitVecValue};
///
/// let a = BitVecValue::from_i64(-1, 8);
/// assert_eq!(a.to_unsigned(), BigInt::from(255));
/// let b = BitVecValue::from_i64(1, 8);
/// assert_eq!(a.bvadd(&b).to_signed(), BigInt::zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVecValue {
    width: u32,
    /// Invariant: `0 <= value < 2^width`.
    value: BigInt,
}

impl BitVecValue {
    /// Creates a bitvector of the given width from any integer, reducing
    /// modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero (SMT-LIB bitvector widths are positive).
    pub fn new(value: BigInt, width: u32) -> BitVecValue {
        assert!(width > 0, "bitvector width must be positive");
        let modulus = BigInt::one().shl_bits(width as usize);
        let (_, r) = value.div_rem_euclid(&modulus);
        BitVecValue { width, value: r }
    }

    /// Creates a bitvector from an `i64` (two's-complement reduction).
    pub fn from_i64(value: i64, width: u32) -> BitVecValue {
        BitVecValue::new(BigInt::from(value), width)
    }

    /// Creates a bitvector *without* reducing modulo `2^width`, violating
    /// the type's invariant when `value` is out of range.
    ///
    /// Exists only so negative tests can seed the corrupted constants that
    /// `staub-lint`'s boundedness pass certifies against. Never call this
    /// from production code.
    #[doc(hidden)]
    pub fn corrupted_for_test(value: BigInt, width: u32) -> BitVecValue {
        BitVecValue { width, value }
    }

    /// The all-zero bitvector of the given width.
    pub fn zero(width: u32) -> BitVecValue {
        BitVecValue::new(BigInt::zero(), width)
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Unsigned interpretation, in `[0, 2^width)`.
    pub fn to_unsigned(&self) -> BigInt {
        self.value.clone()
    }

    /// Signed (two's-complement) interpretation, in `[-2^(w-1), 2^(w-1))`.
    pub fn to_signed(&self) -> BigInt {
        if self.msb() {
            &self.value - &BigInt::one().shl_bits(self.width as usize)
        } else {
            self.value.clone()
        }
    }

    /// The most significant (sign) bit.
    pub fn msb(&self) -> bool {
        self.value.bit(self.width as usize - 1)
    }

    /// Bit `i` (little-endian).
    pub fn bit(&self, i: u32) -> bool {
        i < self.width && self.value.bit(i as usize)
    }

    /// Returns `true` if `value` is representable as a signed `width`-bit
    /// two's-complement integer.
    ///
    /// Unlike the constructors, this takes `width` as a raw parameter, so
    /// it must handle `width == 0` itself (a zero-width type represents
    /// nothing) rather than underflow `width - 1`.
    pub fn fits_signed(value: &BigInt, width: u32) -> bool {
        if width == 0 {
            return false;
        }
        let half = BigInt::one().shl_bits(width as usize - 1);
        value >= &(-&half) && value < &half
    }

    fn check_width(&self, other: &BitVecValue, op: &str) {
        assert_eq!(
            self.width, other.width,
            "width mismatch in {op}: {} vs {}",
            self.width, other.width
        );
    }

    /// `bvadd`: addition modulo `2^width`.
    pub fn bvadd(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvadd");
        BitVecValue::new(&self.value + &other.value, self.width)
    }

    /// `bvsub`: subtraction modulo `2^width`.
    pub fn bvsub(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvsub");
        BitVecValue::new(&self.value - &other.value, self.width)
    }

    /// `bvmul`: multiplication modulo `2^width`.
    pub fn bvmul(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvmul");
        BitVecValue::new(&self.value * &other.value, self.width)
    }

    /// `bvneg`: two's-complement negation.
    pub fn bvneg(&self) -> BitVecValue {
        BitVecValue::new(-self.value.clone(), self.width)
    }

    /// Absolute value with wraparound (`abs(INT_MIN) = INT_MIN`), matching
    /// the translation of SMT-LIB integer `abs` into bitvectors.
    pub fn bvabs(&self) -> BitVecValue {
        if self.msb() {
            self.bvneg()
        } else {
            self.clone()
        }
    }

    /// `bvsdiv`: signed division, truncating toward zero. Division by zero
    /// follows SMT-LIB: returns all-ones if the dividend is non-negative,
    /// one otherwise.
    pub fn bvsdiv(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvsdiv");
        if other.value.is_zero() {
            return if self.msb() {
                BitVecValue::new(BigInt::one(), self.width)
            } else {
                BitVecValue::new(BigInt::from(-1), self.width)
            };
        }
        let (q, _) = self.to_signed().div_rem_trunc(&other.to_signed());
        BitVecValue::new(q, self.width)
    }

    /// `bvsrem`: signed remainder (sign follows dividend). Remainder by zero
    /// returns the dividend, per SMT-LIB.
    pub fn bvsrem(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvsrem");
        if other.value.is_zero() {
            return self.clone();
        }
        let (_, r) = self.to_signed().div_rem_trunc(&other.to_signed());
        BitVecValue::new(r, self.width)
    }

    /// `bvudiv`: unsigned division; division by zero yields all ones.
    pub fn bvudiv(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvudiv");
        if other.value.is_zero() {
            return BitVecValue::new(BigInt::from(-1), self.width);
        }
        BitVecValue::new(&self.value / &other.value, self.width)
    }

    /// `bvurem`: unsigned remainder; remainder by zero yields the dividend.
    pub fn bvurem(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvurem");
        if other.value.is_zero() {
            return self.clone();
        }
        BitVecValue::new(&self.value % &other.value, self.width)
    }

    /// `bvshl`: logical shift left (shift amount is the unsigned value of
    /// `other`, saturating past the width).
    pub fn bvshl(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvshl");
        match other.value.to_u64() {
            Some(sh) if sh < u64::from(self.width) => {
                BitVecValue::new(self.value.shl_bits(sh as usize), self.width)
            }
            _ => BitVecValue::zero(self.width),
        }
    }

    /// `bvlshr`: logical shift right.
    pub fn bvlshr(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvlshr");
        match other.value.to_u64() {
            Some(sh) if sh < u64::from(self.width) => {
                BitVecValue::new(self.value.shr_bits(sh as usize), self.width)
            }
            _ => BitVecValue::zero(self.width),
        }
    }

    /// `bvashr`: arithmetic shift right.
    pub fn bvashr(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvashr");
        let sh = other.value.to_u64().unwrap_or(u64::from(self.width));
        let sh = sh.min(u64::from(self.width)) as usize;
        let mut shifted = self.value.shr_bits(sh);
        if self.msb() {
            // Fill the vacated high bits with ones.
            let ones = BigInt::one().shl_bits(sh) - BigInt::one();
            let fill = ones.shl_bits(self.width as usize - sh);
            shifted = &shifted + &fill;
        }
        BitVecValue::new(shifted, self.width)
    }

    /// Bitwise and.
    pub fn bvand(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvand");
        self.bitwise(other, |a, b| a & b)
    }

    /// Bitwise or.
    pub fn bvor(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvor");
        self.bitwise(other, |a, b| a | b)
    }

    /// Bitwise xor.
    pub fn bvxor(&self, other: &BitVecValue) -> BitVecValue {
        self.check_width(other, "bvxor");
        self.bitwise(other, |a, b| a ^ b)
    }

    /// Bitwise not.
    pub fn bvnot(&self) -> BitVecValue {
        let ones = BigInt::one().shl_bits(self.width as usize) - BigInt::one();
        BitVecValue::new(&ones - &self.value, self.width)
    }

    fn bitwise(&self, other: &BitVecValue, f: impl Fn(bool, bool) -> bool) -> BitVecValue {
        let mut acc = BigInt::zero();
        for i in (0..self.width as usize).rev() {
            acc = acc.shl_bits(1);
            if f(self.value.bit(i), other.value.bit(i)) {
                acc = &acc + &BigInt::one();
            }
        }
        BitVecValue::new(acc, self.width)
    }

    /// Signed comparison, e.g. for `bvslt`/`bvsle`/`bvsgt`/`bvsge`.
    pub fn scmp(&self, other: &BitVecValue) -> Ordering {
        self.check_width(other, "signed comparison");
        self.to_signed().cmp(&other.to_signed())
    }

    /// Unsigned comparison, e.g. for `bvult`/`bvule`.
    pub fn ucmp(&self, other: &BitVecValue) -> Ordering {
        self.check_width(other, "unsigned comparison");
        self.value.cmp(&other.value)
    }

    /// `bvsaddo`: does signed addition overflow?
    pub fn bvsaddo(&self, other: &BitVecValue) -> bool {
        self.check_width(other, "bvsaddo");
        !Self::fits_signed(&(&self.to_signed() + &other.to_signed()), self.width)
    }

    /// `bvssubo`: does signed subtraction overflow?
    pub fn bvssubo(&self, other: &BitVecValue) -> bool {
        self.check_width(other, "bvssubo");
        !Self::fits_signed(&(&self.to_signed() - &other.to_signed()), self.width)
    }

    /// `bvsmulo`: does signed multiplication overflow?
    pub fn bvsmulo(&self, other: &BitVecValue) -> bool {
        self.check_width(other, "bvsmulo");
        !Self::fits_signed(&(&self.to_signed() * &other.to_signed()), self.width)
    }

    /// `bvsdivo`: does signed division overflow (only `INT_MIN / -1`)?
    pub fn bvsdivo(&self, other: &BitVecValue) -> bool {
        self.check_width(other, "bvsdivo");
        let min = -BigInt::one().shl_bits(self.width as usize - 1);
        self.to_signed() == min && other.to_signed() == BigInt::from(-1)
    }

    /// `bvnego`: does negation overflow (only `-INT_MIN`)?
    pub fn bvnego(&self) -> bool {
        let min = -BigInt::one().shl_bits(self.width as usize - 1);
        self.to_signed() == min
    }

    /// Sign-extends to a wider bitvector.
    ///
    /// # Panics
    ///
    /// Panics if `new_width < self.width()`.
    pub fn sign_extend(&self, new_width: u32) -> BitVecValue {
        assert!(new_width >= self.width, "sign_extend must not truncate");
        BitVecValue::new(self.to_signed(), new_width)
    }

    /// Zero-extends to a wider bitvector.
    ///
    /// # Panics
    ///
    /// Panics if `new_width < self.width()`.
    pub fn zero_extend(&self, new_width: u32) -> BitVecValue {
        assert!(new_width >= self.width, "zero_extend must not truncate");
        BitVecValue::new(self.value.clone(), new_width)
    }
}

impl fmt::Display for BitVecValue {
    /// Prints SMT-LIB syntax: `(_ bvN W)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(_ bv{} {})", self.value, self.width)
    }
}

impl fmt::Debug for BitVecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVecValue({}#{})", self.value, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(v: i64, w: u32) -> BitVecValue {
        BitVecValue::from_i64(v, w)
    }

    #[test]
    fn construction_reduces_mod_2w() {
        assert_eq!(bv(256, 8).to_unsigned(), BigInt::zero());
        assert_eq!(bv(-1, 8).to_unsigned(), BigInt::from(255));
        assert_eq!(bv(-1, 8).to_signed(), BigInt::from(-1));
        assert_eq!(bv(-128, 8).to_signed(), BigInt::from(-128));
        assert_eq!(bv(128, 8).to_signed(), BigInt::from(-128));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = BitVecValue::zero(0);
    }

    #[test]
    fn fits_signed_handles_zero_width() {
        // Regression: `width - 1` used to underflow for width == 0.
        assert!(!BitVecValue::fits_signed(&BigInt::zero(), 0));
        assert!(!BitVecValue::fits_signed(&BigInt::from(-1), 0));
        // Width-1 boundaries: signed range is [-1, 0].
        assert!(BitVecValue::fits_signed(&BigInt::from(-1), 1));
        assert!(BitVecValue::fits_signed(&BigInt::zero(), 1));
        assert!(!BitVecValue::fits_signed(&BigInt::one(), 1));
        // Width-8 boundaries.
        assert!(BitVecValue::fits_signed(&BigInt::from(-128), 8));
        assert!(BitVecValue::fits_signed(&BigInt::from(127), 8));
        assert!(!BitVecValue::fits_signed(&BigInt::from(-129), 8));
        assert!(!BitVecValue::fits_signed(&BigInt::from(128), 8));
    }

    #[test]
    fn add_wraps() {
        assert_eq!(bv(200, 8).bvadd(&bv(100, 8)), bv(44, 8));
        assert_eq!(bv(127, 8).bvadd(&bv(1, 8)).to_signed(), BigInt::from(-128));
    }

    #[test]
    fn sub_mul_neg() {
        assert_eq!(bv(5, 8).bvsub(&bv(7, 8)).to_signed(), BigInt::from(-2));
        assert_eq!(bv(16, 8).bvmul(&bv(16, 8)), bv(0, 8));
        assert_eq!(bv(7, 12).bvmul(&bv(7, 12)), bv(49, 12));
        assert_eq!(bv(5, 8).bvneg().to_signed(), BigInt::from(-5));
        assert_eq!(bv(-128, 8).bvneg().to_signed(), BigInt::from(-128));
    }

    #[test]
    fn abs_wraps_at_min() {
        assert_eq!(bv(-5, 8).bvabs(), bv(5, 8));
        assert_eq!(bv(5, 8).bvabs(), bv(5, 8));
        assert_eq!(bv(-128, 8).bvabs(), bv(-128, 8));
    }

    #[test]
    fn signed_division() {
        assert_eq!(bv(7, 8).bvsdiv(&bv(2, 8)), bv(3, 8));
        assert_eq!(bv(-7, 8).bvsdiv(&bv(2, 8)), bv(-3, 8));
        assert_eq!(bv(7, 8).bvsdiv(&bv(-2, 8)), bv(-3, 8));
        assert_eq!(bv(-7, 8).bvsrem(&bv(2, 8)), bv(-1, 8));
        // SMT-LIB division-by-zero semantics.
        assert_eq!(bv(5, 8).bvsdiv(&bv(0, 8)), bv(-1, 8));
        assert_eq!(bv(-5, 8).bvsdiv(&bv(0, 8)), bv(1, 8));
        assert_eq!(bv(5, 8).bvsrem(&bv(0, 8)), bv(5, 8));
    }

    #[test]
    fn unsigned_division() {
        assert_eq!(bv(200, 8).bvudiv(&bv(3, 8)), bv(66, 8));
        assert_eq!(bv(200, 8).bvurem(&bv(3, 8)), bv(2, 8));
        assert_eq!(bv(5, 8).bvudiv(&bv(0, 8)), bv(255, 8));
        assert_eq!(bv(5, 8).bvurem(&bv(0, 8)), bv(5, 8));
    }

    #[test]
    fn shifts() {
        assert_eq!(bv(1, 8).bvshl(&bv(3, 8)), bv(8, 8));
        assert_eq!(bv(1, 8).bvshl(&bv(8, 8)), bv(0, 8));
        assert_eq!(bv(-1, 8).bvlshr(&bv(4, 8)), bv(15, 8));
        assert_eq!(bv(-16, 8).bvashr(&bv(2, 8)).to_signed(), BigInt::from(-4));
        assert_eq!(bv(-1, 8).bvashr(&bv(20, 8)).to_signed(), BigInt::from(-1));
        assert_eq!(bv(64, 8).bvashr(&bv(2, 8)), bv(16, 8));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(bv(0b1100, 4).bvand(&bv(0b1010, 4)), bv(0b1000, 4));
        assert_eq!(bv(0b1100, 4).bvor(&bv(0b1010, 4)), bv(0b1110, 4));
        assert_eq!(bv(0b1100, 4).bvxor(&bv(0b1010, 4)), bv(0b0110, 4));
        assert_eq!(bv(0b1100, 4).bvnot(), bv(0b0011, 4));
    }

    #[test]
    fn comparisons() {
        assert_eq!(bv(-1, 8).scmp(&bv(1, 8)), Ordering::Less);
        assert_eq!(bv(-1, 8).ucmp(&bv(1, 8)), Ordering::Greater);
        assert_eq!(bv(5, 8).scmp(&bv(5, 8)), Ordering::Equal);
    }

    #[test]
    fn overflow_predicates() {
        assert!(bv(127, 8).bvsaddo(&bv(1, 8)));
        assert!(!bv(126, 8).bvsaddo(&bv(1, 8)));
        assert!(bv(-128, 8).bvssubo(&bv(1, 8)));
        assert!(!bv(-127, 8).bvssubo(&bv(1, 8)));
        assert!(bv(16, 8).bvsmulo(&bv(8, 8)));
        assert!(!bv(16, 8).bvsmulo(&bv(7, 8)));
        assert!(bv(-128, 8).bvsdivo(&bv(-1, 8)));
        assert!(!bv(-128, 8).bvsdivo(&bv(1, 8)));
        assert!(bv(-128, 8).bvnego());
        assert!(!bv(-127, 8).bvnego());
    }

    #[test]
    fn extensions() {
        assert_eq!(bv(-3, 4).sign_extend(8).to_signed(), BigInt::from(-3));
        assert_eq!(bv(-3, 4).zero_extend(8).to_unsigned(), BigInt::from(13));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = bv(1, 4).bvadd(&bv(1, 8));
    }

    #[test]
    fn display_smtlib_syntax() {
        assert_eq!(bv(12, 8).to_string(), "(_ bv12 8)");
        assert_eq!(bv(-1, 4).to_string(), "(_ bv15 4)");
    }
}
