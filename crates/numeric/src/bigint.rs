//! Arbitrary-precision signed integers.
//!
//! Representation: a [`Sign`] plus a little-endian magnitude of `u64` limbs
//! with no trailing zero limbs. Zero is canonically `Sign::Zero` with an
//! empty limb vector, so structural equality coincides with numeric equality.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Shl, Shr, Sub};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use staub_numeric::BigInt;
///
/// let a: BigInt = "123456789012345678901234567890".parse().unwrap();
/// let b = BigInt::from(10u64).pow(29);
/// assert!(a > b);
/// assert_eq!((&a - &a), BigInt::zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian magnitude; invariant: no trailing zero limb.
    limbs: Vec<u64>,
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    offending: String,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal `{}`", self.offending)
    }
}

impl Error for ParseBigIntError {}

// ---------------------------------------------------------------------------
// Magnitude (unsigned limb vector) helpers
// ---------------------------------------------------------------------------

fn mag_trim(limbs: &mut Vec<u64>) {
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in long.iter().enumerate() {
        let (s1, c1) = limb.overflowing_add(*short.get(i).unwrap_or(&0));
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = u64::from(c1) + u64::from(c2);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Computes `a - b`; requires `a >= b`.
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &limb) in a.iter().enumerate() {
        let (d1, b1) = limb.overflowing_sub(*b.get(i).unwrap_or(&0));
        let (d2, b2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = u64::from(b1) + u64::from(b2);
    }
    debug_assert_eq!(borrow, 0);
    mag_trim(&mut out);
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = u128::from(ai) * u128::from(bj) + u128::from(out[i + j]) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = u128::from(out[k]) + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    mag_trim(&mut out);
    out
}

fn mag_shl(a: &[u64], bits: usize) -> Vec<u64> {
    if a.is_empty() {
        return Vec::new();
    }
    let limb_shift = bits / 64;
    let bit_shift = bits % 64;
    let mut out = vec![0u64; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry = 0u64;
        for &limb in a {
            out.push((limb << bit_shift) | carry);
            carry = limb >> (64 - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    mag_trim(&mut out);
    out
}

fn mag_shr(a: &[u64], bits: usize) -> Vec<u64> {
    let limb_shift = bits / 64;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = bits % 64;
    let src = &a[limb_shift..];
    let mut out = Vec::with_capacity(src.len());
    if bit_shift == 0 {
        out.extend_from_slice(src);
    } else {
        for i in 0..src.len() {
            let hi = if i + 1 < src.len() {
                src[i + 1] << (64 - bit_shift)
            } else {
                0
            };
            out.push((src[i] >> bit_shift) | hi);
        }
    }
    mag_trim(&mut out);
    out
}

fn mag_bit_len(a: &[u64]) -> usize {
    match a.last() {
        None => 0,
        Some(&top) => (a.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
    }
}

fn mag_get_bit(a: &[u64], i: usize) -> bool {
    let limb = i / 64;
    limb < a.len() && (a[limb] >> (i % 64)) & 1 == 1
}

fn mag_set_bit(a: &mut Vec<u64>, i: usize) {
    let limb = i / 64;
    if limb >= a.len() {
        a.resize(limb + 1, 0);
    }
    a[limb] |= 1u64 << (i % 64);
}

/// Schoolbook binary long division: returns `(quotient, remainder)`.
///
/// Runs in O(bits(a) * limbs(b)); fine for the constraint sizes this
/// workspace manipulates, where divisions are rare compared to add/mul.
fn mag_div_rem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!b.is_empty(), "division by zero magnitude");
    if mag_cmp(a, b) == Ordering::Less {
        return (Vec::new(), a.to_vec());
    }
    // Fast path: single-limb divisor.
    if b.len() == 1 {
        let d = u128::from(b[0]);
        let mut quot = vec![0u64; a.len()];
        let mut rem = 0u128;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | u128::from(a[i]);
            quot[i] = (cur / d) as u64;
            rem = cur % d;
        }
        mag_trim(&mut quot);
        let mut r = vec![rem as u64];
        mag_trim(&mut r);
        return (quot, r);
    }
    let n = mag_bit_len(a);
    let mut quot: Vec<u64> = Vec::new();
    let mut rem: Vec<u64> = Vec::new();
    for i in (0..n).rev() {
        rem = mag_shl(&rem, 1);
        if mag_get_bit(a, i) {
            if rem.is_empty() {
                rem.push(1);
            } else {
                rem[0] |= 1;
            }
        }
        if mag_cmp(&rem, b) != Ordering::Less {
            rem = mag_sub(&rem, b);
            mag_set_bit(&mut quot, i);
        }
    }
    mag_trim(&mut quot);
    (quot, rem)
}

// ---------------------------------------------------------------------------
// BigInt
// ---------------------------------------------------------------------------

impl BigInt {
    /// The integer zero.
    ///
    /// ```
    /// use staub_numeric::BigInt;
    /// assert!(BigInt::zero().is_zero());
    /// ```
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            limbs: Vec::new(),
        }
    }

    /// The integer one.
    pub fn one() -> BigInt {
        BigInt::from(1)
    }

    fn from_mag(sign: Sign, mut limbs: Vec<u64>) -> BigInt {
        mag_trim(&mut limbs);
        if limbs.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign != Sign::Zero);
            BigInt { sign, limbs }
        }
    }

    /// Returns `true` if `self` is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if `self` is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Returns `true` if `self` is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Returns `true` if `self` is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// The sign of this integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value.
    ///
    /// ```
    /// use staub_numeric::BigInt;
    /// assert_eq!(BigInt::from(-5).abs(), BigInt::from(5));
    /// ```
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.sign == Sign::Negative {
                Sign::Positive
            } else {
                self.sign
            },
            limbs: self.limbs.clone(),
        }
    }

    /// Number of bits in the magnitude's binary representation; 0 for zero.
    ///
    /// ```
    /// use staub_numeric::BigInt;
    /// assert_eq!(BigInt::from(15).bit_len(), 4);
    /// assert_eq!(BigInt::from(16).bit_len(), 5);
    /// assert_eq!(BigInt::zero().bit_len(), 0);
    /// ```
    pub fn bit_len(&self) -> usize {
        mag_bit_len(&self.limbs)
    }

    /// Returns bit `i` of the magnitude (little-endian).
    pub fn bit(&self, i: usize) -> bool {
        mag_get_bit(&self.limbs, i)
    }

    /// `self` raised to the power `exp`.
    ///
    /// ```
    /// use staub_numeric::BigInt;
    /// assert_eq!(BigInt::from(2).pow(10), BigInt::from(1024));
    /// ```
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Truncated division and remainder, with C/SMT-LIB-agnostic semantics:
    /// quotient rounds toward zero, `self = q * other + r`, `|r| < |other|`,
    /// and `r` has the sign of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem_trunc(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        let (q_mag, r_mag) = mag_div_rem(&self.limbs, &other.limbs);
        let q_sign = if self.sign == other.sign || q_mag.is_empty() {
            Sign::Positive
        } else {
            Sign::Negative
        };
        (
            BigInt::from_mag(q_sign, q_mag),
            BigInt::from_mag(self.sign, r_mag),
        )
    }

    /// Euclidean division as used by SMT-LIB's `div`/`mod` for integers:
    /// the remainder is always in `[0, |other|)`.
    ///
    /// ```
    /// use staub_numeric::BigInt;
    /// let (q, r) = BigInt::from(-7).div_rem_euclid(&BigInt::from(2));
    /// assert_eq!(q, BigInt::from(-4));
    /// assert_eq!(r, BigInt::from(1));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem_euclid(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = self.div_rem_trunc(other);
        if r.is_negative() {
            if other.is_positive() {
                (&q - &BigInt::one(), &r + other)
            } else {
                (&q + &BigInt::one(), &r - other)
            }
        } else {
            (q, r)
        }
    }

    /// Greatest common divisor of the magnitudes (always non-negative).
    ///
    /// ```
    /// use staub_numeric::BigInt;
    /// assert_eq!(BigInt::from(12).gcd(&BigInt::from(-18)), BigInt::from(6));
    /// ```
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.div_rem_trunc(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => {
                if self.limbs.len() == 1 && self.limbs[0] <= i64::MAX as u64 {
                    Some(self.limbs[0] as i64)
                } else {
                    None
                }
            }
            Sign::Negative => {
                if self.limbs.len() == 1 && self.limbs[0] <= 1u64 << 63 {
                    Some((self.limbs[0] as i64).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Converts to `u64` if the value is in range.
    pub fn to_u64(&self) -> Option<u64> {
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive if self.limbs.len() == 1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Approximates the value as an `f64` (saturating to infinity).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            v = v * 1.8446744073709552e19 + limb as f64;
        }
        if self.sign == Sign::Negative {
            -v
        } else {
            v
        }
    }

    /// Shifts the value left by `bits` (multiplication by `2^bits`).
    pub fn shl_bits(&self, bits: usize) -> BigInt {
        BigInt::from_mag(self.sign, mag_shl(&self.limbs, bits))
    }

    /// Arithmetic shift right by `bits` toward negative infinity is *not*
    /// what this does: it shifts the magnitude (division by `2^bits`
    /// truncated toward zero).
    pub fn shr_bits(&self, bits: usize) -> BigInt {
        BigInt::from_mag(self.sign, mag_shr(&self.limbs, bits))
    }

    /// The number of trailing zero bits of the magnitude; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        if self.is_zero() {
            return None;
        }
        let mut count = 0usize;
        for &limb in &self.limbs {
            if limb == 0 {
                count += 64;
            } else {
                return Some(count + limb.trailing_zeros() as usize);
            }
        }
        unreachable!("nonzero BigInt had all-zero limbs")
    }
}

impl Default for BigInt {
    fn default() -> BigInt {
        BigInt::zero()
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let v = v as i128;
                match v.cmp(&0) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => {
                        let u = v as u128;
                        BigInt::from_mag(Sign::Positive, vec![u as u64, (u >> 64) as u64])
                    }
                    Ordering::Less => {
                        let u = v.unsigned_abs();
                        BigInt::from_mag(Sign::Negative, vec![u as u64, (u >> 64) as u64])
                    }
                }
            }
        }
    )*};
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let u = v as u128;
                if u == 0 {
                    BigInt::zero()
                } else {
                    BigInt::from_mag(Sign::Positive, vec![u as u64, (u >> 64) as u64])
                }
            }
        }
    )*};
}

impl_from_signed!(i8, i16, i32, i64, i128, isize);
impl_from_unsigned!(u8, u16, u32, u64, u128, usize);

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        let err = || ParseBigIntError {
            offending: s.to_string(),
        };
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Negative, rest),
            None => (Sign::Positive, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(err());
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10);
        for ch in digits.chars() {
            let d = ch.to_digit(10).ok_or_else(err)?;
            acc = &(&acc * &ten) + &BigInt::from(d);
        }
        if sign == Sign::Negative {
            acc = -acc;
        }
        Ok(acc)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut digits = Vec::new();
        let mut mag = self.limbs.clone();
        let ten = [10u64];
        while !mag.is_empty() {
            let (q, r) = mag_div_rem(&mag, &ten);
            digits.push(char::from(b'0' + r.first().copied().unwrap_or(0) as u8));
            mag = q;
        }
        if self.sign == Sign::Negative {
            f.write_str("-")?;
        }
        let s: String = digits.iter().rev().collect();
        f.write_str(&s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        match self.sign {
            Sign::Zero => Ordering::Equal,
            Sign::Positive => mag_cmp(&self.limbs, &other.limbs),
            Sign::Negative => mag_cmp(&other.limbs, &self.limbs),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            limbs: self.limbs,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_mag(a, mag_add(&self.limbs, &rhs.limbs)),
            (a, _) => match mag_cmp(&self.limbs, &rhs.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_mag(a, mag_sub(&self.limbs, &rhs.limbs)),
                Ordering::Less => BigInt::from_mag(a.flip(), mag_sub(&rhs.limbs, &self.limbs)),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_mag(sign, mag_mul(&self.limbs, &rhs.limbs))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    /// Truncating division (see [`BigInt::div_rem_trunc`]).
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem_trunc(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    /// Truncating remainder (see [`BigInt::div_rem_trunc`]).
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem_trunc(rhs).1
    }
}

macro_rules! impl_owned_binops {
    ($($trait:ident, $method:ident);*) => {$(
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    )*};
}

impl_owned_binops!(Add, add; Sub, sub; Mul, mul; Div, div; Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl Shl<usize> for &BigInt {
    type Output = BigInt;
    fn shl(self, bits: usize) -> BigInt {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigInt {
    type Output = BigInt;
    fn shr(self, bits: usize) -> BigInt {
        self.shr_bits(bits)
    }
}

impl std::iter::Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |acc, x| &acc + &x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert_eq!(bi(0), BigInt::zero());
        assert_eq!(&bi(5) - &bi(5), BigInt::zero());
        assert!((&bi(5) - &bi(5)).limbs.is_empty());
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(&bi(2) + &bi(3), bi(5));
        assert_eq!(&bi(-2) + &bi(3), bi(1));
        assert_eq!(&bi(2) + &bi(-3), bi(-1));
        assert_eq!(&bi(-2) + &bi(-3), bi(-5));
        assert_eq!(&bi(10) - &bi(3), bi(7));
        assert_eq!(&bi(3) - &bi(10), bi(-7));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(&bi(-4) * &bi(6), bi(-24));
        assert_eq!(&bi(-4) * &bi(-6), bi(24));
        assert_eq!(&bi(0) * &bi(-6), bi(0));
    }

    #[test]
    fn carries_across_limbs() {
        let max = BigInt::from(u64::MAX);
        let one = BigInt::one();
        let sum = &max + &one;
        assert_eq!(sum.bit_len(), 65);
        assert_eq!(&sum - &one, max);
    }

    #[test]
    fn mul_large() {
        let a: BigInt = "123456789123456789123456789".parse().unwrap();
        let b: BigInt = "987654321987654321".parse().unwrap();
        let p = &a * &b;
        assert_eq!(
            p.to_string(),
            "121932631356500531469135800347203169112635269"
        );
    }

    #[test]
    fn div_rem_trunc_signs() {
        for (a, b, q, r) in [
            (7, 2, 3, 1),
            (-7, 2, -3, -1),
            (7, -2, -3, 1),
            (-7, -2, 3, -1),
        ] {
            let (qq, rr) = bi(a).div_rem_trunc(&bi(b));
            assert_eq!((qq, rr), (bi(q), bi(r)), "case {a}/{b}");
        }
    }

    #[test]
    fn div_rem_euclid_nonnegative_remainder() {
        for a in -20i128..20 {
            for b in [-7i128, -3, 2, 5] {
                let (q, r) = bi(a).div_rem_euclid(&bi(b));
                assert!(!r.is_negative(), "remainder negative for {a} / {b}");
                assert!(r < bi(b.abs()));
                assert_eq!(&(&q * &bi(b)) + &r, bi(a), "identity for {a} / {b}");
            }
        }
    }

    #[test]
    fn division_large() {
        let a: BigInt = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
        let b: BigInt = "18446744073709551616".parse().unwrap(); // 2^64
        let (q, r) = a.div_rem_trunc(&b);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "0",
            "-1",
            "98765432109876543210",
            "-340282366920938463463374607431768211457",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
    }

    #[test]
    fn bit_len_and_bits() {
        assert_eq!(bi(0b1011).bit_len(), 4);
        assert!(bi(0b1011).bit(0));
        assert!(bi(0b1011).bit(1));
        assert!(!bi(0b1011).bit(2));
        assert!(bi(0b1011).bit(3));
        assert!(!bi(0b1011).bit(100));
    }

    #[test]
    fn shifts() {
        assert_eq!(bi(5).shl_bits(3), bi(40));
        assert_eq!(bi(40).shr_bits(3), bi(5));
        assert_eq!(bi(41).shr_bits(3), bi(5));
        let big = bi(1).shl_bits(200);
        assert_eq!(big.bit_len(), 201);
        assert_eq!(big.shr_bits(200), bi(1));
    }

    #[test]
    fn pow_and_gcd() {
        assert_eq!(bi(3).pow(0), bi(1));
        assert_eq!(bi(3).pow(5), bi(243));
        assert_eq!(bi(48).gcd(&bi(36)), bi(12));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
    }

    #[test]
    fn ordering() {
        assert!(bi(-10) < bi(-2));
        assert!(bi(-2) < bi(0));
        assert!(bi(0) < bi(7));
        assert!(bi(7) < bi(100));
        let big: BigInt = "99999999999999999999999".parse().unwrap();
        assert!(bi(1) < big);
        assert!(-big.clone() < bi(1));
    }

    #[test]
    fn to_primitive_conversions() {
        assert_eq!(bi(-5).to_i64(), Some(-5));
        assert_eq!(bi(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(bi(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(bi(5).to_u64(), Some(5));
        assert_eq!(bi(-5).to_u64(), None);
    }

    #[test]
    fn to_f64_approximation() {
        assert_eq!(bi(1 << 40).to_f64(), (1u64 << 40) as f64);
        assert!((bi(-3).to_f64() + 3.0).abs() < 1e-12);
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(bi(0).trailing_zeros(), None);
        assert_eq!(bi(1).trailing_zeros(), Some(0));
        assert_eq!(bi(96).trailing_zeros(), Some(5));
        assert_eq!(bi(1).shl_bits(130).trailing_zeros(), Some(130));
    }
}
