//! SLOT-style simplification of bounded SMT constraints.
//!
//! The paper's RQ2 chains STAUB with SLOT (Mikek & Zhang, ESEC/FSE 2023),
//! which lowers bitvector/floating-point constraints into LLVM IR, runs
//! compiler optimizations, and lifts the result back. This crate applies the
//! same *families* of rewrites directly on the term graph:
//!
//! * [`passes::ConstFold`] — constant folding (LLVM's constant folder),
//! * [`passes::Algebraic`] — algebraic identities (instcombine),
//! * [`passes::StrengthReduction`] — multiplication by powers of two into
//!   shifts (instcombine strength reduction),
//! * [`passes::BoolSimplify`] — boolean simplification (simplifycfg's CFG
//!   cleanups, expressed over formulas),
//!
//! plus assertion-level cleanup (deduplication, `true` removal, `false`
//! collapse — dead code elimination at the constraint level). Hash-consing
//! in [`staub_smtlib::TermStore`] provides global value numbering (CSE) for
//! free.
//!
//! All rewrites are *equivalences* over the bounded theories — including
//! IEEE edge cases (NaN, signed zeros) — so SLOT preserves satisfiability
//! exactly, unlike STAUB's deliberate underapproximation.
//!
//! # Examples
//!
//! ```
//! use staub_slot::Slot;
//! use staub_smtlib::Script;
//!
//! let mut script = Script::parse("\
//! (declare-fun x () (_ BitVec 8))
//! (assert (= (bvadd x (_ bv0 8)) (bvmul (_ bv2 8) (_ bv3 8))))")?;
//! let report = Slot::standard().optimize(&mut script);
//! assert!(report.rewrites > 0);
//! assert_eq!(script.to_string().matches("bvadd").count(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod passes;

use std::collections::HashMap;
use std::fmt;

use staub_smtlib::{Op, Script, TermId, TermStore};

use passes::Pass;

/// Statistics from one optimization run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotReport {
    /// Total node rewrites applied.
    pub rewrites: usize,
    /// Rewrites per pass, in pass order.
    pub per_pass: Vec<(String, usize)>,
    /// Fixpoint iterations executed.
    pub iterations: usize,
    /// Assertions removed by assertion-level cleanup.
    pub assertions_removed: usize,
}

impl fmt::Display for SlotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rewrites in {} iterations ({} assertions removed)",
            self.rewrites, self.iterations, self.assertions_removed
        )
    }
}

/// The SLOT pass pipeline.
pub struct Slot {
    passes: Vec<Box<dyn Pass>>,
    max_iterations: usize,
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("Slot").field("passes", &names).finish()
    }
}

impl Default for Slot {
    fn default() -> Slot {
        Slot::standard()
    }
}

impl Slot {
    /// An empty pipeline (add passes with [`Slot::with_pass`]).
    pub fn new() -> Slot {
        Slot {
            passes: Vec::new(),
            max_iterations: 8,
        }
    }

    /// The standard pipeline: constant folding, boolean simplification,
    /// algebraic identities, strength reduction — iterated to fixpoint.
    pub fn standard() -> Slot {
        Slot::new()
            .with_pass(passes::ConstFold)
            .with_pass(passes::BoolSimplify)
            .with_pass(passes::Algebraic)
            .with_pass(passes::StrengthReduction)
    }

    /// Appends a pass to the pipeline.
    #[must_use]
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> Slot {
        self.passes.push(Box::new(pass));
        self
    }

    /// Caps the number of fixpoint iterations.
    #[must_use]
    pub fn with_max_iterations(mut self, n: usize) -> Slot {
        self.max_iterations = n.max(1);
        self
    }

    /// Names of the configured passes.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Optimizes a script in place.
    pub fn optimize(&self, script: &mut Script) -> SlotReport {
        let mut report = SlotReport {
            per_pass: self
                .passes
                .iter()
                .map(|p| (p.name().to_string(), 0))
                .collect(),
            ..Default::default()
        };
        let mut assertions: Vec<TermId> = script.assertions().to_vec();
        for _ in 0..self.max_iterations {
            report.iterations += 1;
            let mut changed = false;
            for (pi, pass) in self.passes.iter().enumerate() {
                let mut memo: HashMap<TermId, TermId> = HashMap::new();
                let mut count = 0usize;
                for a in &mut assertions {
                    let next = rewrite_bottom_up(
                        script.store_mut(),
                        *a,
                        pass.as_ref(),
                        &mut memo,
                        &mut count,
                    );
                    if next != *a {
                        changed = true;
                        *a = next;
                    }
                }
                report.per_pass[pi].1 += count;
                report.rewrites += count;
            }
            if !changed {
                break;
            }
        }
        // Assertion-level cleanup: flatten ands, drop trues, dedupe, and
        // collapse everything when some assertion is literally false.
        let before = assertions.len();
        let cleaned = cleanup_assertions(script.store_mut(), &assertions);
        report.assertions_removed = before.saturating_sub(cleaned.len());
        script.set_assertions(cleaned);
        report
    }
}

/// Bottom-up memoized rewriting: children first, then the pass's local rule
/// repeatedly until it no longer applies.
fn rewrite_bottom_up(
    store: &mut TermStore,
    id: TermId,
    pass: &dyn Pass,
    memo: &mut HashMap<TermId, TermId>,
    count: &mut usize,
) -> TermId {
    if let Some(&t) = memo.get(&id) {
        return t;
    }
    let term = store.term(id).clone();
    let mut new_args = Vec::with_capacity(term.args().len());
    let mut args_changed = false;
    for &a in term.args() {
        let na = rewrite_bottom_up(store, a, pass, memo, count);
        args_changed |= na != a;
        new_args.push(na);
    }
    let mut current = if args_changed {
        store
            .app(term.op().clone(), &new_args)
            .expect("rewritten children preserve sorts")
    } else {
        id
    };
    // Apply the local rule to fixpoint at this node.
    loop {
        let t = store.term(current).clone();
        match pass.simplify(store, t.op(), t.args()) {
            Some(next) if next != current => {
                *count += 1;
                current = next;
            }
            _ => break,
        }
    }
    memo.insert(id, current);
    current
}

fn cleanup_assertions(store: &mut TermStore, assertions: &[TermId]) -> Vec<TermId> {
    let mut out: Vec<TermId> = Vec::new();
    let mut queue: Vec<TermId> = assertions.to_vec();
    queue.reverse();
    let mut any_false = false;
    while let Some(a) = queue.pop() {
        let term = store.term(a).clone();
        match term.op() {
            Op::True => continue,
            Op::False => {
                any_false = true;
                break;
            }
            Op::And => {
                // Flatten: assert each conjunct separately (helps solvers
                // and later passes).
                for &c in term.args().iter().rev() {
                    queue.push(c);
                }
            }
            _ => {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
    }
    if any_false {
        return vec![store.bool(false)];
    }
    if out.is_empty() {
        // Preserve at least one assertion so satisfiability is explicit.
        return vec![store.bool(true)];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimize(src: &str) -> (Script, SlotReport) {
        let mut script = Script::parse(src).unwrap();
        let report = Slot::standard().optimize(&mut script);
        (script, report)
    }

    #[test]
    fn folds_ground_arithmetic() {
        let (script, report) = optimize(
            "(declare-fun x () (_ BitVec 8))
             (assert (= x (bvadd (_ bv3 8) (_ bv4 8))))",
        );
        assert!(report.rewrites > 0);
        assert!(script.to_string().contains("(_ bv7 8)"));
        assert!(!script.to_string().contains("bvadd"));
    }

    #[test]
    fn removes_true_assertions() {
        let (script, report) = optimize(
            "(declare-fun x () (_ BitVec 8))
             (assert (bvsle x x))
             (assert (bvult x (_ bv200 8)))",
        );
        assert_eq!(script.assertions().len(), 1);
        assert!(report.assertions_removed >= 1);
    }

    #[test]
    fn collapses_on_false() {
        let (script, _) = optimize(
            "(declare-fun x () (_ BitVec 8))
             (assert (bvslt x x))
             (assert (bvult x (_ bv200 8)))",
        );
        assert_eq!(script.assertions().len(), 1);
        let t = script.store().term(script.assertions()[0]);
        assert_eq!(*t.op(), Op::False);
    }

    #[test]
    fn flattens_conjunctions() {
        let (script, _) = optimize(
            "(declare-fun x () (_ BitVec 8))
             (assert (and (bvult x (_ bv10 8)) (bvult (_ bv1 8) x)))",
        );
        assert_eq!(script.assertions().len(), 2);
    }

    #[test]
    fn deduplicates_assertions() {
        let (script, _) = optimize(
            "(declare-fun x () (_ BitVec 8))
             (assert (bvult x (_ bv10 8)))
             (assert (bvult x (_ bv10 8)))",
        );
        assert_eq!(script.assertions().len(), 1);
    }

    #[test]
    fn pipeline_reaches_fixpoint() {
        let (_, report) = optimize(
            "(declare-fun x () (_ BitVec 8))
             (assert (= (bvmul (bvadd x (_ bv0 8)) (_ bv1 8)) x))",
        );
        assert!(report.iterations < 8, "terminates before the cap");
        // bvadd x 0 → x; bvmul x 1 → x; = x x → true; assertion dropped.
        assert!(report.rewrites >= 3);
    }

    #[test]
    fn preserves_satisfiability() {
        use staub_solver::{Solver, SolverProfile};
        let sources = [
            "(declare-fun x () (_ BitVec 8))(assert (= (bvmul x (_ bv1 8)) (_ bv7 8)))",
            "(declare-fun x () (_ BitVec 8))(assert (bvult (bvadd x (_ bv0 8)) x))",
            "(declare-fun p () Bool)(assert (and p (not p)))",
            "(declare-fun x () (_ BitVec 4))(assert (= (bvmul x (_ bv2 4)) (_ bv6 4)))",
        ];
        for src in sources {
            let script = Script::parse(src).unwrap();
            let mut optimized = script.clone();
            let _ = Slot::standard().optimize(&mut optimized);
            let solver = Solver::new(SolverProfile::Zed);
            let before = solver.solve(&script).result;
            let after = solver.solve(&optimized).result;
            assert_eq!(
                before.is_sat(),
                after.is_sat(),
                "sat status changed for {src}"
            );
            assert_eq!(
                before.is_unsat(),
                after.is_unsat(),
                "unsat status changed for {src}"
            );
        }
    }

    #[test]
    fn custom_pipeline() {
        let slot = Slot::new().with_pass(passes::ConstFold);
        assert_eq!(slot.pass_names(), vec!["const-fold"]);
        let mut script = Script::parse(
            "(declare-fun x () (_ BitVec 8))(assert (= x (bvadd (_ bv1 8) (_ bv1 8))))",
        )
        .unwrap();
        let report = slot.optimize(&mut script);
        assert_eq!(report.per_pass.len(), 1);
        assert!(report.rewrites > 0);
    }

    #[test]
    fn shrinks_staub_output() {
        // The composition the paper's RQ2 measures: STAUB then SLOT.
        use staub_core::Staub;
        let script = Script::parse(
            "(declare-fun x () Int)
             (assert (= (* x 1 x) (+ 49 0)))",
        )
        .unwrap();
        let transformed = Staub::default().transform(&script).unwrap();
        let mut bounded = transformed.script.clone();
        let before = bounded
            .store()
            .dag_size(bounded.assertions()[bounded.assertions().len() - 1]);
        let report = Slot::standard().optimize(&mut bounded);
        let after = bounded
            .store()
            .dag_size(bounded.assertions()[bounded.assertions().len() - 1]);
        assert!(report.rewrites > 0);
        assert!(after <= before);
    }
}
