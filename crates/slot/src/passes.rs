//! The individual rewrite passes.

use staub_numeric::{BigInt, BitVecValue};
use staub_smtlib::{evaluate, Model, Op, Sort, TermId, TermStore, Value};

/// A local rewrite rule applied bottom-up to fixpoint by the driver.
///
/// `simplify` inspects one node (already-rewritten children) and returns a
/// replacement term, or `None` when no rule applies. Every rule must be an
/// *equivalence* over the bounded semantics, including IEEE specials.
pub trait Pass {
    /// Short kebab-case name (for reports).
    fn name(&self) -> &'static str;

    /// Attempts one local rewrite.
    fn simplify(&self, store: &mut TermStore, op: &Op, args: &[TermId]) -> Option<TermId>;
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Folds ground subterms by exact evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn simplify(&self, store: &mut TermStore, op: &Op, args: &[TermId]) -> Option<TermId> {
        if op.is_leaf() || args.is_empty() {
            return None;
        }
        // All children must be literal constants.
        if !args
            .iter()
            .all(|&a| store.term(a).op().is_leaf() && !matches!(store.term(a).op(), Op::Var(_)))
        {
            return None;
        }
        let root = store.app(op.clone(), args).ok()?;
        let empty = Model::new();
        let value = evaluate(store, root, &empty).ok()?;
        Some(match value {
            Value::Bool(b) => store.bool(b),
            Value::Int(v) => store.int(v),
            Value::Real(v) => store.real(v),
            Value::BitVec(v) => store.bv(v),
            Value::Float(v) => store.fp(v),
            Value::Rm(v) => store.rm(v),
        })
    }
}

// ---------------------------------------------------------------------------
// Boolean simplification
// ---------------------------------------------------------------------------

/// Boolean-structure cleanups: unit/zero elements, double negation,
/// degenerate `ite`, reflexive comparisons.
#[derive(Debug, Clone, Copy)]
pub struct BoolSimplify;

impl Pass for BoolSimplify {
    fn name(&self) -> &'static str {
        "bool-simplify"
    }

    fn simplify(&self, store: &mut TermStore, op: &Op, args: &[TermId]) -> Option<TermId> {
        let is_true = |s: &TermStore, t: TermId| *s.term(t).op() == Op::True;
        let is_false = |s: &TermStore, t: TermId| *s.term(t).op() == Op::False;
        match op {
            Op::Not => {
                let inner = store.term(args[0]).clone();
                match inner.op() {
                    Op::Not => Some(inner.args()[0]),
                    Op::True => Some(store.bool(false)),
                    Op::False => Some(store.bool(true)),
                    _ => None,
                }
            }
            Op::And => {
                if args.iter().any(|&a| is_false(store, a)) {
                    return Some(store.bool(false));
                }
                // Complementary literals: x ∧ ¬x.
                for &a in args {
                    let t = store.term(a).clone();
                    if *t.op() == Op::Not && args.contains(&t.args()[0]) {
                        return Some(store.bool(false));
                    }
                }
                let mut kept: Vec<TermId> = Vec::with_capacity(args.len());
                for &a in args {
                    if !is_true(store, a) && !kept.contains(&a) {
                        kept.push(a);
                    }
                }
                match kept.len() {
                    0 => Some(store.bool(true)),
                    1 => Some(kept[0]),
                    n if n < args.len() => Some(store.and(&kept).expect("bool args")),
                    _ => None,
                }
            }
            Op::Or => {
                if args.iter().any(|&a| is_true(store, a)) {
                    return Some(store.bool(true));
                }
                for &a in args {
                    let t = store.term(a).clone();
                    if *t.op() == Op::Not && args.contains(&t.args()[0]) {
                        return Some(store.bool(true));
                    }
                }
                let mut kept: Vec<TermId> = Vec::with_capacity(args.len());
                for &a in args {
                    if !is_false(store, a) && !kept.contains(&a) {
                        kept.push(a);
                    }
                }
                match kept.len() {
                    0 => Some(store.bool(false)),
                    1 => Some(kept[0]),
                    n if n < args.len() => Some(store.or(&kept).expect("bool args")),
                    _ => None,
                }
            }
            Op::Implies => {
                if args.len() == 2 {
                    if is_true(store, args[0]) {
                        return Some(args[1]);
                    }
                    if is_false(store, args[0]) || is_true(store, args[1]) {
                        return Some(store.bool(true));
                    }
                    if is_false(store, args[1]) {
                        return store.not(args[0]).ok();
                    }
                }
                None
            }
            Op::Ite => {
                if is_true(store, args[0]) {
                    return Some(args[1]);
                }
                if is_false(store, args[0]) {
                    return Some(args[2]);
                }
                if args[1] == args[2] {
                    return Some(args[1]);
                }
                None
            }
            Op::Eq => {
                // Reflexive equality is true for every sort except floats
                // (structurally identical floats ARE equal under `=`; only
                // fp.eq differs on NaN — `=` is object identity, so x = x
                // holds even for NaN).
                if args.len() == 2 && args[0] == args[1] {
                    return Some(store.bool(true));
                }
                None
            }
            Op::Xor => {
                if args.len() == 2 {
                    if args[0] == args[1] {
                        return Some(store.bool(false));
                    }
                    if is_false(store, args[0]) {
                        return Some(args[1]);
                    }
                    if is_false(store, args[1]) {
                        return Some(args[0]);
                    }
                }
                None
            }
            // Reflexive comparisons.
            Op::BvSle | Op::BvSge | Op::BvUle if args[0] == args[1] => Some(store.bool(true)),
            Op::BvSlt | Op::BvSgt | Op::BvUlt if args[0] == args[1] => Some(store.bool(false)),
            Op::FpLt | Op::FpGt if args.len() == 2 && args[0] == args[1] => {
                // x < x is false even for NaN (unordered).
                Some(store.bool(false))
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Algebraic identities
// ---------------------------------------------------------------------------

/// Word-level algebraic identities over bitvectors and (NaN-safe) floats.
#[derive(Debug, Clone, Copy)]
pub struct Algebraic;

fn bv_const_of(store: &TermStore, t: TermId) -> Option<BitVecValue> {
    match store.term(t).op() {
        Op::BvConst(v) => Some(v.clone()),
        _ => None,
    }
}

impl Pass for Algebraic {
    fn name(&self) -> &'static str {
        "algebraic"
    }

    fn simplify(&self, store: &mut TermStore, op: &Op, args: &[TermId]) -> Option<TermId> {
        let zero_of = |s: &TermStore, t: TermId| -> Option<bool> {
            bv_const_of(s, t).map(|v| v.to_unsigned().is_zero())
        };
        let one_of = |s: &TermStore, t: TermId| -> Option<bool> {
            bv_const_of(s, t).map(|v| v.to_unsigned() == BigInt::one())
        };
        match op {
            Op::BvAdd => {
                if zero_of(store, args[1]) == Some(true) {
                    return Some(args[0]);
                }
                if zero_of(store, args[0]) == Some(true) {
                    return Some(args[1]);
                }
                None
            }
            Op::BvSub => {
                if zero_of(store, args[1]) == Some(true) {
                    return Some(args[0]);
                }
                if args[0] == args[1] {
                    let w = bv_width(store, args[0]);
                    return Some(store.bv(BitVecValue::zero(w)));
                }
                None
            }
            Op::BvMul => {
                for (c, other) in [(args[0], args[1]), (args[1], args[0])] {
                    if zero_of(store, c) == Some(true) {
                        let w = bv_width(store, c);
                        return Some(store.bv(BitVecValue::zero(w)));
                    }
                    if one_of(store, c) == Some(true) {
                        return Some(other);
                    }
                }
                None
            }
            Op::BvNeg => {
                let inner = store.term(args[0]).clone();
                if *inner.op() == Op::BvNeg {
                    return Some(inner.args()[0]);
                }
                None
            }
            Op::BvNot => {
                let inner = store.term(args[0]).clone();
                if *inner.op() == Op::BvNot {
                    return Some(inner.args()[0]);
                }
                None
            }
            Op::BvXor => {
                if args[0] == args[1] {
                    let w = bv_width(store, args[0]);
                    return Some(store.bv(BitVecValue::zero(w)));
                }
                if zero_of(store, args[1]) == Some(true) {
                    return Some(args[0]);
                }
                if zero_of(store, args[0]) == Some(true) {
                    return Some(args[1]);
                }
                None
            }
            Op::BvAnd | Op::BvOr => {
                if args[0] == args[1] {
                    return Some(args[0]);
                }
                let annihilates = *op == Op::BvAnd; // x & 0 = 0; x | 0 = x
                for (c, other) in [(args[0], args[1]), (args[1], args[0])] {
                    if zero_of(store, c) == Some(true) {
                        return Some(if annihilates { c } else { other });
                    }
                }
                None
            }
            Op::BvShl | Op::BvLshr | Op::BvAshr => {
                if zero_of(store, args[1]) == Some(true) {
                    return Some(args[0]);
                }
                None
            }
            Op::FpNeg => {
                let inner = store.term(args[0]).clone();
                if *inner.op() == Op::FpNeg {
                    return Some(inner.args()[0]);
                }
                None
            }
            Op::FpAbs => {
                let inner = store.term(args[0]).clone();
                match inner.op() {
                    // |−x| = |x| and ||x|| = |x| hold for all floats.
                    Op::FpNeg => store.app(Op::FpAbs, &[inner.args()[0]]).ok(),
                    Op::FpAbs => Some(args[0]),
                    _ => None,
                }
            }
            Op::FpMul | Op::FpDiv => {
                // x * 1.0 and x / 1.0 are exact for every input (including
                // NaN, infinities, and signed zeros).
                let one = fp_is_one(store, args[2]);
                if one && *op == Op::FpMul {
                    return Some(args[1]);
                }
                if one && *op == Op::FpDiv {
                    return Some(args[1]);
                }
                if *op == Op::FpMul && fp_is_one(store, args[1]) {
                    return Some(args[2]);
                }
                None
            }
            _ => None,
        }
    }
}

fn bv_width(store: &TermStore, t: TermId) -> u32 {
    match store.sort(t) {
        Sort::BitVec(w) => w,
        s => unreachable!("expected bitvector, got {s}"),
    }
}

fn fp_is_one(store: &TermStore, t: TermId) -> bool {
    match store.term(t).op() {
        Op::FpConst(v) => v
            .to_rational()
            .is_some_and(|r| r == staub_numeric::BigRational::one()),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Strength reduction
// ---------------------------------------------------------------------------

/// Multiplication/division by powers of two becomes shifting.
#[derive(Debug, Clone, Copy)]
pub struct StrengthReduction;

impl Pass for StrengthReduction {
    fn name(&self) -> &'static str {
        "strength-reduction"
    }

    fn simplify(&self, store: &mut TermStore, op: &Op, args: &[TermId]) -> Option<TermId> {
        match op {
            Op::BvMul => {
                for (c, other) in [(args[0], args[1]), (args[1], args[0])] {
                    if let Some(v) = bv_const_of(store, c) {
                        let u = v.to_unsigned();
                        if let Some(k) = exact_log2(&u) {
                            if k > 0 {
                                let w = v.width();
                                let amount = store.bv(BitVecValue::new(BigInt::from(k), w));
                                return store.app(Op::BvShl, &[other, amount]).ok();
                            }
                        }
                    }
                }
                None
            }
            Op::BvUdiv => {
                if let Some(v) = bv_const_of(store, args[1]) {
                    let u = v.to_unsigned();
                    if let Some(k) = exact_log2(&u) {
                        if k > 0 {
                            let w = v.width();
                            let amount = store.bv(BitVecValue::new(BigInt::from(k), w));
                            return store.app(Op::BvLshr, &[args[0], amount]).ok();
                        }
                    }
                }
                None
            }
            _ => None,
        }
    }
}

/// `Some(k)` iff `v == 2^k` with `v > 0`.
fn exact_log2(v: &BigInt) -> Option<i64> {
    if v.is_zero() || v.is_negative() {
        return None;
    }
    let tz = v.trailing_zeros()?;
    (v.bit_len() == tz + 1).then_some(tz as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use staub_smtlib::Script;

    fn simplify_with(pass: &dyn Pass, src: &str) -> String {
        let mut script = Script::parse(src).unwrap();
        let assertions: Vec<TermId> = script.assertions().to_vec();
        let mut rewritten = Vec::new();
        for a in assertions {
            let term = script.store().term(a).clone();
            let next = pass
                .simplify(script.store_mut(), term.op(), term.args())
                .unwrap_or(a);
            rewritten.push(next);
        }
        script.set_assertions(rewritten);
        script.to_string()
    }

    #[test]
    fn const_fold_bv() {
        let out = simplify_with(&ConstFold, "(assert (bvult (_ bv3 8) (_ bv5 8)))");
        assert!(out.contains("(assert true)"), "{out}");
    }

    #[test]
    fn const_fold_skips_div_by_zero_int() {
        // Integer division by zero must not fold (uninterpreted).
        let mut script = Script::parse("(declare-fun x () Int)(assert (= x (div 4 0)))").unwrap();
        let a = script.assertions()[0];
        let eq = script.store().term(a).clone();
        let div = eq.args()[1];
        let div_term = script.store().term(div).clone();
        assert_eq!(
            ConstFold.simplify(script.store_mut(), div_term.op(), div_term.args()),
            None
        );
    }

    #[test]
    fn bool_rules() {
        let out = simplify_with(
            &BoolSimplify,
            "(declare-fun p () Bool)(assert (and p true p))",
        );
        assert!(out.contains("(assert p)"), "{out}");
        let out2 = simplify_with(
            &BoolSimplify,
            "(declare-fun p () Bool)(assert (or p (not p)))",
        );
        assert!(out2.contains("(assert true)"), "{out2}");
        let out3 = simplify_with(
            &BoolSimplify,
            "(declare-fun p () Bool)(assert (not (not p)))",
        );
        assert!(out3.contains("(assert p)"), "{out3}");
        let out4 = simplify_with(
            &BoolSimplify,
            "(declare-fun p () Bool)(assert (=> false p))",
        );
        assert!(out4.contains("(assert true)"), "{out4}");
    }

    #[test]
    fn algebraic_bv_rules() {
        let cases = [
            ("(assert (= x (bvadd x (_ bv0 8))))", "(= x x)"),
            (
                "(assert (= (bvsub x x) (_ bv0 8)))",
                "(= (_ bv0 8) (_ bv0 8))",
            ),
            ("(assert (= x (bvmul (_ bv1 8) x)))", "(= x x)"),
            ("(assert (= x (bvneg (bvneg x))))", "(= x x)"),
            ("(assert (= x (bvxor x (_ bv0 8))))", "(= x x)"),
        ];
        for (src, _expect) in cases {
            let full = format!("(declare-fun x () (_ BitVec 8)){src}");
            let mut script = Script::parse(&full).unwrap();
            let a = script.assertions()[0];
            let eq = script.store().term(a).clone();
            // Simplify the inner application (args of =).
            let inner_changed = eq.args().iter().any(|&arg| {
                let t = script.store().term(arg).clone();
                Algebraic
                    .simplify(script.store_mut(), t.op(), t.args())
                    .is_some()
            });
            assert!(inner_changed, "no rule fired for {src}");
        }
    }

    #[test]
    fn fp_identities_are_nan_safe() {
        // fp.mul RNE x 1.0 → x must hold for NaN: verified by construction
        // (multiplication by one is exact); here we just check the rule
        // fires.
        let src = "(declare-fun f () (_ FloatingPoint 8 24))
                   (assert (fp.eq (fp.mul RNE f (fp #b0 #b01111111 #b00000000000000000000000)) f))";
        let mut script = Script::parse(src).unwrap();
        let a = script.assertions()[0];
        let eq = script.store().term(a).clone();
        let mul = eq.args()[0];
        let mul_term = script.store().term(mul).clone();
        let out = Algebraic.simplify(script.store_mut(), mul_term.op(), mul_term.args());
        assert!(out.is_some(), "x * 1.0 rule fired");
    }

    #[test]
    fn strength_reduction_mul_to_shift() {
        let src = "(declare-fun x () (_ BitVec 8))(assert (= (bvmul x (_ bv8 8)) (_ bv0 8)))";
        let mut script = Script::parse(src).unwrap();
        let a = script.assertions()[0];
        let eq = script.store().term(a).clone();
        let mul = eq.args()[0];
        let mul_term = script.store().term(mul).clone();
        let out = StrengthReduction
            .simplify(script.store_mut(), mul_term.op(), mul_term.args())
            .expect("rule fires");
        let new_term = script.store().term(out);
        assert_eq!(*new_term.op(), Op::BvShl);
    }

    #[test]
    fn strength_reduction_skips_non_powers() {
        let src = "(declare-fun x () (_ BitVec 8))(assert (= (bvmul x (_ bv6 8)) (_ bv0 8)))";
        let mut script = Script::parse(src).unwrap();
        let a = script.assertions()[0];
        let eq = script.store().term(a).clone();
        let mul = eq.args()[0];
        let mul_term = script.store().term(mul).clone();
        assert!(StrengthReduction
            .simplify(script.store_mut(), mul_term.op(), mul_term.args())
            .is_none());
    }

    #[test]
    fn exact_log2_cases() {
        assert_eq!(exact_log2(&BigInt::from(1)), Some(0));
        assert_eq!(exact_log2(&BigInt::from(2)), Some(1));
        assert_eq!(exact_log2(&BigInt::from(64)), Some(6));
        assert_eq!(exact_log2(&BigInt::from(6)), None);
        assert_eq!(exact_log2(&BigInt::from(0)), None);
        assert_eq!(exact_log2(&BigInt::from(-4)), None);
    }
}
