//! Pass 1 (`L0xx`): re-derive every cached sort from the operator typing
//! rules, trusting nothing the store producer wrote.
//!
//! The [`staub_smtlib::TermStore`] caches a sort per interned term so the
//! rest of the pipeline can sort-query in O(1). This pass recomputes each
//! term's sort from [`staub_smtlib::Op::result_sort`] over the *cached*
//! argument sorts and flags any disagreement, plus any violation of the
//! store's bottom-up interning order (an argument id at or after its
//! application would make the supposed DAG cyclic).

use staub_smtlib::{print_term, Op, Sort, TermStore};

use crate::report::{LintCode, LintReport};

/// Re-derives every term's sort and checks interning order.
pub fn resort(store: &TermStore) -> LintReport {
    let mut report = LintReport::new();
    for id in store.ids() {
        let term = store.term(id);
        // Interning is bottom-up, so arguments must have strictly smaller
        // ids than the application using them.
        if term.args().iter().any(|a| a.index() >= id.index()) {
            report.error(
                LintCode::AcyclicityViolation,
                format!(
                    "term #{} references an argument interned at or after itself",
                    id.index()
                ),
                // Printing a cyclic term would not terminate.
                None,
            );
            continue;
        }
        let arg_sorts: Vec<Sort> = term.args().iter().map(|&a| store.sort(a)).collect();
        let var_sort = match term.op() {
            Op::Var(sym) => Some(store.symbol_sort(*sym)),
            _ => None,
        };
        match term.op().result_sort(&arg_sorts, var_sort) {
            Ok(derived) if derived == term.sort() => {}
            Ok(derived) => report.error(
                LintCode::SortMismatch,
                format!(
                    "cached sort {} disagrees with derived sort {derived}",
                    term.sort()
                ),
                Some(print_term(store, id)),
            ),
            Err(e) => report.error(
                LintCode::SortUnderivable,
                format!("typing rules reject the application: {e}"),
                Some(print_term(store, id)),
            ),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> (TermStore, staub_smtlib::TermId, staub_smtlib::TermId) {
        let mut s = TermStore::new();
        let x = s.declare("x", Sort::Int).unwrap();
        let xv = s.var(x);
        let two = s.int_i64(2);
        let sum = s.add(&[xv, two]).unwrap();
        let ten = s.int_i64(10);
        let cmp = s.lt(sum, ten).unwrap();
        (s, two, cmp)
    }

    #[test]
    fn well_formed_store_is_clean() {
        let (s, _, _) = sample_store();
        let report = resort(&s);
        assert!(report.is_clean(), "{report}");
        assert!(report.findings.is_empty());
    }

    #[test]
    fn corrupted_sort_fires_l001() {
        let (mut s, two, _) = sample_store();
        s.corrupt_sort_for_test(two, Sort::Real);
        let report = resort(&s);
        assert!(report.has(LintCode::SortMismatch), "{report}");
        // The corruption also makes the parent `(+ x 2)` ill-sorted.
        assert!(report.has(LintCode::SortUnderivable), "{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn corrupted_op_fires_l002() {
        let (mut s, _, cmp) = sample_store();
        // `<` over Int arguments becomes `and` over Int arguments: underivable.
        s.corrupt_op_for_test(cmp, Op::And);
        let report = resort(&s);
        assert!(report.has(LintCode::SortUnderivable), "{report}");
    }
}
