//! Pass 6 (`L5xx`): certify difference-logic negative-cycle certificates.
//!
//! `staub-core`'s difference-logic lane decides conjunctions of atoms
//! `x - y ▷◁ c` with an incremental STN engine and, on `unsat`, extracts a
//! negative cycle as its explanation. That `unsat` is *trusted* — no
//! bounded fallback re-checks it — so this pass re-validates the claim
//! from the original script and the cycle alone, sharing no code with the
//! detector or the engine:
//!
//! * `L501` — the original script is not a difference-logic conjunction
//!   under this pass's own re-derivation.
//! * `L502` — a cycle edge is not entailed by any asserted atom over the
//!   same variable pair.
//! * `L503` — the cycle does not chain: some edge's positive endpoint is
//!   not the next edge's negative endpoint (cyclically), or the cycle is
//!   empty.
//! * `L504` — the cycle's bounds do not sum below zero (nor to exactly
//!   zero with a strict edge): no contradiction follows.
//!
//! Soundness argument the pass re-checks: summing `x_i - y_i ≤ b_i` around
//! a chained cycle telescopes the left side to `0`, so `0 ≤ Σ b_i`; a
//! negative sum (or a zero sum with one strict inequality) is absurd,
//! hence the conjunction is unsatisfiable. Entailment (`L502`) pins each
//! summed edge to an atom the script actually asserts.

use std::collections::BTreeMap;

use staub_numeric::BigRational;
use staub_smtlib::{Op, Script, Sort, TermId, TermStore};

use crate::report::{LintCode, LintReport};

/// One edge of a claimed negative cycle, flattened to primitives (variable
/// *names*, not ids) so this crate never depends on `staub-core` types:
/// `x - y ≤ bound` (`<` when `strict`), `None` endpoints meaning the zero
/// origin.
#[derive(Debug, Clone)]
pub struct DlCycleEdge {
    /// Positive endpoint (`None` = zero origin).
    pub x: Option<String>,
    /// Negative endpoint (`None` = zero origin).
    pub y: Option<String>,
    /// Right-hand side of `x - y ≤ bound`.
    pub bound: BigRational,
    /// `true` for `<`, `false` for `≤`.
    pub strict: bool,
}

/// A difference-logic unsat claim: the original script and the negative
/// cycle offered as its refutation.
#[derive(Debug, Clone)]
pub struct DlClaim<'a> {
    /// The original (unbounded) script the verdict is claimed for.
    pub original: &'a Script,
    /// The claimed negative cycle, in chain order (each edge's `x` is the
    /// next edge's `y`, wrapping around).
    pub cycle: &'a [DlCycleEdge],
}

/// An atom this pass re-derived from the script, in the same normal form
/// as [`DlCycleEdge`].
type Atom = (Option<String>, Option<String>, BigRational, bool);

/// A linear polynomial over variable *names*: coefficient map (zeroes
/// pruned) plus constant.
#[derive(Debug, Clone)]
struct Poly {
    coeffs: BTreeMap<String, BigRational>,
    constant: BigRational,
}

impl Poly {
    fn constant(c: BigRational) -> Poly {
        Poly {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    fn add_scaled(&mut self, other: &Poly, k: &BigRational) {
        for (name, c) in &other.coeffs {
            let entry = self
                .coeffs
                .entry(name.clone())
                .or_insert_with(BigRational::zero);
            *entry = &*entry + &(c * k);
            if entry.is_zero() {
                self.coeffs.remove(name);
            }
        }
        self.constant = &self.constant + &(&other.constant * k);
    }
}

/// Evaluates a numeric term to a linear polynomial, `None` when nonlinear
/// (or not numeric at all).
fn poly(store: &TermStore, id: TermId, memo: &mut Vec<Option<Option<Poly>>>) -> Option<Poly> {
    if let Some(cached) = &memo[id.index()] {
        return cached.clone();
    }
    let term = store.term(id);
    let args = term.args();
    let one = BigRational::one();
    let out = match term.op() {
        Op::IntConst(c) => Some(Poly::constant(BigRational::from(c.clone()))),
        Op::RealConst(c) => Some(Poly::constant(c.clone())),
        Op::Var(sym) => match store.symbol_sort(*sym) {
            Sort::Int | Sort::Real => Some(Poly {
                coeffs: BTreeMap::from([(store.symbol_name(*sym).to_string(), one.clone())]),
                constant: BigRational::zero(),
            }),
            _ => None,
        },
        Op::Neg => poly(store, args[0], memo).map(|p| {
            let mut acc = Poly::constant(BigRational::zero());
            acc.add_scaled(&p, &-one.clone());
            acc
        }),
        Op::Add | Op::Sub => {
            let mut acc = poly(store, args[0], memo)?;
            let k = if matches!(term.op(), Op::Sub) {
                -one.clone()
            } else {
                one.clone()
            };
            for &a in &args[1..] {
                acc.add_scaled(&poly(store, a, memo)?, &k);
            }
            Some(acc)
        }
        Op::Mul => {
            let mut scalar = one.clone();
            let mut varpart: Option<Poly> = None;
            let mut ok = true;
            for &a in args {
                match poly(store, a, memo) {
                    Some(p) if p.coeffs.is_empty() => scalar = &scalar * &p.constant,
                    Some(p) if varpart.is_none() => varpart = Some(p),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            match (ok, varpart) {
                (false, _) => None,
                (true, None) => Some(Poly::constant(scalar)),
                (true, Some(p)) => {
                    let mut acc = Poly::constant(BigRational::zero());
                    acc.add_scaled(&p, &scalar);
                    Some(acc)
                }
            }
        }
        Op::RealDiv if args.len() == 2 => match poly(store, args[1], memo) {
            Some(d) if d.coeffs.is_empty() && !d.constant.is_zero() => poly(store, args[0], memo)
                .map(|p| {
                    let mut acc = Poly::constant(BigRational::zero());
                    acc.add_scaled(&p, &d.constant.recip());
                    acc
                }),
            _ => None,
        },
        _ => None,
    };
    memo[id.index()] = Some(out.clone());
    out
}

/// Converts `p ≤ 0` (`< 0` when `strict`) into a difference atom, `None`
/// when the coefficients are not `{}`, `{+1}`, `{-1}`, or `{+1, -1}`.
fn atom_of(p: &Poly, strict: bool, is_int: bool) -> Option<Atom> {
    let one = BigRational::one();
    let neg_one = -BigRational::one();
    let entries: Vec<(&String, &BigRational)> = p.coeffs.iter().collect();
    let (x, y) = match entries.as_slice() {
        [] => (None, None),
        [(n, c)] if **c == one => (Some((*n).clone()), None),
        [(n, c)] if **c == neg_one => (None, Some((*n).clone())),
        [(n0, c0), (n1, c1)] if **c0 == one && **c1 == neg_one => {
            (Some((*n0).clone()), Some((*n1).clone()))
        }
        [(n0, c0), (n1, c1)] if **c0 == neg_one && **c1 == one => {
            (Some((*n1).clone()), Some((*n0).clone()))
        }
        _ => return None,
    };
    let mut bound = -p.constant.clone();
    let mut strict = strict;
    if is_int && strict && bound.is_integer() {
        bound = &bound - &one;
        strict = false;
    }
    Some((x, y, bound, strict))
}

/// Re-derives the script's difference atoms, `None` when any assertion
/// falls outside the conjunctive difference-logic fragment.
fn derive_atoms(script: &Script) -> Option<Vec<Atom>> {
    let store = script.store();
    let mut has_int = false;
    let mut has_real = false;
    for sym in store.symbols() {
        match store.symbol_sort(sym) {
            Sort::Int => has_int = true,
            Sort::Real => has_real = true,
            _ => return None,
        }
    }
    if has_int && has_real {
        return None;
    }
    let is_int = !has_real;

    let mut atoms: Vec<Atom> = Vec::new();
    let mut memo: Vec<Option<Option<Poly>>> = vec![None; store.len()];
    let mut seen = vec![[false; 2]; store.len()];
    let mut todo: Vec<(TermId, bool)> = script.assertions().iter().map(|&a| (a, true)).collect();
    let cmp = |lhs: TermId,
               rhs: TermId,
               strict: bool,
               pol: bool,
               memo: &mut Vec<Option<Option<Poly>>>,
               atoms: &mut Vec<Atom>| {
        let mut d = poly(store, lhs, memo)?;
        d.add_scaled(&poly(store, rhs, memo)?, &-BigRational::one());
        if !pol {
            let mut n = Poly::constant(BigRational::zero());
            n.add_scaled(&d, &-BigRational::one());
            d = n;
        }
        let strict = if pol { strict } else { !strict };
        atoms.push(atom_of(&d, strict, is_int)?);
        Some(())
    };
    while let Some((id, pol)) = todo.pop() {
        if seen[id.index()][pol as usize] {
            continue;
        }
        seen[id.index()][pol as usize] = true;
        let term = store.term(id);
        let args = term.args();
        match term.op() {
            Op::True if pol => {}
            Op::False if !pol => {}
            Op::True | Op::False => {
                // An asserted contradiction entails every atom of the form
                // `0 ≤ c` with `c < 0`; the detector normalizes it to
                // `0 ≤ -1`.
                atoms.push((None, None, -BigRational::one(), false));
            }
            Op::Not => todo.push((args[0], !pol)),
            Op::And if pol => todo.extend(args.iter().map(|&a| (a, pol))),
            Op::Eq if pol && args.first().map(|&a| store.sort(a)) != Some(Sort::Bool) => {
                for pair in args.windows(2) {
                    cmp(pair[0], pair[1], false, true, &mut memo, &mut atoms)?;
                    cmp(pair[1], pair[0], false, true, &mut memo, &mut atoms)?;
                }
            }
            Op::Le | Op::Lt | Op::Ge | Op::Gt => {
                let strict = matches!(term.op(), Op::Lt | Op::Gt);
                let swap = matches!(term.op(), Op::Ge | Op::Gt);
                if !pol && args.len() != 2 {
                    return None;
                }
                for pair in args.windows(2) {
                    let (lhs, rhs) = if swap {
                        (pair[1], pair[0])
                    } else {
                        (pair[0], pair[1])
                    };
                    cmp(lhs, rhs, strict, pol, &mut memo, &mut atoms)?;
                }
            }
            _ => return None,
        }
    }
    Some(atoms)
}

/// Whether an asserted atom entails a claimed cycle edge over the same
/// variable pair: a tighter (or equal) bound implies a looser one, and a
/// non-strict atom never implies a strict edge at the same bound.
fn entails(atom: &Atom, edge: &DlCycleEdge) -> bool {
    let (x, y, b1, s1) = atom;
    *x == edge.x
        && *y == edge.y
        && (*b1 < edge.bound || (*b1 == edge.bound && (!edge.strict || *s1)))
}

/// Cross-checks a claimed difference-logic negative cycle against an
/// independent re-derivation from the original script.
pub fn dl_certificate(claim: &DlClaim<'_>) -> LintReport {
    let mut report = LintReport::new();

    // L501: the script must re-derive as a difference-logic conjunction.
    let atoms = derive_atoms(claim.original);
    let Some(atoms) = atoms else {
        report.error(
            LintCode::DlFragmentMismatch,
            "script is not a difference-logic conjunction under independent re-derivation",
            None,
        );
        return report;
    };

    // L502: every cycle edge must be entailed by an asserted atom.
    for (i, edge) in claim.cycle.iter().enumerate() {
        if !atoms.iter().any(|a| entails(a, edge)) {
            let rel = if edge.strict { "<" } else { "≤" };
            report.error(
                LintCode::DlEdgeUnasserted,
                format!(
                    "cycle edge {i} `{} - {} {rel} {}` is not entailed by any asserted atom",
                    edge.x.as_deref().unwrap_or("0"),
                    edge.y.as_deref().unwrap_or("0"),
                    edge.bound
                ),
                None,
            );
        }
    }

    // L503: the edges must chain cyclically so the variable terms
    // telescope out of the sum.
    if claim.cycle.is_empty() {
        report.error(LintCode::DlCycleBroken, "claimed cycle is empty", None);
    }
    for (i, edge) in claim.cycle.iter().enumerate() {
        let next = &claim.cycle[(i + 1) % claim.cycle.len()];
        if edge.x != next.y {
            report.error(
                LintCode::DlCycleBroken,
                format!(
                    "edge {i} ends at `{}` but edge {} starts from `{}` — the sum does not \
                     telescope",
                    edge.x.as_deref().unwrap_or("0"),
                    (i + 1) % claim.cycle.len(),
                    next.y.as_deref().unwrap_or("0")
                ),
                None,
            );
        }
    }

    // L504: the telescoped sum `0 ≤ Σ bᵢ` must be absurd.
    let mut sum = BigRational::zero();
    for edge in claim.cycle {
        sum = &sum + &edge.bound;
    }
    let any_strict = claim.cycle.iter().any(|e| e.strict);
    if !(sum.is_negative() || (sum.is_zero() && any_strict && !claim.cycle.is_empty())) {
        report.error(
            LintCode::DlCycleNonNegative,
            format!("cycle bounds sum to {sum}, which refutes nothing"),
            None,
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Script {
        Script::parse(src).unwrap()
    }

    fn edge(x: Option<&str>, y: Option<&str>, bound: i64, strict: bool) -> DlCycleEdge {
        DlCycleEdge {
            x: x.map(str::to_string),
            y: y.map(str::to_string),
            bound: BigRational::from(bound),
            strict,
        }
    }

    const UNSAT_DL: &str = "(declare-fun x () Int)(declare-fun y () Int)
                            (assert (<= (- x y) 1))
                            (assert (<= (- y x) (- 2)))
                            (check-sat)";

    fn honest_cycle() -> Vec<DlCycleEdge> {
        vec![
            edge(Some("x"), Some("y"), 1, false),
            edge(Some("y"), Some("x"), -2, false),
        ]
    }

    #[test]
    fn honest_cycle_lints_clean() {
        let script = parse(UNSAT_DL);
        let cycle = honest_cycle();
        let report = dl_certificate(&DlClaim {
            original: &script,
            cycle: &cycle,
        });
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn rotated_and_negated_spellings_still_entail() {
        // `(>= 1 (- x y))` and `(not (> (- y x) -2))` assert the same two
        // atoms as `UNSAT_DL`; the re-derivation must normalize them.
        let script = parse(
            "(declare-fun x () Int)(declare-fun y () Int)
             (assert (>= 1 (- x y)))
             (assert (not (> (- y x) (- 2))))
             (check-sat)",
        );
        let cycle = honest_cycle();
        let report = dl_certificate(&DlClaim {
            original: &script,
            cycle: &cycle,
        });
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn non_dl_script_is_l501() {
        let script = parse("(declare-fun x () Int)(assert (= (* x x) 49))(check-sat)");
        let cycle = honest_cycle();
        let report = dl_certificate(&DlClaim {
            original: &script,
            cycle: &cycle,
        });
        assert!(report.has(LintCode::DlFragmentMismatch), "{report}");
    }

    #[test]
    fn unasserted_edge_is_l502() {
        let script = parse(UNSAT_DL);
        // Claim a tighter bound than the script asserts.
        let cycle = vec![
            edge(Some("x"), Some("y"), 0, false),
            edge(Some("y"), Some("x"), -1, false),
        ];
        let report = dl_certificate(&DlClaim {
            original: &script,
            cycle: &cycle,
        });
        assert!(report.has(LintCode::DlEdgeUnasserted), "{report}");
    }

    #[test]
    fn nonstrict_atom_does_not_entail_strict_edge() {
        let script = parse(UNSAT_DL);
        let cycle = vec![
            edge(Some("x"), Some("y"), 1, true),
            edge(Some("y"), Some("x"), -1, false),
        ];
        let report = dl_certificate(&DlClaim {
            original: &script,
            cycle: &cycle,
        });
        assert!(report.has(LintCode::DlEdgeUnasserted), "{report}");
    }

    #[test]
    fn broken_chain_is_l503() {
        let script = parse(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)
             (assert (<= (- x y) (- 1)))(assert (<= (- z x) 0))
             (check-sat)",
        );
        // x→y then z→x: the second edge does not start where the first
        // ends, so nothing telescopes even though the sum is negative.
        let cycle = vec![
            edge(Some("x"), Some("y"), -1, false),
            edge(Some("z"), Some("x"), 0, false),
        ];
        let report = dl_certificate(&DlClaim {
            original: &script,
            cycle: &cycle,
        });
        assert!(report.has(LintCode::DlCycleBroken), "{report}");
    }

    #[test]
    fn empty_cycle_is_l503() {
        let script = parse(UNSAT_DL);
        let report = dl_certificate(&DlClaim {
            original: &script,
            cycle: &[],
        });
        assert!(report.has(LintCode::DlCycleBroken), "{report}");
    }

    #[test]
    fn nonnegative_sum_is_l504() {
        let script = parse(
            "(declare-fun x () Int)(declare-fun y () Int)
             (assert (<= (- x y) 1))(assert (<= (- y x) (- 1)))
             (check-sat)",
        );
        // A zero-sum cycle of non-strict edges is satisfiable (x = y + 1).
        let cycle = vec![
            edge(Some("x"), Some("y"), 1, false),
            edge(Some("y"), Some("x"), -1, false),
        ];
        let report = dl_certificate(&DlClaim {
            original: &script,
            cycle: &cycle,
        });
        assert!(report.has(LintCode::DlCycleNonNegative), "{report}");
    }

    #[test]
    fn zero_sum_with_strict_edge_is_clean() {
        let script = parse(
            "(declare-fun a () Real)(declare-fun b () Real)
             (assert (< (- a b) 1.0))(assert (<= (- b a) (- 1.0)))
             (check-sat)",
        );
        let cycle = vec![
            DlCycleEdge {
                x: Some("a".into()),
                y: Some("b".into()),
                bound: BigRational::one(),
                strict: true,
            },
            DlCycleEdge {
                x: Some("b".into()),
                y: Some("a".into()),
                bound: -BigRational::one(),
                strict: false,
            },
        ];
        let report = dl_certificate(&DlClaim {
            original: &script,
            cycle: &cycle,
        });
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn origin_self_loop_from_asserted_false_is_clean() {
        let script = parse("(declare-fun x () Int)(assert false)(check-sat)");
        let cycle = vec![edge(None, None, -1, false)];
        let report = dl_certificate(&DlClaim {
            original: &script,
            cycle: &cycle,
        });
        assert!(report.is_clean(), "{report}");
    }
}
