//! Pass 4 (`L3xx`): certify a model's shape before evaluation trusts it.
//!
//! `verify` re-evaluates the original assertions under a candidate model
//! (paper §4.4). Evaluation assumes the model is *well-shaped*: every free
//! symbol of the constraint is assigned, and each assignment has the
//! symbol's declared sort. This pass checks exactly that, so shape bugs in
//! solving or back-translation surface as structured diagnostics instead of
//! evaluation errors deep inside `verify`.

use staub_smtlib::{Model, Script};

use crate::report::{LintCode, LintReport};

/// Checks that `model` assigns every free symbol of `script` a value of its
/// declared sort. Sort mismatches on non-free (merely declared) symbols are
/// reported too — they indicate the same producer bug.
pub fn model_shape(script: &Script, model: &Model) -> LintReport {
    let mut report = LintReport::new();
    let store = script.store();

    let mut free = vec![false; store.symbol_count()];
    for &a in script.assertions() {
        for sym in store.vars_of(a) {
            free[sym.index()] = true;
        }
    }

    for sym in store.symbols() {
        let name = store.symbol_name(sym);
        let declared = store.symbol_sort(sym);
        match model.get(sym) {
            None if free[sym.index()] => report.error(
                LintCode::ModelMissingValue,
                format!("model assigns no value to free symbol `{name}` ({declared})"),
                None,
            ),
            Some(v) if v.sort() != declared => report.error(
                LintCode::ModelSortMismatch,
                format!(
                    "model assigns `{name}` a {} value but it is declared {declared}",
                    v.sort()
                ),
                None,
            ),
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use staub_numeric::BigInt;
    use staub_smtlib::{Sort, Value};

    /// `x > 2 ∧ b` with `x : Int`, `b : Bool`.
    fn sample() -> Script {
        let mut script = Script::new();
        let x = script.declare("x", Sort::Int).unwrap();
        let b = script.declare("b", Sort::Bool).unwrap();
        let s = script.store_mut();
        let xv = s.var(x);
        let two = s.int_i64(2);
        let cmp = s.gt(xv, two).unwrap();
        let bv = s.var(b);
        script.assert(cmp);
        script.assert(bv);
        script
    }

    #[test]
    fn complete_model_is_clean() {
        let script = sample();
        let x = script.store().symbol("x").unwrap();
        let b = script.store().symbol("b").unwrap();
        let mut model = Model::new();
        model.insert(x, Value::Int(BigInt::from(3)));
        model.insert(b, Value::Bool(true));
        let report = model_shape(&script, &model);
        assert!(report.is_clean(), "{report}");
        assert!(report.findings.is_empty());
    }

    #[test]
    fn missing_assignment_fires_l301() {
        let script = sample();
        let x = script.store().symbol("x").unwrap();
        let mut model = Model::new();
        model.insert(x, Value::Int(BigInt::from(3)));
        let report = model_shape(&script, &model);
        assert!(report.has(LintCode::ModelMissingValue), "{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn wrong_sort_fires_l302() {
        let script = sample();
        let x = script.store().symbol("x").unwrap();
        let b = script.store().symbol("b").unwrap();
        let mut model = Model::new();
        model.insert(x, Value::Bool(false));
        model.insert(b, Value::Bool(true));
        let report = model_shape(&script, &model);
        assert!(report.has(LintCode::ModelSortMismatch), "{report}");
    }

    #[test]
    fn unused_symbol_may_be_unassigned() {
        let mut script = sample();
        script.declare("spare", Sort::Int).unwrap();
        let x = script.store().symbol("x").unwrap();
        let b = script.store().symbol("b").unwrap();
        let mut model = Model::new();
        model.insert(x, Value::Int(BigInt::from(3)));
        model.insert(b, Value::Bool(true));
        let report = model_shape(&script, &model);
        assert!(report.is_clean(), "{report}");
    }
}
