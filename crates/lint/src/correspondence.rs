//! Pass 3 (`L2xx`): certify the sort correspondence between an original
//! unbounded script and its bounded translation.
//!
//! Soundness of model back-translation (paper §4.1/§4.3) needs two things
//! this pass re-checks from first principles:
//!
//! * **φ totality** — every symbol of the original script that the lifted
//!   model could be asked about must have a φ⁻¹ entry in the variable map
//!   (or, for already-bounded sorts, a same-sort twin in the bounded
//!   script).
//! * **Width monotonicity** — the selected bounded sort must be at least as
//!   wide as what abstract interpretation inferred for the constraint's
//!   constants; a narrower choice silently truncates φ.

use staub_smtlib::{Script, Sort, SymbolId};

use crate::report::{LintCode, LintReport};

/// Everything the correspondence pass checks, as plain data so the pass
/// stays independent of the pipeline's own bookkeeping types.
#[derive(Debug, Clone, Copy)]
pub struct Correspondence<'a> {
    /// The untranslated input script.
    pub original: &'a Script,
    /// The bounded translation (its own term store).
    pub bounded: &'a Script,
    /// Original symbol → bounded symbol (φ⁻¹'s domain pairing).
    pub var_map: &'a [(SymbolId, SymbolId)],
    /// Selected bitvector width, for integer constraints.
    pub bv_width: Option<u32>,
    /// Selected floating-point format `(eb, sb)`, for real constraints.
    pub fp_format: Option<(u32, u32)>,
    /// The assumption width abstract interpretation inferred for integers
    /// (one bit above the widest constant).
    pub int_assumption_width: Option<u32>,
    /// The `(magnitude, precision)` abstract interpretation inferred for
    /// reals, when the precision is finite.
    pub real_assumption: Option<(u32, u32)>,
}

/// Checks φ totality, per-entry sort pairing, and width monotonicity.
pub fn correspondence(c: &Correspondence<'_>) -> LintReport {
    let mut report = LintReport::new();
    let ostore = c.original.store();
    let bstore = c.bounded.store();

    // Symbols actually occurring in the original assertions: missing φ⁻¹
    // coverage for these is an error, for merely-declared symbols a warning.
    let mut occurs = vec![false; ostore.symbol_count()];
    for &a in c.original.assertions() {
        for sym in ostore.vars_of(a) {
            occurs[sym.index()] = true;
        }
    }

    for sym in ostore.symbols() {
        if c.var_map.iter().any(|&(o, _)| o == sym) {
            continue;
        }
        let name = ostore.symbol_name(sym);
        let sort = ostore.symbol_sort(sym);
        if occurs[sym.index()] {
            report.error(
                LintCode::PhiIncomplete,
                format!("symbol `{name}` ({sort}) occurs in the constraint but has no φ⁻¹ entry"),
                None,
            );
        } else {
            report.warning(
                LintCode::PhiIncomplete,
                format!("declared symbol `{name}` ({sort}) has no φ⁻¹ entry"),
                None,
            );
        }
    }

    for &(o, b) in c.var_map {
        let os = ostore.symbol_sort(o);
        let bs = bstore.symbol_sort(b);
        let corresponds = match os {
            // A declaration *narrower* than the node width is the
            // per-variable width scheme: use sites sign-extend to the node
            // width, and φ⁻¹ reads the signed value at any declared width.
            // Wider than the node width nothing ever produces — mismatch.
            Sort::Int => {
                matches!(bs, Sort::BitVec(w) if c.bv_width.is_some_and(|node| w <= node))
            }
            Sort::Real => matches!(bs, Sort::Float(eb, sb) if Some((eb, sb)) == c.fp_format),
            // Bounded sorts must be carried over unchanged.
            other => bs == other,
        };
        if !corresponds {
            report.error(
                LintCode::PhiSortMismatch,
                format!(
                    "`{}` ({os}) is mapped to `{}` ({bs}), which is not the selected bounded sort",
                    ostore.symbol_name(o),
                    bstore.symbol_name(b)
                ),
                None,
            );
        }
    }

    if let (Some(w), Some(assumption)) = (c.bv_width, c.int_assumption_width) {
        // `assumption` carries a one-bit safety margin above the widest
        // constant; below `assumption - 1`, φ is not even total on the
        // constraint's own literals.
        if w + 1 < assumption {
            report.error(
                LintCode::WidthBelowInference,
                format!(
                    "selected width {w} cannot represent the constraint's constants \
                     (inference requires at least {})",
                    assumption - 1
                ),
                None,
            );
        } else if w < assumption {
            report.warning(
                LintCode::WidthMarginDropped,
                format!(
                    "selected width {w} drops the inferred one-bit margin \
                     (assumption width {assumption})"
                ),
                None,
            );
        }
    }
    if let (Some((_, sb)), Some((magnitude, precision))) = (c.fp_format, c.real_assumption) {
        // φ_real rounds, so a thin significand is inexact rather than
        // unsound: warn only.
        if sb < magnitude + precision {
            report.warning(
                LintCode::WidthMarginDropped,
                format!(
                    "significand width {sb} is below the inferred magnitude+precision \
                     {}",
                    magnitude + precision
                ),
                None,
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use staub_smtlib::Logic;

    /// `x < 10` over Int, translated to width-12 bitvectors.
    fn pair() -> (Script, Script) {
        let mut original = Script::new();
        original.set_logic(Logic::QfLia);
        let x = original.declare("x", Sort::Int).unwrap();
        let s = original.store_mut();
        let xv = s.var(x);
        let ten = s.int_i64(10);
        let cmp = s.lt(xv, ten).unwrap();
        original.assert(cmp);

        let mut bounded = Script::new();
        bounded.set_logic(Logic::QfBv);
        bounded.declare("x", Sort::BitVec(12)).unwrap();
        (original, bounded)
    }

    fn input<'a>(
        original: &'a Script,
        bounded: &'a Script,
        var_map: &'a [(SymbolId, SymbolId)],
    ) -> Correspondence<'a> {
        Correspondence {
            original,
            bounded,
            var_map,
            bv_width: Some(12),
            fp_format: None,
            int_assumption_width: Some(6),
            real_assumption: None,
        }
    }

    #[test]
    fn total_map_is_clean() {
        let (original, bounded) = pair();
        let ox = original.store().symbol("x").unwrap();
        let bx = bounded.store().symbol("x").unwrap();
        let var_map = [(ox, bx)];
        let report = correspondence(&input(&original, &bounded, &var_map));
        assert!(report.is_clean(), "{report}");
        assert!(report.findings.is_empty());
    }

    #[test]
    fn removed_entry_fires_l201() {
        let (original, bounded) = pair();
        let report = correspondence(&input(&original, &bounded, &[]));
        assert!(report.has(LintCode::PhiIncomplete), "{report}");
        assert!(!report.is_clean(), "occurring symbol uncovered is an error");
    }

    #[test]
    fn unused_symbol_only_warns() {
        let (mut original, bounded) = pair();
        original.declare("unused", Sort::Int).unwrap();
        let ox = original.store().symbol("x").unwrap();
        let bx = bounded.store().symbol("x").unwrap();
        let var_map = [(ox, bx)];
        let report = correspondence(&input(&original, &bounded, &var_map));
        assert!(report.has(LintCode::PhiIncomplete), "{report}");
        assert!(report.is_clean(), "unused symbols warn without failing");
    }

    #[test]
    fn wrong_target_width_fires_l202() {
        // Wider than the node width: nothing in the translation produces
        // this, so it is a mismatch.
        let (original, mut bounded) = pair();
        let wide = bounded.declare("x16", Sort::BitVec(16)).unwrap();
        let ox = original.store().symbol("x").unwrap();
        let var_map = [(ox, wide)];
        let report = correspondence(&input(&original, &bounded, &var_map));
        assert!(report.has(LintCode::PhiSortMismatch), "{report}");
    }

    #[test]
    fn narrower_declaration_is_clean() {
        // Narrower than the node width is the per-variable width scheme
        // (sign-extended at use sites) — not a mismatch.
        let (original, mut bounded) = pair();
        let narrow = bounded.declare("x8", Sort::BitVec(8)).unwrap();
        let ox = original.store().symbol("x").unwrap();
        let var_map = [(ox, narrow)];
        let report = correspondence(&input(&original, &bounded, &var_map));
        assert!(!report.has(LintCode::PhiSortMismatch), "{report}");
    }

    #[test]
    fn width_monotonicity() {
        let (original, bounded) = pair();
        let ox = original.store().symbol("x").unwrap();
        let bx = bounded.store().symbol("x").unwrap();
        let var_map = [(ox, bx)];
        let mut c = input(&original, &bounded, &var_map);
        c.int_assumption_width = Some(14);
        // 12 < 14 - 1: constants no longer representable.
        let report = correspondence(&c);
        assert!(report.has(LintCode::WidthBelowInference), "{report}");
        assert!(!report.is_clean());
        // 12 == 13 - 1: margin dropped, but sound.
        c.int_assumption_width = Some(13);
        let report = correspondence(&c);
        assert!(report.has(LintCode::WidthMarginDropped), "{report}");
        assert!(report.is_clean());
    }
}
