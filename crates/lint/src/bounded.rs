//! Pass 2 (`L1xx`): certify that a transformed script is actually bounded
//! and that its arithmetic is overflow-guarded.
//!
//! After ℳ runs, the output constraint must live entirely in bounded
//! theories: no `Int`- or `Real`-sorted symbol or subterm may survive.
//! Additionally, STAUB's soundness argument (paper §4.2) requires every
//! bitvector arithmetic application to be *dominated* by a matching
//! overflow-guard assertion — `(assert (not (bvsaddo a b)))` for
//! `(bvadd a b)` and so on — so that any model of the bounded script maps
//! back to exact arithmetic. This pass rebuilds the guard set from the
//! asserted formulas and checks domination application by application,
//! without trusting the transformer's own bookkeeping.

use std::collections::HashSet;

use staub_smtlib::{print_term, Command, Op, Script, TermId};

use crate::report::{LintCode, LintReport};

/// The overflow predicate that must guard a bitvector arithmetic operator,
/// or `None` for operators that cannot overflow.
fn guard_pred(op: &Op) -> Option<Op> {
    Some(match op {
        Op::BvAdd => Op::BvSaddo,
        Op::BvSub => Op::BvSsubo,
        Op::BvMul => Op::BvSmulo,
        Op::BvSdiv => Op::BvSdivo,
        Op::BvNeg => Op::BvNego,
        _ => return None,
    })
}

/// Checks a transformed script for surviving unbounded sorts, unguarded
/// bitvector arithmetic, and over-wide bitvector constants.
pub fn boundedness(script: &Script) -> LintReport {
    let mut report = LintReport::new();
    let store = script.store();

    // Every declared symbol must have a bounded sort.
    for cmd in script.commands() {
        if let Command::Declare(sym) = cmd {
            let sort = store.symbol_sort(*sym);
            if sort.is_unbounded() {
                report.error(
                    LintCode::UnboundedSubterm,
                    format!(
                        "declared symbol `{}` has unbounded sort {sort}",
                        store.symbol_name(*sym)
                    ),
                    None,
                );
            }
        }
    }

    // Rebuild the guard set: an asserted `(not (ovf-pred a ...))`, possibly
    // under a top-level conjunction, licenses the matching application.
    let mut guards: HashSet<(Op, Vec<TermId>)> = HashSet::new();
    let mut stack: Vec<TermId> = script.assertions().to_vec();
    while let Some(id) = stack.pop() {
        let t = store.term(id);
        match t.op() {
            Op::And => stack.extend(t.args().iter().copied()),
            Op::Not => {
                let inner = store.term(t.args()[0]);
                if matches!(
                    inner.op(),
                    Op::BvSaddo | Op::BvSsubo | Op::BvSmulo | Op::BvSdivo | Op::BvNego
                ) {
                    guards.insert((inner.op().clone(), inner.args().to_vec()));
                }
            }
            _ => {}
        }
    }

    // Walk every subterm reachable from an assertion exactly once.
    let mut seen = vec![false; store.len()];
    let mut stack: Vec<TermId> = script.assertions().to_vec();
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        let t = store.term(id);
        stack.extend(t.args().iter().copied());

        if t.sort().is_unbounded() {
            report.error(
                LintCode::UnboundedSubterm,
                format!("{}-sorted subterm survived the transformation", t.sort()),
                Some(print_term(store, id)),
            );
        }
        if let Some(pred) = guard_pred(t.op()) {
            if !guards.contains(&(pred.clone(), t.args().to_vec())) {
                report.error(
                    LintCode::MissingGuard,
                    format!(
                        "`{}` application is not dominated by a `{}` guard assertion",
                        t.op().smtlib_name(),
                        pred.smtlib_name()
                    ),
                    Some(print_term(store, id)),
                );
            }
        }
        if let Op::BvConst(v) = t.op() {
            let unsigned = v.to_unsigned();
            if unsigned.is_negative() || unsigned.bit_len() > v.width() as usize {
                report.error(
                    LintCode::ConstantOverflow,
                    format!(
                        "bitvector constant value does not fit its declared width {}",
                        v.width()
                    ),
                    Some(print_term(store, id)),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use staub_numeric::{BigInt, BitVecValue};
    use staub_smtlib::{Logic, Sort};

    /// `x + y = 5` over `(_ BitVec 8)` with (when `guarded`) the overflow
    /// guard the transformer would emit.
    fn bv_script(guarded: bool) -> Script {
        let mut script = Script::new();
        script.set_logic(Logic::QfBv);
        let x = script.declare("x", Sort::BitVec(8)).unwrap();
        let y = script.declare("y", Sort::BitVec(8)).unwrap();
        let s = script.store_mut();
        let xv = s.var(x);
        let yv = s.var(y);
        let ovf = s.app(Op::BvSaddo, &[xv, yv]).unwrap();
        let guard = s.not(ovf).unwrap();
        let sum = s.app(Op::BvAdd, &[xv, yv]).unwrap();
        let five = s.bv(BitVecValue::new(BigInt::from(5), 8));
        let eq = s.eq(sum, five).unwrap();
        if guarded {
            script.assert(guard);
        }
        script.assert(eq);
        script.check_sat();
        script
    }

    #[test]
    fn guarded_script_is_clean() {
        let report = boundedness(&bv_script(true));
        assert!(report.is_clean(), "{report}");
        assert!(report.findings.is_empty());
    }

    #[test]
    fn dropped_guard_fires_l102() {
        let report = boundedness(&bv_script(false));
        assert!(report.has(LintCode::MissingGuard), "{report}");
        assert!(!report.is_clean());
    }

    #[test]
    fn guard_under_conjunction_counts() {
        let mut script = Script::new();
        script.set_logic(Logic::QfBv);
        let x = script.declare("x", Sort::BitVec(8)).unwrap();
        let s = script.store_mut();
        let xv = s.var(x);
        let ovf = s.app(Op::BvNego, &[xv]).unwrap();
        let guard = s.not(ovf).unwrap();
        let neg = s.app(Op::BvNeg, &[xv]).unwrap();
        let eq = s.eq(neg, xv).unwrap();
        let conj = s.and(&[guard, eq]).unwrap();
        script.assert(conj);
        let report = boundedness(&script);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn surviving_int_fires_l101() {
        let mut script = Script::new();
        script.set_logic(Logic::QfBv);
        let n = script.declare("n", Sort::Int).unwrap();
        let s = script.store_mut();
        let nv = s.var(n);
        let zero = s.int_i64(0);
        let cmp = s.ge(nv, zero).unwrap();
        script.assert(cmp);
        let report = boundedness(&script);
        assert!(report.has(LintCode::UnboundedSubterm), "{report}");
        // Declared symbol, variable occurrence, and the literal all count.
        assert!(report.error_count() >= 2);
    }

    #[test]
    fn over_wide_constant_fires_l103() {
        let mut script = bv_script(true);
        let five = {
            let s = script.store_mut();
            s.bv(BitVecValue::new(BigInt::from(5), 8))
        };
        // 300 needs 9 bits; smuggle it into the width-8 literal.
        script.store_mut().corrupt_op_for_test(
            five,
            Op::BvConst(BitVecValue::corrupted_for_test(BigInt::from(300), 8)),
        );
        let report = boundedness(&script);
        assert!(report.has(LintCode::ConstantOverflow), "{report}");
    }
}
