//! Pass 5 (`L4xx`): certify a-priori bound certificates.
//!
//! `staub-core` derives, for pure-LIA scripts, a *certified width* — a
//! bitvector width at which the bounded translation is equisatisfiable
//! with the unbounded original (a Bromberger-style small-model bound), so
//! a bounded `unsat` at that width may be promoted to a trusted `unsat`.
//! Trusting that promotion means trusting the derivation, so this pass
//! re-derives the whole chain **independently** from the original script —
//! fragment classification, coefficient-magnitude ledger, and the width
//! formula — and cross-checks the claimed certificate against it:
//!
//! * `L401` — the claimed fragment class disagrees with the re-derived one.
//! * `L402` — a re-derived ledger entry exceeds the claimed one: some
//!   coefficient, constant, atom, or variable escaped the analysis.
//! * `L403` — the claimed certified width is below what the claimed ledger
//!   itself implies, or a width is claimed outside pure LIA.
//! * `L404` — the width a bounded check actually used is below the
//!   certified width (checked only when a used width is supplied).
//! * `L405` — a declared numeric variable is missing from the per-variable
//!   bounds, or bounded below the certified width.
//!
//! The re-derivation deliberately duplicates the core analysis rather than
//! calling it: the checker must not trust the code it checks. Both sides
//! are pinned to the same published formula, so honest certificates always
//! lint clean; any drift between the implementations is itself a bug this
//! pass exposes.

use staub_numeric::BigRational;
use staub_smtlib::{print_term, Op, Script, Sort, SymbolId, TermId, TermStore};

use crate::report::{LintCode, LintReport};

/// A bound certificate as *claimed* by the pipeline, flattened to
/// primitives so this crate never depends on `staub-core` types. Core
/// fills one in from its `BoundCertificate` (the `Correspondence` idiom).
#[derive(Debug, Clone)]
pub struct BoundClaim<'a> {
    /// The original (unbounded) script the certificate was derived from.
    pub original: &'a Script,
    /// Claimed fragment class name: `"lia"`, `"lra"`, `"mixed"`, or
    /// `"ineligible"`.
    pub fragment: &'a str,
    /// Claimed number of declared numeric variables.
    pub num_vars: usize,
    /// Claimed number of linear atoms (pairwise-expanded).
    pub num_atoms: usize,
    /// Claimed max bit-length over all atom coefficients and constants.
    pub max_entry_bits: u32,
    /// Claimed max additive terms in a single atom.
    pub max_atom_terms: usize,
    /// The certified width, if the certificate claims completeness.
    pub certified_width: Option<u32>,
    /// Claimed sufficient width per declared numeric variable.
    pub var_bounds: &'a [(SymbolId, u32)],
    /// The width a bounded check actually ran at, when validating a
    /// promotion (`None` when only the derivation is being certified).
    pub used_width: Option<u32>,
}

/// `⌈log₂(k+1)⌉` — bits needed to absorb a `k`-way sum.
fn count_bits(k: usize) -> u32 {
    usize::BITS - k.leading_zeros()
}

/// Bit-length of a rational constant: integer-part bits (incl. sign) plus
/// dyadic fraction digits, saturating for non-dyadic values.
fn real_const_bits(c: &BigRational) -> u32 {
    let magnitude = (c.abs().ceil().bit_len() as u32 + 1).max(2);
    let precision = c.dig().map_or(u32::MAX / 2, |d| d as u32);
    magnitude.saturating_add(precision)
}

/// Abstract linear form: bit-lengths of the largest coefficient and
/// constant part, plus the count of additive variable terms.
#[derive(Debug, Clone, Copy)]
struct LinForm {
    coeff_bits: u32,
    const_bits: u32,
    terms: usize,
}

/// The ledger re-derived from the original script.
#[derive(Debug, Default, Clone, Copy)]
struct Ledger {
    num_atoms: usize,
    max_entry_bits: u32,
    max_atom_terms: usize,
}

/// Derives the linear form of a numeric term, `None` if nonlinear.
fn lin_form(
    store: &TermStore,
    id: TermId,
    memo: &mut Vec<Option<Option<LinForm>>>,
) -> Option<LinForm> {
    if let Some(cached) = memo[id.index()] {
        return cached;
    }
    let term = store.term(id);
    let args = term.args();
    let constant = |bits: u32| LinForm {
        coeff_bits: 0,
        const_bits: bits,
        terms: 0,
    };
    let form = match term.op() {
        Op::IntConst(c) => Some(constant((c.abs().bit_len() as u32 + 1).max(2))),
        Op::RealConst(c) => Some(constant(real_const_bits(c))),
        Op::Var(sym) => match store.symbol_sort(*sym) {
            Sort::Int | Sort::Real => Some(LinForm {
                coeff_bits: 2,
                const_bits: 0,
                terms: 1,
            }),
            _ => None,
        },
        Op::Neg => lin_form(store, args[0], memo),
        Op::Add | Op::Sub => {
            let mut coeff_bits = 0u32;
            let mut const_bits = 0u32;
            let mut terms = 0usize;
            let mut ok = true;
            for &a in args {
                match lin_form(store, a, memo) {
                    Some(f) => {
                        coeff_bits = coeff_bits.max(f.coeff_bits);
                        const_bits = const_bits.max(f.const_bits);
                        terms += f.terms;
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            let extra = count_bits(args.len().saturating_sub(1));
            if ok {
                Some(LinForm {
                    coeff_bits: coeff_bits.saturating_add(extra),
                    const_bits: const_bits.saturating_add(extra),
                    terms,
                })
            } else {
                None
            }
        }
        Op::Mul => {
            let mut const_bits_sum = 0u32;
            let mut non_const: Option<LinForm> = None;
            let mut ok = true;
            for &a in args {
                match lin_form(store, a, memo) {
                    Some(f) if f.terms == 0 => {
                        const_bits_sum = const_bits_sum.saturating_add(f.const_bits);
                    }
                    Some(f) if non_const.is_none() => non_const = Some(f),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                None
            } else {
                match non_const {
                    None => Some(constant(const_bits_sum)),
                    Some(f) => Some(LinForm {
                        coeff_bits: f.coeff_bits.saturating_add(const_bits_sum),
                        const_bits: f.const_bits.saturating_add(const_bits_sum),
                        terms: f.terms,
                    }),
                }
            }
        }
        Op::RealDiv if args.len() == 2 => match lin_form(store, args[1], memo) {
            Some(d) if d.terms == 0 => lin_form(store, args[0], memo).map(|t| LinForm {
                coeff_bits: t.coeff_bits.saturating_add(d.const_bits),
                const_bits: t.const_bits.saturating_add(d.const_bits),
                terms: t.terms,
            }),
            _ => None,
        },
        _ => None,
    };
    memo[id.index()] = Some(form);
    form
}

/// Walks the Boolean structure collecting atom ledger entries; `None` when
/// the script leaves the linear fragment.
fn derive_ledger(script: &Script) -> Option<Ledger> {
    let store = script.store();
    let mut ledger = Ledger::default();
    let mut memo: Vec<Option<Option<LinForm>>> = vec![None; store.len()];
    let mut stack: Vec<TermId> = script.assertions().to_vec();
    let mut seen = vec![false; store.len()];
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        let term = store.term(id);
        let args = term.args();
        match term.op() {
            Op::True | Op::False => {}
            Op::Var(sym) => {
                if store.symbol_sort(*sym) != Sort::Bool {
                    return None;
                }
            }
            Op::Not | Op::And | Op::Or | Op::Xor | Op::Implies => {
                stack.extend(args.iter().copied());
            }
            Op::Ite => {
                if store.sort(id) != Sort::Bool {
                    return None;
                }
                stack.extend(args.iter().copied());
            }
            Op::Eq | Op::Distinct if args.first().map(|&a| store.sort(a)) == Some(Sort::Bool) => {
                stack.extend(args.iter().copied());
            }
            Op::Eq | Op::Distinct | Op::Le | Op::Lt | Op::Ge | Op::Gt => {
                let k = args.len();
                let pairwise = if matches!(term.op(), Op::Distinct) {
                    k.saturating_mul(k.saturating_sub(1)) / 2
                } else {
                    k.saturating_sub(1)
                };
                let mut entry_bits = 0u32;
                let mut atom_terms = 1usize;
                for &a in args {
                    let f = lin_form(store, a, &mut memo)?;
                    entry_bits = entry_bits
                        .max(f.coeff_bits)
                        .max(f.const_bits.saturating_add(1));
                    atom_terms = atom_terms.saturating_add(f.terms);
                }
                ledger.num_atoms = ledger.num_atoms.saturating_add(pairwise);
                ledger.max_entry_bits = ledger.max_entry_bits.max(entry_bits.max(2));
                ledger.max_atom_terms = ledger.max_atom_terms.max(atom_terms);
            }
            _ => return None,
        }
    }
    Some(ledger)
}

/// The published width formula over a (claimed or derived) ledger:
/// `sol_bits = ⌈log₂(n+1)⌉ + k·(M + ⌈log₂ k⌉)` with `k = min(2·atoms, n+1)`
/// (Hadamard bound on the extended matrix), then evaluation headroom
/// `+ M + ⌈log₂ terms⌉ + 2`.
fn width_formula(
    num_vars: usize,
    num_atoms: usize,
    max_entry_bits: u32,
    max_atom_terms: usize,
) -> u32 {
    let n = num_vars.max(1);
    let rows = num_atoms.saturating_mul(2).max(1);
    let k = rows.min(n + 1);
    let m = max_entry_bits.max(2);
    let sol_bits = count_bits(n + 1)
        .saturating_add((k as u32).saturating_mul(m.saturating_add(count_bits(k))));
    sol_bits
        .saturating_add(m)
        .saturating_add(count_bits(max_atom_terms.max(1)))
        .saturating_add(2)
}

/// Cross-checks a claimed bound certificate against an independent
/// re-derivation from the original script.
pub fn bound_certificate(claim: &BoundClaim<'_>) -> LintReport {
    let mut report = LintReport::new();
    let store = claim.original.store();

    // Re-derive the fragment and ledger from scratch.
    let derived = derive_ledger(claim.original);
    let mut int_vars: Vec<SymbolId> = Vec::new();
    let mut real_vars = 0usize;
    for sym in store.symbols() {
        match store.symbol_sort(sym) {
            Sort::Int => int_vars.push(sym),
            Sort::Real => real_vars += 1,
            _ => {}
        }
    }
    let derived_fragment = match &derived {
        None => "ineligible",
        Some(_) => match (!int_vars.is_empty(), real_vars > 0) {
            (true, true) => "mixed",
            (true, false) => "lia",
            (false, true) => "lra",
            (false, false) => "ineligible",
        },
    };

    // L401: fragment classification must agree.
    if claim.fragment != derived_fragment {
        report.error(
            LintCode::FragmentMismatch,
            format!(
                "certificate claims fragment `{}` but re-derivation says `{derived_fragment}`",
                claim.fragment
            ),
            None,
        );
    }

    // L402: nothing may have escaped the claimed ledger.
    if let Some(ledger) = derived {
        let derived_vars = int_vars.len() + real_vars;
        let escapes: [(&str, usize, usize); 4] = [
            ("num_vars", claim.num_vars, derived_vars),
            ("num_atoms", claim.num_atoms, ledger.num_atoms),
            (
                "max_entry_bits",
                claim.max_entry_bits as usize,
                ledger.max_entry_bits as usize,
            ),
            (
                "max_atom_terms",
                claim.max_atom_terms,
                ledger.max_atom_terms,
            ),
        ];
        for (field, claimed, rederived) in escapes {
            if claimed < rederived {
                report.error(
                    LintCode::LedgerEscape,
                    format!(
                        "ledger field `{field}` claims {claimed} but re-derivation finds \
                         {rederived} — a term escaped the certificate"
                    ),
                    None,
                );
            }
        }
    }

    // L403: a certified width must come from pure LIA and dominate what
    // the claimed ledger implies (the ledger itself is pinned by L402, so
    // formula(claimed) ≥ formula(derived) by monotonicity).
    if let Some(w) = claim.certified_width {
        if claim.fragment != "lia" {
            report.error(
                LintCode::CertifiedWidthUnsound,
                format!(
                    "certified width {w} claimed for fragment `{}` — only pure LIA has an \
                     a-priori bound",
                    claim.fragment
                ),
                None,
            );
        }
        let implied = width_formula(
            claim.num_vars,
            claim.num_atoms,
            claim.max_entry_bits,
            claim.max_atom_terms,
        );
        if w < implied {
            report.error(
                LintCode::CertifiedWidthUnsound,
                format!("certified width {w} is below the {implied} bits its own ledger implies"),
                None,
            );
        }

        // L405: every declared numeric variable must be covered at least
        // up to the certified width.
        for &sym in &int_vars {
            match claim.var_bounds.iter().find(|(s, _)| *s == sym) {
                None => report.error(
                    LintCode::UncoveredVariable,
                    format!(
                        "declared Int variable `{}` has no per-variable bound in the certificate",
                        store.symbol_name(sym)
                    ),
                    claim
                        .original
                        .assertions()
                        .first()
                        .map(|&a| print_term(store, a)),
                ),
                Some(&(_, b)) if b < w => report.error(
                    LintCode::UncoveredVariable,
                    format!(
                        "variable `{}` bounded at {b} bits, below the certified width {w}",
                        store.symbol_name(sym)
                    ),
                    None,
                ),
                Some(_) => {}
            }
        }
    }

    // L404: a promotion is only sound at or above the certified width.
    if let Some(used) = claim.used_width {
        match claim.certified_width {
            None => report.error(
                LintCode::UsedWidthBelowCertificate,
                format!(
                    "bounded check at {used} bits has no certified width to compare against — \
                     its unsat must not be promoted"
                ),
                None,
            ),
            Some(cert) if used < cert => report.error(
                LintCode::UsedWidthBelowCertificate,
                format!("bounded check used {used} bits, below the certified width {cert}"),
                None,
            ),
            Some(_) => {}
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Script {
        Script::parse(src).unwrap()
    }

    /// An honest claim for a tiny pure-LIA script, as core would build it.
    fn honest_claim(script: &Script) -> (usize, usize, u32, usize, u32, Vec<(SymbolId, u32)>) {
        let ledger = derive_ledger(script).expect("linear");
        let store = script.store();
        let vars: Vec<SymbolId> = store
            .symbols()
            .filter(|&s| store.symbol_sort(s) == Sort::Int)
            .collect();
        let w = width_formula(
            vars.len(),
            ledger.num_atoms,
            ledger.max_entry_bits,
            ledger.max_atom_terms,
        );
        let bounds = vars.iter().map(|&s| (s, w)).collect();
        (
            vars.len(),
            ledger.num_atoms,
            ledger.max_entry_bits,
            ledger.max_atom_terms,
            w,
            bounds,
        )
    }

    const LIA: &str = "(declare-fun x () Int)(declare-fun y () Int)
                       (assert (>= (+ (* 3 x) (* 5 y)) 7))
                       (assert (<= x 2))(check-sat)";

    #[test]
    fn honest_certificate_lints_clean() {
        let script = parse(LIA);
        let (num_vars, num_atoms, max_entry_bits, max_atom_terms, w, bounds) =
            honest_claim(&script);
        let report = bound_certificate(&BoundClaim {
            original: &script,
            fragment: "lia",
            num_vars,
            num_atoms,
            max_entry_bits,
            max_atom_terms,
            certified_width: Some(w),
            var_bounds: &bounds,
            used_width: Some(w),
        });
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn fragment_mismatch_is_l401() {
        let script = parse(LIA);
        let (num_vars, num_atoms, max_entry_bits, max_atom_terms, _, _) = honest_claim(&script);
        let report = bound_certificate(&BoundClaim {
            original: &script,
            fragment: "lra",
            num_vars,
            num_atoms,
            max_entry_bits,
            max_atom_terms,
            certified_width: None,
            var_bounds: &[],
            used_width: None,
        });
        assert!(report.has(LintCode::FragmentMismatch), "{report}");
    }

    #[test]
    fn understated_ledger_is_l402() {
        let script = parse(LIA);
        let (num_vars, num_atoms, max_entry_bits, max_atom_terms, w, bounds) =
            honest_claim(&script);
        let report = bound_certificate(&BoundClaim {
            original: &script,
            fragment: "lia",
            num_vars,
            num_atoms,
            max_entry_bits: max_entry_bits - 1,
            max_atom_terms,
            certified_width: Some(w),
            var_bounds: &bounds,
            used_width: None,
        });
        assert!(report.has(LintCode::LedgerEscape), "{report}");
        let _ = (num_vars, num_atoms);
    }

    #[test]
    fn width_below_own_ledger_is_l403() {
        let script = parse(LIA);
        let (num_vars, num_atoms, max_entry_bits, max_atom_terms, w, bounds) =
            honest_claim(&script);
        let report = bound_certificate(&BoundClaim {
            original: &script,
            fragment: "lia",
            num_vars,
            num_atoms,
            max_entry_bits,
            max_atom_terms,
            certified_width: Some(w - 1),
            var_bounds: &bounds,
            used_width: None,
        });
        assert!(report.has(LintCode::CertifiedWidthUnsound), "{report}");
    }

    #[test]
    fn width_claim_outside_lia_is_l403() {
        let script = parse("(declare-fun r () Real)(assert (<= r 2.0))(check-sat)");
        let report = bound_certificate(&BoundClaim {
            original: &script,
            fragment: "lra",
            num_vars: 1,
            num_atoms: 1,
            max_entry_bits: 8,
            max_atom_terms: 2,
            certified_width: Some(64),
            var_bounds: &[],
            used_width: None,
        });
        assert!(report.has(LintCode::CertifiedWidthUnsound), "{report}");
    }

    #[test]
    fn narrow_used_width_is_l404() {
        let script = parse(LIA);
        let (num_vars, num_atoms, max_entry_bits, max_atom_terms, w, bounds) =
            honest_claim(&script);
        let report = bound_certificate(&BoundClaim {
            original: &script,
            fragment: "lia",
            num_vars,
            num_atoms,
            max_entry_bits,
            max_atom_terms,
            certified_width: Some(w),
            var_bounds: &bounds,
            used_width: Some(w - 1),
        });
        assert!(report.has(LintCode::UsedWidthBelowCertificate), "{report}");
    }

    #[test]
    fn missing_variable_bound_is_l405() {
        let script = parse(LIA);
        let (num_vars, num_atoms, max_entry_bits, max_atom_terms, w, mut bounds) =
            honest_claim(&script);
        bounds.pop();
        let report = bound_certificate(&BoundClaim {
            original: &script,
            fragment: "lia",
            num_vars,
            num_atoms,
            max_entry_bits,
            max_atom_terms,
            certified_width: Some(w),
            var_bounds: &bounds,
            used_width: None,
        });
        assert!(report.has(LintCode::UncoveredVariable), "{report}");
    }

    #[test]
    fn nonlinear_script_rederives_ineligible() {
        let script = parse("(declare-fun x () Int)(assert (= (* x x) 49))(check-sat)");
        let report = bound_certificate(&BoundClaim {
            original: &script,
            fragment: "lia",
            num_vars: 1,
            num_atoms: 1,
            max_entry_bits: 8,
            max_atom_terms: 3,
            certified_width: Some(64),
            var_bounds: &[],
            used_width: None,
        });
        // The stale claim misclassifies a nonlinear script as `lia`.
        assert!(report.has(LintCode::FragmentMismatch), "{report}");
    }
}
