//! Structured diagnostics produced by the lint passes.

use std::fmt;

/// Stable diagnostic codes, one family per pass:
///
/// * `L0xx` — resort (term-store integrity)
/// * `L1xx` — boundedness (transformed constraint shape)
/// * `L2xx` — correspondence (φ totality and width monotonicity)
/// * `L3xx` — model shape
/// * `L4xx` — bound certificates (a-priori completeness claims)
/// * `L5xx` — difference-logic negative-cycle certificates
///
/// Codes are part of the tool's stable output: tests and downstream
/// tooling match on them, so variants may be added but never renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `L001`: a term's cached sort disagrees with the sort re-derived from
    /// the operator's typing rule.
    SortMismatch,
    /// `L002`: the operator's typing rule rejects the term outright (bad
    /// arity or argument sorts) — the store interned an ill-sorted term.
    SortUnderivable,
    /// `L003`: a term references an argument at or after its own position,
    /// breaking the store's bottom-up interning order (possible cycle).
    AcyclicityViolation,
    /// `L101`: an `Int`- or `Real`-sorted subterm (or declared symbol)
    /// survived into a transformed constraint.
    UnboundedSubterm,
    /// `L102`: a bitvector arithmetic application is not dominated by a
    /// matching overflow-guard assertion.
    MissingGuard,
    /// `L103`: a bitvector constant's value does not fit its declared width.
    ConstantOverflow,
    /// `L201`: φ⁻¹ does not cover a declared symbol of the original script.
    PhiIncomplete,
    /// `L202`: a φ entry pairs symbols whose sorts do not correspond
    /// (e.g. `Int` mapped to something other than the selected bitvector
    /// sort).
    PhiSortMismatch,
    /// `L203`: the selected width is below what abstract interpretation
    /// inferred as the minimum for representing the constraint's constants
    /// (monotonicity over the width domain is violated).
    WidthBelowInference,
    /// `L204` (warning): the selected width drops the inference's one-bit
    /// safety margin — constants still fit, but the assumption width does
    /// not.
    WidthMarginDropped,
    /// `L301`: a returned model assigns no value to a free symbol.
    ModelMissingValue,
    /// `L302`: a returned model assigns a value of the wrong sort.
    ModelSortMismatch,
    /// `L401`: the certificate's fragment class disagrees with the one
    /// re-derived independently from the original script.
    FragmentMismatch,
    /// `L402`: a coefficient or constant escaped the certificate's ledger —
    /// some re-derived ledger entry exceeds what the certificate claims.
    LedgerEscape,
    /// `L403`: the certified width is below what the claimed ledger itself
    /// implies, or a width is claimed for a fragment that has no a-priori
    /// bound (only pure LIA does).
    CertifiedWidthUnsound,
    /// `L404`: the width actually used by a bounded check is below the
    /// certified width — its `unsat` must not be promoted.
    UsedWidthBelowCertificate,
    /// `L405`: a declared numeric variable is missing from the
    /// certificate's per-variable bounds (or bounded below the certified
    /// width) — it escaped the analysis.
    UncoveredVariable,
    /// `L501`: a difference-logic verdict is claimed for a script that is
    /// not a difference-logic conjunction under independent re-derivation.
    DlFragmentMismatch,
    /// `L502`: a claimed negative-cycle edge is not entailed by any atom
    /// the original script asserts.
    DlEdgeUnasserted,
    /// `L503`: the claimed negative cycle does not chain cyclically (or is
    /// empty), so its bound sum proves nothing.
    DlCycleBroken,
    /// `L504`: the claimed cycle's bounds do not sum below zero (nor to
    /// zero with a strict edge) — no contradiction follows.
    DlCycleNonNegative,
}

impl LintCode {
    /// The stable code string, e.g. `"L102"`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::SortMismatch => "L001",
            LintCode::SortUnderivable => "L002",
            LintCode::AcyclicityViolation => "L003",
            LintCode::UnboundedSubterm => "L101",
            LintCode::MissingGuard => "L102",
            LintCode::ConstantOverflow => "L103",
            LintCode::PhiIncomplete => "L201",
            LintCode::PhiSortMismatch => "L202",
            LintCode::WidthBelowInference => "L203",
            LintCode::WidthMarginDropped => "L204",
            LintCode::ModelMissingValue => "L301",
            LintCode::ModelSortMismatch => "L302",
            LintCode::FragmentMismatch => "L401",
            LintCode::LedgerEscape => "L402",
            LintCode::CertifiedWidthUnsound => "L403",
            LintCode::UsedWidthBelowCertificate => "L404",
            LintCode::UncoveredVariable => "L405",
            LintCode::DlFragmentMismatch => "L501",
            LintCode::DlEdgeUnasserted => "L502",
            LintCode::DlCycleBroken => "L503",
            LintCode::DlCycleNonNegative => "L504",
        }
    }

    /// A short kebab-case name, e.g. `"missing-guard"`.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::SortMismatch => "sort-mismatch",
            LintCode::SortUnderivable => "sort-underivable",
            LintCode::AcyclicityViolation => "acyclicity-violation",
            LintCode::UnboundedSubterm => "unbounded-subterm",
            LintCode::MissingGuard => "missing-guard",
            LintCode::ConstantOverflow => "constant-overflow",
            LintCode::PhiIncomplete => "phi-incomplete",
            LintCode::PhiSortMismatch => "phi-sort-mismatch",
            LintCode::WidthBelowInference => "width-below-inference",
            LintCode::WidthMarginDropped => "width-margin-dropped",
            LintCode::ModelMissingValue => "model-missing-value",
            LintCode::ModelSortMismatch => "model-sort-mismatch",
            LintCode::FragmentMismatch => "fragment-mismatch",
            LintCode::LedgerEscape => "ledger-escape",
            LintCode::CertifiedWidthUnsound => "certified-width-unsound",
            LintCode::UsedWidthBelowCertificate => "used-width-below-certificate",
            LintCode::UncoveredVariable => "uncovered-variable",
            LintCode::DlFragmentMismatch => "dl-fragment-mismatch",
            LintCode::DlEdgeUnasserted => "dl-edge-unasserted",
            LintCode::DlCycleBroken => "dl-cycle-broken",
            LintCode::DlCycleNonNegative => "dl-cycle-non-negative",
        }
    }

    /// Every code the linter can emit, in code order — the registry the
    /// uniqueness/coverage tests enumerate. New variants must be added
    /// here (the `codes_are_unique_and_stable` test counts on it).
    pub fn all() -> &'static [LintCode] {
        &[
            LintCode::SortMismatch,
            LintCode::SortUnderivable,
            LintCode::AcyclicityViolation,
            LintCode::UnboundedSubterm,
            LintCode::MissingGuard,
            LintCode::ConstantOverflow,
            LintCode::PhiIncomplete,
            LintCode::PhiSortMismatch,
            LintCode::WidthBelowInference,
            LintCode::WidthMarginDropped,
            LintCode::ModelMissingValue,
            LintCode::ModelSortMismatch,
            LintCode::FragmentMismatch,
            LintCode::LedgerEscape,
            LintCode::CertifiedWidthUnsound,
            LintCode::UsedWidthBelowCertificate,
            LintCode::UncoveredVariable,
            LintCode::DlFragmentMismatch,
            LintCode::DlEdgeUnasserted,
            LintCode::DlCycleBroken,
            LintCode::DlCycleNonNegative,
        ]
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not soundness-relevant.
    Warning,
    /// A violated pipeline invariant; the producing stage's output must not
    /// be trusted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable code.
    pub code: LintCode,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// Printed excerpt of the offending term, when one exists.
    pub excerpt: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.severity, self.code, self.message)?;
        if let Some(excerpt) = &self.excerpt {
            write!(f, "\n  --> {excerpt}")?;
        }
        Ok(())
    }
}

/// All findings from one checker run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// The findings, in discovery order.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Records an error-severity finding.
    pub fn error(&mut self, code: LintCode, message: impl Into<String>, excerpt: Option<String>) {
        self.findings.push(Finding {
            code,
            severity: Severity::Error,
            message: message.into(),
            excerpt,
        });
    }

    /// Records a warning-severity finding.
    pub fn warning(&mut self, code: LintCode, message: impl Into<String>, excerpt: Option<String>) {
        self.findings.push(Finding {
            code,
            severity: Severity::Warning,
            message: message.into(),
            excerpt,
        });
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Returns `true` when there are no error-severity findings
    /// (warnings do not make a report unclean).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Returns `true` if some finding carries the given code.
    pub fn has(&self, code: LintCode) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// Appends all findings of another report.
    pub fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} finding(s), {} error(s)",
            self.findings.len(),
            self.error_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let all = LintCode::all();
        let mut codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "duplicate code strings");
        let mut names: Vec<&str> = all.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate code names");
    }

    #[test]
    fn registry_is_well_formed() {
        let all = LintCode::all();
        // Every code string is `L` + three digits, listed in ascending
        // order — renumbering or an out-of-family insertion fails here.
        let mut prev = String::new();
        for c in all {
            let s = c.code();
            assert_eq!(s.len(), 4, "{s}: code is L + 3 digits");
            assert!(s.starts_with('L'), "{s}");
            assert!(s[1..].chars().all(|ch| ch.is_ascii_digit()), "{s}");
            assert!(*s > *prev, "{s}: registry not in ascending code order");
            prev = s.to_string();
        }
        // The registry covers every family the header documents.
        for family in ["L0", "L1", "L2", "L3", "L4", "L5"] {
            assert!(
                all.iter().any(|c| c.code().starts_with(family)),
                "family {family}xx has no registered code"
            );
        }
    }

    #[test]
    fn clean_means_no_errors() {
        let mut r = LintReport::new();
        assert!(r.is_clean());
        r.warning(LintCode::WidthMarginDropped, "margin", None);
        assert!(r.is_clean(), "warnings stay clean");
        r.error(LintCode::MissingGuard, "guard", None);
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert!(r.has(LintCode::MissingGuard));
    }
}
