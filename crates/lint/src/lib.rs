//! `staub-lint`: a certifying checker for STAUB's pipeline invariants.
//!
//! Each stage of the STAUB pipeline — parse, infer, transform, solve,
//! verify — maintains invariants the later stages rely on. This crate
//! re-validates those invariants from the stage *outputs alone*, without
//! trusting the code that produced them, and reports violations as
//! structured [`Finding`]s with stable codes:
//!
//! | Pass | Codes | Invariant |
//! |------|-------|-----------|
//! | [`resort`] | `L001`–`L003` | every cached sort re-derives from the operator typing rules; interning is bottom-up |
//! | [`boundedness`] | `L101`–`L103` | no unbounded sort survives ℳ; every bitvector arithmetic application is overflow-guarded; constants fit their width |
//! | [`correspondence`] | `L201`–`L204` | φ⁻¹ covers the original symbols; sort pairs correspond; widths are monotone over the inference |
//! | [`model_shape`] | `L301`–`L302` | a candidate model assigns every free symbol a value of its declared sort |
//! | [`bound_certificate`] | `L401`–`L405` | an a-priori bound certificate re-derives from the original script: fragment class, coefficient ledger, certified width, and per-variable coverage all cross-check |
//! | [`dl_certificate`] | `L501`–`L504` | a difference-logic unsat's negative cycle re-derives from the original script: fragment membership, per-edge entailment, cyclic chaining, and a negative bound sum all cross-check |
//!
//! The passes are pure functions over `staub-smtlib` data, so they can run
//! between pipeline stages (see the `check` knob in `staub-core`), from the
//! `staub lint` CLI subcommand, or standalone in tests.

#![forbid(unsafe_code)]

pub mod bounded;
pub mod bounds;
pub mod correspondence;
pub mod dl;
pub mod model;
pub mod report;
pub mod resort;

pub use bounded::boundedness;
pub use bounds::{bound_certificate, BoundClaim};
pub use correspondence::{correspondence, Correspondence};
pub use dl::{dl_certificate, DlClaim, DlCycleEdge};
pub use model::model_shape;
pub use report::{Finding, LintCode, LintReport, Severity};
pub use resort::resort;
