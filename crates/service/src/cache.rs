//! The canonical-constraint answer cache.
//!
//! Keys are the canonical serializations produced by
//! [`staub_smtlib::canonicalize`], so two requests that differ only by
//! symbol names, assertion order, or commutative argument order share an
//! entry. Lookup is by 128-bit fingerprint, sharded to keep lock
//! contention off the request path, with a **full-key comparison on every
//! hit**: a fingerprint collision degrades to a miss, never to a wrong
//! answer.
//!
//! Only *sound* results are cached — `sat` verdicts whose models the
//! pipeline already lift-verified, and `unsat` verdicts, which STAUB only
//! reports from exact lanes or from certified complete lanes (a bounded
//! unsat is promoted only when its Bromberger-style a-priori bound
//! certificate passes the independent `L4xx` lints; an *uncertified*
//! bounded-unsat is never trusted, §4.4).
//! `unknown` is a budget artifact, not a fact about the constraint, so it
//! is never cached. Cached models are stored keyed by *canonical
//! variable index* and rebound through the requester's own
//! [`Canonical::vars`](staub_smtlib::Canonical::vars) table, then
//! re-verified by exact evaluation before being served (see
//! `server::solve_one`), so even a cache bug cannot emit an unsound
//! `sat`.
//!
//! Each shard is a hand-rolled slab LRU: entries live in a `Vec`, the
//! recency list is a pair of `prev`/`next` index arrays, so promotion and
//! eviction are O(1) with no per-entry allocation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use staub_smtlib::Value;

use crate::persist::PersistStatus;

/// What the serve path needs from an answer store, whatever its backing.
///
/// The in-memory sharded LRU ([`AnswerCache`]) and the crash-persistent
/// store ([`crate::persist::PersistentStore`]) both implement this, so
/// the reactor and the solve path are written once against the trait and
/// persistence slots in as an implementation rather than a special case.
/// Implementations must be safe to call from many connection workers at
/// once (`&self` everywhere).
pub trait AnswerStore: Send + Sync {
    /// Looks up a canonical constraint; implementations must compare the
    /// full `key` on a fingerprint match (collisions degrade to misses,
    /// never wrong answers).
    fn lookup(&self, fingerprint: u128, key: &str) -> Option<CachedVerdict>;

    /// Records a sound answer for a canonical constraint.
    fn record(&self, fingerprint: u128, key: &str, verdict: CachedVerdict);

    /// Point-in-time hit/miss/size counters.
    fn stats(&self) -> CacheStats;

    /// Durability counters, when this store survives restarts.
    fn persist_status(&self) -> Option<PersistStatus> {
        None
    }
}

impl AnswerStore for AnswerCache {
    fn lookup(&self, fingerprint: u128, key: &str) -> Option<CachedVerdict> {
        self.get(fingerprint, key)
    }

    fn record(&self, fingerprint: u128, key: &str, verdict: CachedVerdict) {
        self.insert(fingerprint, key.to_string(), verdict);
    }

    fn stats(&self) -> CacheStats {
        AnswerCache::stats(self)
    }
}

/// A cached answer for one canonical constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedVerdict {
    /// Satisfiable, with the verified model keyed by canonical variable
    /// index and the lane label that produced it.
    Sat {
        /// `(canonical var index, value)` bindings.
        model: Vec<(usize, Value)>,
        /// Winning lane label at insertion time.
        winner: Option<String>,
    },
    /// Unsatisfiable (from an exact lane, or a complete lane whose bound
    /// certificate linted clean).
    Unsat {
        /// Winning lane label at insertion time.
        winner: Option<String>,
    },
}

impl CachedVerdict {
    /// The protocol verdict string.
    pub fn name(&self) -> &'static str {
        match self {
            CachedVerdict::Sat { .. } => "sat",
            CachedVerdict::Unsat { .. } => "unsat",
        }
    }
}

/// Tuning knobs for the answer cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total entry capacity across all shards (≥ 1).
    pub capacity: usize,
    /// Shard count (rounded up to at least 1; capacity is split evenly,
    /// remainder to the low shards).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            capacity: 4096,
            shards: 8,
        }
    }
}

/// Point-in-time cache counters, for health snapshots and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned an entry.
    pub hits: u64,
    /// Lookups that found nothing (including fingerprint collisions).
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

struct Slot {
    fingerprint: u128,
    key: String,
    verdict: CachedVerdict,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// One shard: an index by fingerprint plus a slab-backed LRU list.
struct Shard {
    index: HashMap<u128, usize>,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            index: HashMap::new(),
            slots: Vec::with_capacity(capacity.min(64)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, at: usize) {
        let (prev, next) = (self.slots[at].prev, self.slots[at].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, at: usize) {
        self.slots[at].prev = NIL;
        self.slots[at].next = self.head;
        match self.head {
            NIL => self.tail = at,
            h => self.slots[h].prev = at,
        }
        self.head = at;
    }

    fn get(&mut self, fingerprint: u128, key: &str) -> Option<CachedVerdict> {
        let at = *self.index.get(&fingerprint)?;
        if self.slots[at].key != key {
            // Fingerprint collision between distinct constraints: treat as
            // a miss rather than ever serving the wrong answer.
            return None;
        }
        self.unlink(at);
        self.push_front(at);
        Some(self.slots[at].verdict.clone())
    }

    /// Inserts an entry; returns `true` if another was evicted for room.
    fn insert(&mut self, fingerprint: u128, key: String, verdict: CachedVerdict) -> bool {
        if let Some(&at) = self.index.get(&fingerprint) {
            self.slots[at].key = key;
            self.slots[at].verdict = verdict;
            self.unlink(at);
            self.push_front(at);
            return false;
        }
        if self.slots.len() < self.capacity {
            let at = self.slots.len();
            self.slots.push(Slot {
                fingerprint,
                key,
                verdict,
                prev: NIL,
                next: NIL,
            });
            self.index.insert(fingerprint, at);
            self.push_front(at);
            false
        } else {
            // Recycle the least-recently-used slot in place.
            let at = self.tail;
            self.unlink(at);
            self.index.remove(&self.slots[at].fingerprint);
            self.slots[at].fingerprint = fingerprint;
            self.slots[at].key = key;
            self.slots[at].verdict = verdict;
            self.index.insert(fingerprint, at);
            self.push_front(at);
            true
        }
    }
}

/// The sharded answer cache. All methods take `&self`; each shard has its
/// own mutex and counters are atomics, so readers on distinct shards
/// never contend.
pub struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    entries: AtomicU64,
}

impl AnswerCache {
    /// Builds a cache with the given capacity split across shards.
    pub fn new(config: &CacheConfig) -> AnswerCache {
        let shard_count = config.shards.max(1);
        let capacity = config.capacity.max(1);
        let shards = (0..shard_count)
            .map(|i| {
                let per = capacity / shard_count + usize::from(i < capacity % shard_count);
                Mutex::new(Shard::new(per.max(1)))
            })
            .collect();
        AnswerCache {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }

    fn shard(&self, fingerprint: u128) -> &Mutex<Shard> {
        &self.shards[(fingerprint % self.shards.len() as u128) as usize]
    }

    /// Looks up a canonical constraint, promoting it on hit.
    pub fn get(&self, fingerprint: u128, key: &str) -> Option<CachedVerdict> {
        let got = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard poisoned")
            .get(fingerprint, key);
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Records a sound answer for a canonical constraint.
    pub fn insert(&self, fingerprint: u128, key: String, verdict: CachedVerdict) {
        let evicted = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard poisoned")
            .insert(fingerprint, key, verdict);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        } else {
            // Overwrites of an existing fingerprint also land here; the
            // entry gauge only counts net-new slots.
            let resident: u64 = self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").index.len() as u64)
                .sum();
            self.entries.store(resident, Ordering::Relaxed);
        }
    }

    /// Every resident entry, in no particular order — the snapshot
    /// writer's view. Holds one shard lock at a time.
    pub fn dump(&self) -> Vec<(u128, String, CachedVerdict)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            // Every slab slot is live: eviction recycles slots in place
            // rather than leaving tombstones.
            for slot in &shard.slots {
                out.push((slot.fingerprint, slot.key.clone(), slot.verdict.clone()));
            }
        }
        out
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staub_numeric::BigInt;

    fn sat(n: i64) -> CachedVerdict {
        CachedVerdict::Sat {
            model: vec![(0, Value::Int(BigInt::from(n)))],
            winner: Some("baseline/zed".into()),
        }
    }

    #[test]
    fn hit_returns_inserted_verdict() {
        let cache = AnswerCache::new(&CacheConfig::default());
        assert_eq!(cache.get(7, "k"), None);
        cache.insert(7, "k".into(), sat(3));
        assert_eq!(cache.get(7, "k"), Some(sat(3)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn fingerprint_collision_is_a_miss() {
        let cache = AnswerCache::new(&CacheConfig::default());
        cache.insert(7, "left".into(), sat(1));
        assert_eq!(cache.get(7, "right"), None);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_within_a_shard() {
        let cache = AnswerCache::new(&CacheConfig {
            capacity: 2,
            shards: 1,
        });
        cache.insert(1, "a".into(), sat(1));
        cache.insert(2, "b".into(), sat(2));
        assert!(cache.get(1, "a").is_some()); // promote a; b is now LRU
        cache.insert(3, "c".into(), sat(3));
        assert_eq!(cache.get(2, "b"), None, "b should have been evicted");
        assert!(cache.get(1, "a").is_some());
        assert!(cache.get(3, "c").is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn overwrite_same_fingerprint_keeps_one_entry() {
        let cache = AnswerCache::new(&CacheConfig {
            capacity: 4,
            shards: 1,
        });
        cache.insert(9, "k".into(), sat(1));
        cache.insert(9, "k".into(), CachedVerdict::Unsat { winner: None });
        assert_eq!(
            cache.get(9, "k"),
            Some(CachedVerdict::Unsat { winner: None })
        );
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn shards_split_capacity() {
        let cache = AnswerCache::new(&CacheConfig {
            capacity: 16,
            shards: 5,
        });
        for i in 0..64u128 {
            cache.insert(i, format!("k{i}"), sat(i as i64));
        }
        let stats = cache.stats();
        assert!(stats.entries <= 16, "entries {} > capacity", stats.entries);
        assert_eq!(stats.evictions, 64 - stats.entries);
    }
}
