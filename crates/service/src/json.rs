//! A minimal JSON reader for the wire protocol.
//!
//! The build environment ships no serde, and the protocol only needs to
//! *read* small flat objects (requests) — responses are rendered with the
//! same hand-rolled string pushing the batch JSONL writer uses. This
//! parser covers full JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null) with a nesting-depth cap mirroring the SMT-LIB
//! parser's crash-hardening stance: malformed or adversarially deep input
//! produces a structured [`JsonError`], never a panic or stack overflow.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by [`parse`]. Protocol requests are
/// depth ≤ 2; anything deeper is hostile or broken.
pub const MAX_JSON_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as f64 (protocol integers are well within
    /// the 2^53 exact range; [`Json::as_u64`] range-checks).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with sorted keys (later duplicates win).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact nonnegative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

/// A parse failure: position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_JSON_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err(format!("bad number `{text}`")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(JsonError {
                        at: self.pos,
                        message: "unterminated escape".into(),
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogates are replaced rather than paired:
                            // the protocol never sends them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return self.err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => return self.err("raw control character in string"),
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass
                    // through unvalidated bytes, so decode properly).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            at: self.pos,
                            message: "invalid UTF-8".into(),
                        })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

/// Parses one JSON value from `text` (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns [`JsonError`] with a byte offset on any malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after value");
    }
    Ok(v)
}

/// Appends a JSON-escaped string literal (with quotes) to `out`.
pub fn push_str_lit(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `"key":` with escaping.
pub fn push_key(out: &mut String, key: &str) {
    push_str_lit(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_shapes() {
        let v = parse(r#"{"op":"solve","id":"r1","timeout_ms":250,"no_cache":true}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("solve"));
        assert_eq!(v.get("timeout_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(v.get("no_cache").and_then(Json::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a":[1,2.5,null],"b":{"c":false}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Null]))
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
        let mut out = String::new();
        push_str_lit(&mut out, "a\"b\\c\nA");
        assert_eq!(parse(&out).unwrap().as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "nul",
            "1e9999",
            r#"{"a":1} extra"#,
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_cap_rejects_hostile_nesting() {
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        // Just below the cap parses fine.
        let ok = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn u64_range_checks() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("4000000").unwrap().as_u64(), Some(4_000_000));
    }
}
