//! The `staub serve` wire protocol: newline-delimited JSON.
//!
//! One request per line, one response line per request, over TCP or a
//! Unix socket. The grammar (also documented in DESIGN.md):
//!
//! ```text
//! request  := solve | health | shutdown
//! solve    := {"op":"solve", "constraint":"<smt2>",
//!              "id"?:string, "timeout_ms"?:int, "steps"?:int,
//!              "no_cache"?:bool}
//! health   := {"op":"health", "id"?:string}
//! shutdown := {"op":"shutdown", "id"?:string}
//!
//! response := ok-solve | ok-health | ok-shutdown | error | overloaded
//! ok-solve := {"id":string|null, "status":"ok", "verdict":"sat|unsat|unknown",
//!              "model":{name:value,...}|null, "winner":string|null,
//!              "cache":"hit|miss|off", "fingerprint":hex128,
//!              "wall_ms":float, "stats":object|null}
//! error    := {"id":string|null, "status":"error",
//!              "error":{"code":string, "message":string}}
//! overload := {"id":string|null, "status":"overloaded",
//!              "error":{"code":"overloaded", "message":string}}
//! ```
//!
//! Malformed lines, unknown `op`s, and lines longer than the server's
//! request-size cap all yield a structured `error` response; the size cap
//! and the SMT-LIB parser's nesting-depth cap together bound per-request
//! memory, mirroring the crash-hardening stance of the batch front end.

use std::io::{self, Read};

use crate::json::{self, Json};

/// Default cap on one request line, in bytes. Analogous to the parser's
/// nesting-depth cap: a bound enforced *before* any tree is built.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Machine-readable error codes carried in `error` responses.
pub mod codes {
    /// The line was not valid JSON.
    pub const BAD_JSON: &str = "bad-json";
    /// The JSON was valid but not a known request shape.
    pub const BAD_REQUEST: &str = "bad-request";
    /// The request line exceeded the server's size cap.
    pub const OVERSIZED: &str = "oversized";
    /// The SMT-LIB constraint failed to parse.
    pub const PARSE_ERROR: &str = "parse-error";
    /// The constraint has no assertions.
    pub const EMPTY_SCRIPT: &str = "empty-script";
    /// The server is at capacity; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining and no longer accepts work.
    pub const SHUTTING_DOWN: &str = "shutting-down";
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve one constraint.
    Solve(SolveRequest),
    /// Report liveness, build info, and a metrics snapshot.
    Health {
        /// Client-chosen correlation id, echoed back.
        id: Option<String>,
    },
    /// Begin a graceful drain (the protocol twin of SIGINT).
    Shutdown {
        /// Client-chosen correlation id, echoed back.
        id: Option<String>,
    },
}

/// The `solve` request payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Client-chosen correlation id, echoed back in the response.
    pub id: Option<String>,
    /// The SMT-LIB constraint text.
    pub constraint: String,
    /// Per-request wall-clock budget override (clamped to the server's).
    pub timeout_ms: Option<u64>,
    /// Per-request step budget override (clamped to the server's).
    pub steps: Option<u64>,
    /// Bypass the answer cache for this request.
    pub no_cache: bool,
}

/// A structured protocol failure: code plus human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Details for the human on the other end.
    pub message: String,
}

impl ProtocolError {
    fn new(code: &'static str, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code,
            message: message.into(),
        }
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`ProtocolError`] (ready to serialise with
/// [`error_reply`]) on malformed JSON or an unrecognised shape.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let value =
        json::parse(line).map_err(|e| ProtocolError::new(codes::BAD_JSON, e.to_string()))?;
    let id = value.get("id").and_then(Json::as_str).map(str::to_string);
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new(codes::BAD_REQUEST, "missing string field `op`"))?;
    match op {
        "health" => Ok(Request::Health { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "solve" => {
            let constraint = value
                .get("constraint")
                .and_then(Json::as_str)
                .ok_or_else(|| {
                    ProtocolError::new(codes::BAD_REQUEST, "solve needs a string `constraint`")
                })?
                .to_string();
            let num = |field: &str| -> Result<Option<u64>, ProtocolError> {
                match value.get(field) {
                    None | Some(Json::Null) => Ok(None),
                    Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                        ProtocolError::new(
                            codes::BAD_REQUEST,
                            format!("`{field}` must be a nonnegative integer"),
                        )
                    }),
                }
            };
            Ok(Request::Solve(SolveRequest {
                id,
                constraint,
                timeout_ms: num("timeout_ms")?,
                steps: num("steps")?,
                no_cache: value
                    .get("no_cache")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            }))
        }
        other => Err(ProtocolError::new(
            codes::BAD_REQUEST,
            format!("unknown op `{other}`"),
        )),
    }
}

fn push_id(out: &mut String, id: Option<&str>) {
    json::push_key(out, "id");
    match id {
        Some(id) => json::push_str_lit(out, id),
        None => out.push_str("null"),
    }
    out.push(',');
}

/// Renders an `error` response line (no trailing newline).
pub fn error_reply(id: Option<&str>, code: &str, message: &str) -> String {
    let mut out = String::with_capacity(96);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"status\":\"error\",\"error\":{");
    json::push_key(&mut out, "code");
    json::push_str_lit(&mut out, code);
    out.push(',');
    json::push_key(&mut out, "message");
    json::push_str_lit(&mut out, message);
    out.push_str("}}");
    out
}

/// Renders the admission-control `overloaded` response line.
pub fn overloaded_reply(id: Option<&str>) -> String {
    let mut out = String::with_capacity(96);
    out.push('{');
    push_id(&mut out, id);
    out.push_str(
        "\"status\":\"overloaded\",\"error\":{\"code\":\"overloaded\",\
         \"message\":\"request queue full; retry later\"}}",
    );
    out
}

/// A successful `solve` response, ready to serialise.
#[derive(Debug, Clone)]
pub struct SolveReply {
    /// Echoed correlation id.
    pub id: Option<String>,
    /// `sat` / `unsat` / `unknown`.
    pub verdict: &'static str,
    /// Variable assignments (name, printed value) for `sat`.
    pub model: Option<Vec<(String, String)>>,
    /// Winning lane label, when the scheduler ran.
    pub winner: Option<String>,
    /// `hit` / `miss` / `off`.
    pub cache: &'static str,
    /// The canonical fingerprint, as 32 hex digits.
    pub fingerprint: String,
    /// End-to-end request time on the server.
    pub wall_ms: f64,
    /// The PR-3 stats block (a JSON object), when the scheduler ran.
    pub stats_json: Option<String>,
}

impl SolveReply {
    /// Renders the response line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_id(&mut out, self.id.as_deref());
        out.push_str("\"status\":\"ok\",\"verdict\":\"");
        out.push_str(self.verdict);
        out.push_str("\",\"model\":");
        match &self.model {
            None => out.push_str("null"),
            Some(bindings) => {
                out.push('{');
                for (i, (name, value)) in bindings.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::push_key(&mut out, name);
                    json::push_str_lit(&mut out, value);
                }
                out.push('}');
            }
        }
        out.push_str(",\"winner\":");
        match &self.winner {
            Some(w) => json::push_str_lit(&mut out, w),
            None => out.push_str("null"),
        }
        out.push_str(",\"cache\":\"");
        out.push_str(self.cache);
        out.push_str("\",\"fingerprint\":");
        json::push_str_lit(&mut out, &self.fingerprint);
        out.push_str(&format!(",\"wall_ms\":{:.3},\"stats\":", self.wall_ms));
        match &self.stats_json {
            Some(s) => out.push_str(s),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// Outcome of reading one line under a byte cap.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (without the newline).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// No full line yet (read timed out) — poll again; buffered partial
    /// input is retained.
    Idle,
    /// The line exceeded the cap. The connection should answer and close.
    TooLong,
    /// The bytes were not valid UTF-8.
    BadUtf8,
}

/// Reads newline-delimited requests with a size cap, resilient to read
/// timeouts (used so connection threads can poll the shutdown flag while
/// idle) and to pipelined requests (bytes after the newline are kept).
#[derive(Debug)]
pub struct LineReader {
    buf: Vec<u8>,
    max_line: usize,
}

impl LineReader {
    /// A reader enforcing `max_line` bytes per request line.
    pub fn new(max_line: usize) -> LineReader {
        LineReader {
            buf: Vec::new(),
            max_line,
        }
    }

    /// Pulls from `src` until a newline, EOF, timeout, or the cap.
    pub fn next_line(&mut self, src: &mut impl Read) -> io::Result<LineRead> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(match String::from_utf8(line) {
                    Ok(s) => LineRead::Line(s),
                    Err(_) => LineRead::BadUtf8,
                });
            }
            if self.buf.len() > self.max_line {
                self.buf.clear();
                return Ok(LineRead::TooLong);
            }
            let mut chunk = [0u8; 4096];
            match src.read(&mut chunk) {
                Ok(0) => return Ok(LineRead::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineRead::Idle)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_request_round_trip() {
        let req = parse_request(
            r#"{"op":"solve","id":"r7","constraint":"(assert true)","steps":1000,"no_cache":true}"#,
        )
        .unwrap();
        match req {
            Request::Solve(s) => {
                assert_eq!(s.id.as_deref(), Some("r7"));
                assert_eq!(s.constraint, "(assert true)");
                assert_eq!(s.steps, Some(1000));
                assert_eq!(s.timeout_ms, None);
                assert!(s.no_cache);
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn health_and_shutdown_parse() {
        assert_eq!(
            parse_request(r#"{"op":"health"}"#).unwrap(),
            Request::Health { id: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown","id":"x"}"#).unwrap(),
            Request::Shutdown {
                id: Some("x".into())
            }
        );
    }

    #[test]
    fn malformed_requests_get_codes() {
        assert_eq!(parse_request("{").unwrap_err().code, codes::BAD_JSON);
        assert_eq!(parse_request("{}").unwrap_err().code, codes::BAD_REQUEST);
        assert_eq!(
            parse_request(r#"{"op":"solve"}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            parse_request(r#"{"op":"solve","constraint":"x","steps":-4}"#)
                .unwrap_err()
                .code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            parse_request(r#"{"op":"fly"}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
    }

    #[test]
    fn replies_are_parseable_json() {
        let err = error_reply(Some("a"), codes::PARSE_ERROR, "line 3: what");
        let v = crate::json::parse(&err).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("parse-error")
        );
        let over = overloaded_reply(None);
        let v = crate::json::parse(&over).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("id"), Some(&Json::Null));

        let reply = SolveReply {
            id: Some("q".into()),
            verdict: "sat",
            model: Some(vec![("x".into(), "7".into())]),
            winner: Some("staub/x1/zed".into()),
            cache: "miss",
            fingerprint: "ab".repeat(16),
            wall_ms: 1.5,
            stats_json: Some("{\"stages\":{}}".into()),
        };
        let v = crate::json::parse(&reply.to_json()).unwrap();
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("sat"));
        assert_eq!(
            v.get("model")
                .and_then(|m| m.get("x"))
                .and_then(Json::as_str),
            Some("7")
        );
        assert!(v.get("stats").unwrap().get("stages").is_some());
    }

    #[test]
    fn line_reader_caps_and_pipelines() {
        let mut reader = LineReader::new(16);
        let mut src = io::Cursor::new(b"{\"op\":1}\nsecond\n".to_vec());
        match reader.next_line(&mut src).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "{\"op\":1}"),
            other => panic!("{other:?}"),
        }
        match reader.next_line(&mut src).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "second"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(reader.next_line(&mut src).unwrap(), LineRead::Eof));

        let mut reader = LineReader::new(8);
        let mut src = io::Cursor::new(vec![b'a'; 64]);
        assert!(matches!(
            reader.next_line(&mut src).unwrap(),
            LineRead::TooLong
        ));
    }

    #[test]
    fn line_reader_strips_crlf() {
        let mut reader = LineReader::new(64);
        let mut src = io::Cursor::new(b"hello\r\n".to_vec());
        match reader.next_line(&mut src).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "hello"),
            other => panic!("{other:?}"),
        }
    }
}
