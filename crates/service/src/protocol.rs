//! The `staub serve` wire protocol: newline-delimited JSON.
//!
//! One request per line, one response line per request, over TCP or a
//! Unix socket. Every request and response carries a protocol version
//! field `"v"` (absent means `1`); versions above [`PROTOCOL_VERSION`]
//! get a structured `unsupported_version` error instead of a parse
//! failure, so future revisions degrade gracefully on old servers. The
//! grammar (also documented in DESIGN.md):
//!
//! ```text
//! request  := solve | health | shutdown
//!           | session-open | session-assert | session-check | session-close
//! solve    := {"op":"solve", "v"?:1, "constraint":"<smt2>",
//!              "id"?:string, "timeout_ms"?:int, "steps"?:int,
//!              "no_cache"?:bool, "route"?:[string,...]}   (route: v3)
//! health   := {"op":"health", "v"?:1, "id"?:string}
//! shutdown := {"op":"shutdown", "v"?:1, "id"?:string}
//!
//! session-open  := {"op":"session_open", "v":2, "id"?:string,
//!                   "timeout_ms"?:int, "steps"?:int}
//! session-assert:= {"op":"assert", "v":2, "session":string,
//!                   "constraint":"<smt2 fragment>", "id"?:string}
//! session-check := {"op":"check", "v":2, "session":string,
//!                   "id"?:string, "no_cache"?:bool}
//! session-close := {"op":"session_close", "v":2, "session":string,
//!                   "id"?:string}
//!
//! response := ok-solve | ok-health | ok-shutdown | ok-session
//!           | error | overloaded
//! ok-solve := {"v":int, "id":string|null, "status":"ok",
//!              "verdict":"sat|unsat|unknown",
//!              "model":{name:value,...}|null, "winner":string|null,
//!              "provenance":{"label":string, "multiplier":int,
//!                            "steps":int}|null,
//!              "cache":"hit|miss|off", "fingerprint":hex128,
//!              "wall_ms":float, "stats":object|null,
//!              "route"?:[string,...]}                     (route: v3)
//! error    := {"v":int, "id":string|null, "status":"error",
//!              "error":{"code":string, "message":string,
//!                       "limit"?:int, "observed"?:int}}
//! overload := {"v":int, "id":string|null, "status":"overloaded",
//!              "error":{"code":"overloaded", "message":string,
//!                       "inflight"?:int, "waiting"?:int}}
//! ```
//!
//! Version 3 adds the `route` hop list: a front node (`staub route`)
//! forwards `solve` requests to the backend owning the constraint's
//! canonical fingerprint, appending its own name to `route`; the backend
//! appends its name in the reply, so a client can see the path its
//! request took. A request whose `route` already names the receiving hop
//! is refused (`routing-loop`) rather than forwarded again. Version 3
//! also makes the `oversized` and `overloaded` errors self-describing
//! (configured limit + observed length; current inflight + waiting) and
//! adds the `persist` block to `health` replies.
//!
//! `session_open` answers `{"v":2, ..., "session":string}`; `assert`
//! echoes the session plus the current `level`; `check` answers the
//! ok-solve shape plus `"session"`; `session_close` answers
//! `{..., "closed":true}`. Session state lives on the connection: a
//! closed connection drops its sessions.
//!
//! Malformed lines, unknown `op`s, and lines longer than the server's
//! request-size cap all yield a structured `error` response; the size cap
//! and the SMT-LIB parser's nesting-depth cap together bound per-request
//! memory, mirroring the crash-hardening stance of the batch front end.

use std::io::{self, Read};

use crate::json::{self, Json};

/// Default cap on one request line, in bytes. Analogous to the parser's
/// nesting-depth cap: a bound enforced *before* any tree is built.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Highest protocol version this build speaks. Version 1 is the original
/// stateless request/response protocol; version 2 adds the incremental
/// session commands; version 3 adds the `route` hop, the `persist`
/// health block, and self-describing `oversized`/`overloaded` errors.
pub const PROTOCOL_VERSION: u32 = 3;

/// Machine-readable error codes carried in `error` responses.
pub mod codes {
    /// The line was not valid JSON.
    pub const BAD_JSON: &str = "bad-json";
    /// The JSON was valid but not a known request shape.
    pub const BAD_REQUEST: &str = "bad-request";
    /// The request line exceeded the server's size cap.
    pub const OVERSIZED: &str = "oversized";
    /// The SMT-LIB constraint failed to parse.
    pub const PARSE_ERROR: &str = "parse-error";
    /// The constraint has no assertions.
    pub const EMPTY_SCRIPT: &str = "empty-script";
    /// The server is at capacity; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining and no longer accepts work.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The request's `"v"` is newer than this server speaks.
    pub const UNSUPPORTED_VERSION: &str = "unsupported_version";
    /// A session command named a session this connection never opened
    /// (or already closed).
    pub const UNKNOWN_SESSION: &str = "unknown-session";
    /// The request's `route` list already names this hop — forwarding it
    /// again would cycle (v3).
    pub const ROUTING_LOOP: &str = "routing-loop";
    /// A front node could not reach any backend for this fingerprint
    /// (v3).
    pub const NO_BACKEND: &str = "no-backend";
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve one constraint.
    Solve(SolveRequest),
    /// Report liveness, build info, and a metrics snapshot.
    Health {
        /// Client-chosen correlation id, echoed back.
        id: Option<String>,
    },
    /// Begin a graceful drain (the protocol twin of SIGINT).
    Shutdown {
        /// Client-chosen correlation id, echoed back.
        id: Option<String>,
    },
    /// Open an incremental solving session on this connection (v2).
    SessionOpen {
        /// Client-chosen correlation id, echoed back.
        id: Option<String>,
        /// Per-check wall-clock budget (clamped to the server's).
        timeout_ms: Option<u64>,
        /// Per-check step budget (clamped to the server's).
        steps: Option<u64>,
    },
    /// Append an assertion fragment to an open session (v2).
    SessionAssert {
        /// Client-chosen correlation id, echoed back.
        id: Option<String>,
        /// The session name returned by `session_open`.
        session: String,
        /// SMT-LIB fragment (declarations and assertions).
        constraint: String,
    },
    /// Check the session's accumulated assertions (v2). The warm solver
    /// state persists across checks; the answer cache is consulted first.
    SessionCheck {
        /// Client-chosen correlation id, echoed back.
        id: Option<String>,
        /// The session name returned by `session_open`.
        session: String,
        /// Bypass the answer cache for this check.
        no_cache: bool,
    },
    /// Drop a session and its solver state (v2).
    SessionClose {
        /// Client-chosen correlation id, echoed back.
        id: Option<String>,
        /// The session name returned by `session_open`.
        session: String,
    },
}

/// The `solve` request payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Client-chosen correlation id, echoed back in the response.
    pub id: Option<String>,
    /// The SMT-LIB constraint text.
    pub constraint: String,
    /// Per-request wall-clock budget override (clamped to the server's).
    pub timeout_ms: Option<u64>,
    /// Per-request step budget override (clamped to the server's).
    pub steps: Option<u64>,
    /// Bypass the answer cache for this request.
    pub no_cache: bool,
    /// The hops this request has already traversed (v3). A front node
    /// appends its name before forwarding; a hop that finds itself here
    /// refuses the request instead of looping.
    pub route: Vec<String>,
}

/// A structured protocol failure: code plus human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Details for the human on the other end.
    pub message: String,
}

impl ProtocolError {
    fn new(code: &'static str, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code,
            message: message.into(),
        }
    }
}

/// Parses one request line. Returns the request's protocol version
/// (defaulting to 1 when the `"v"` field is absent) alongside the
/// request, so replies can echo it.
///
/// # Errors
///
/// Returns a [`ProtocolError`] (ready to serialise with
/// [`error_reply`]) on malformed JSON, an unrecognised shape, or a
/// version newer than [`PROTOCOL_VERSION`].
pub fn parse_request(line: &str) -> Result<(u32, Request), ProtocolError> {
    let value =
        json::parse(line).map_err(|e| ProtocolError::new(codes::BAD_JSON, e.to_string()))?;
    let v = match value.get("v") {
        None | Some(Json::Null) => 1,
        Some(field) => match field.as_u64() {
            Some(n @ 1..) if n <= u64::from(PROTOCOL_VERSION) => n as u32,
            Some(n @ 1..) => {
                return Err(ProtocolError::new(
                    codes::UNSUPPORTED_VERSION,
                    format!(
                    "protocol version {n} not supported; this server speaks 1..={PROTOCOL_VERSION}"
                ),
                ))
            }
            _ => {
                return Err(ProtocolError::new(
                    codes::BAD_REQUEST,
                    "`v` must be a positive integer",
                ))
            }
        },
    };
    let id = value.get("id").and_then(Json::as_str).map(str::to_string);
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new(codes::BAD_REQUEST, "missing string field `op`"))?;
    let num = |field: &str| -> Result<Option<u64>, ProtocolError> {
        match value.get(field) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                ProtocolError::new(
                    codes::BAD_REQUEST,
                    format!("`{field}` must be a nonnegative integer"),
                )
            }),
        }
    };
    let string_field = |field: &str| -> Result<String, ProtocolError> {
        value
            .get(field)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| {
                ProtocolError::new(
                    codes::BAD_REQUEST,
                    format!("`{op}` needs a string `{field}`"),
                )
            })
    };
    let require_v2 = || -> Result<(), ProtocolError> {
        if v < 2 {
            return Err(ProtocolError::new(
                codes::BAD_REQUEST,
                format!("`{op}` is a session command; send it with \"v\":2"),
            ));
        }
        Ok(())
    };
    let request = match op {
        "health" => Request::Health { id },
        "shutdown" => Request::Shutdown { id },
        "solve" => {
            let route = match value.get("route") {
                None | Some(Json::Null) => Vec::new(),
                Some(Json::Arr(hops)) => {
                    if v < 3 {
                        return Err(ProtocolError::new(
                            codes::BAD_REQUEST,
                            "`route` is a v3 field; send it with \"v\":3",
                        ));
                    }
                    let mut out = Vec::with_capacity(hops.len());
                    for hop in hops {
                        match hop.as_str() {
                            Some(s) => out.push(s.to_string()),
                            None => {
                                return Err(ProtocolError::new(
                                    codes::BAD_REQUEST,
                                    "`route` must be an array of strings",
                                ))
                            }
                        }
                    }
                    out
                }
                Some(_) => {
                    return Err(ProtocolError::new(
                        codes::BAD_REQUEST,
                        "`route` must be an array of strings",
                    ))
                }
            };
            Request::Solve(SolveRequest {
                id,
                constraint: string_field("constraint")?,
                timeout_ms: num("timeout_ms")?,
                steps: num("steps")?,
                no_cache: value
                    .get("no_cache")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                route,
            })
        }
        "session_open" => {
            require_v2()?;
            Request::SessionOpen {
                id,
                timeout_ms: num("timeout_ms")?,
                steps: num("steps")?,
            }
        }
        "assert" => {
            require_v2()?;
            Request::SessionAssert {
                id,
                session: string_field("session")?,
                constraint: string_field("constraint")?,
            }
        }
        "check" => {
            require_v2()?;
            Request::SessionCheck {
                id,
                session: string_field("session")?,
                no_cache: value
                    .get("no_cache")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            }
        }
        "session_close" => {
            require_v2()?;
            Request::SessionClose {
                id,
                session: string_field("session")?,
            }
        }
        other => {
            return Err(ProtocolError::new(
                codes::BAD_REQUEST,
                format!("unknown op `{other}`"),
            ))
        }
    };
    Ok((v, request))
}

fn push_head(out: &mut String, v: u32, id: Option<&str>) {
    out.push_str(&format!("\"v\":{v},"));
    json::push_key(out, "id");
    match id {
        Some(id) => json::push_str_lit(out, id),
        None => out.push_str("null"),
    }
    out.push(',');
}

/// Renders an `error` response line (no trailing newline), echoing the
/// request's protocol version.
pub fn error_reply(v: u32, id: Option<&str>, code: &str, message: &str) -> String {
    let mut out = String::with_capacity(96);
    out.push('{');
    push_head(&mut out, v, id);
    out.push_str("\"status\":\"error\",\"error\":{");
    json::push_key(&mut out, "code");
    json::push_str_lit(&mut out, code);
    out.push(',');
    json::push_key(&mut out, "message");
    json::push_str_lit(&mut out, message);
    out.push_str("}}");
    out
}

/// Renders the admission-control `overloaded` response line, carrying
/// the gate's current occupancy so a load generator can tell shed
/// (inflight at the cap) from stall (waiting deep).
pub fn overloaded_reply(v: u32, id: Option<&str>, inflight: usize, waiting: usize) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    push_head(&mut out, v, id);
    out.push_str(&format!(
        "\"status\":\"overloaded\",\"error\":{{\"code\":\"overloaded\",\
         \"message\":\"request queue full; retry later\",\
         \"inflight\":{inflight},\"waiting\":{waiting}}}}}"
    ));
    out
}

/// Renders the request-size-cap `oversized` error, naming the configured
/// limit and how many bytes had arrived when the cap tripped (the true
/// line is at least that long — the server stops buffering at the cap).
pub fn oversized_reply(v: u32, limit: usize, observed: usize) -> String {
    let mut out = String::with_capacity(160);
    out.push('{');
    push_head(&mut out, v, None);
    out.push_str(&format!(
        "\"status\":\"error\",\"error\":{{\"code\":\"{}\",\
         \"message\":\"request line exceeds the {limit}-byte cap \
         ({observed} bytes buffered before giving up)\",\
         \"limit\":{limit},\"observed\":{observed}}}}}",
        codes::OVERSIZED
    ));
    out
}

/// Renders a simple session-command `ok` reply (`session_open`,
/// `assert`, `session_close`). `extra` is appended verbatim as
/// additional, already-serialised JSON members (e.g. `"level":3`);
/// empty adds nothing.
pub fn session_reply(v: u32, id: Option<&str>, session: &str, extra: &str) -> String {
    let mut out = String::with_capacity(96);
    out.push('{');
    push_head(&mut out, v, id);
    json::push_key(&mut out, "session");
    json::push_str_lit(&mut out, session);
    out.push_str(",\"status\":\"ok\"");
    if !extra.is_empty() {
        out.push(',');
        out.push_str(extra);
    }
    out.push('}');
    out
}

/// A successful `solve` (or session `check`) response, ready to
/// serialise.
#[derive(Debug, Clone)]
pub struct SolveReply {
    /// Protocol version to echo (1 for `solve`, 2 for session checks).
    pub v: u32,
    /// Echoed correlation id.
    pub id: Option<String>,
    /// The session this check ran in (session checks only).
    pub session: Option<String>,
    /// `sat` / `unsat` / `unknown`.
    pub verdict: &'static str,
    /// Variable assignments (name, printed value) for `sat`.
    pub model: Option<Vec<(String, String)>>,
    /// Winning lane label, when the scheduler ran.
    pub winner: Option<String>,
    /// Which lane/width produced the verdict, when a pipeline ran
    /// (absent on cache hits, where no lane ran).
    pub provenance: Option<staub_core::Provenance>,
    /// `hit` / `miss` / `off`.
    pub cache: &'static str,
    /// The canonical fingerprint, as 32 hex digits.
    pub fingerprint: String,
    /// End-to-end request time on the server.
    pub wall_ms: f64,
    /// The PR-3 stats block (a JSON object), when the scheduler ran.
    pub stats_json: Option<String>,
    /// The hops this request traversed, this server's own name last
    /// (v3; omitted from the reply when empty).
    pub route: Vec<String>,
}

impl SolveReply {
    /// Renders the response line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_head(&mut out, self.v, self.id.as_deref());
        if let Some(session) = &self.session {
            json::push_key(&mut out, "session");
            json::push_str_lit(&mut out, session);
            out.push(',');
        }
        out.push_str("\"status\":\"ok\",\"verdict\":\"");
        out.push_str(self.verdict);
        out.push_str("\",\"model\":");
        match &self.model {
            None => out.push_str("null"),
            Some(bindings) => {
                out.push('{');
                for (i, (name, value)) in bindings.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::push_key(&mut out, name);
                    json::push_str_lit(&mut out, value);
                }
                out.push('}');
            }
        }
        out.push_str(",\"winner\":");
        match &self.winner {
            Some(w) => json::push_str_lit(&mut out, w),
            None => out.push_str("null"),
        }
        out.push_str(",\"provenance\":");
        match &self.provenance {
            Some(p) => {
                out.push('{');
                json::push_key(&mut out, "label");
                json::push_str_lit(&mut out, &p.label);
                out.push_str(&format!(
                    ",\"multiplier\":{},\"steps\":{}}}",
                    p.multiplier, p.steps
                ));
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"cache\":\"");
        out.push_str(self.cache);
        out.push_str("\",\"fingerprint\":");
        json::push_str_lit(&mut out, &self.fingerprint);
        out.push_str(&format!(",\"wall_ms\":{:.3},\"stats\":", self.wall_ms));
        match &self.stats_json {
            Some(s) => out.push_str(s),
            None => out.push_str("null"),
        }
        if !self.route.is_empty() {
            out.push_str(",\"route\":[");
            for (i, hop) in self.route.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_str_lit(&mut out, hop);
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Outcome of reading one line under a byte cap.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (without the newline).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// No full line yet (read timed out) — poll again; buffered partial
    /// input is retained.
    Idle,
    /// The line exceeded the cap. The connection should answer (naming
    /// the cap and how much had been buffered) and close.
    TooLong {
        /// Bytes buffered when the cap tripped — a lower bound on the
        /// true line length.
        observed: usize,
    },
    /// The bytes were not valid UTF-8.
    BadUtf8,
}

/// Reads newline-delimited requests with a size cap, resilient to read
/// timeouts (used so connection threads can poll the shutdown flag while
/// idle) and to pipelined requests (bytes after the newline are kept).
#[derive(Debug)]
pub struct LineReader {
    buf: Vec<u8>,
    max_line: usize,
}

impl LineReader {
    /// A reader enforcing `max_line` bytes per request line.
    pub fn new(max_line: usize) -> LineReader {
        LineReader {
            buf: Vec::new(),
            max_line,
        }
    }

    /// Pulls from `src` until a newline, EOF, timeout, or the cap.
    pub fn next_line(&mut self, src: &mut impl Read) -> io::Result<LineRead> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                // The cap applies to the framed line as well: a fast
                // sender can land line + newline in a single read, and
                // that must not bypass the limit.
                if pos > self.max_line {
                    self.buf = self.buf.split_off(pos + 1);
                    return Ok(LineRead::TooLong { observed: pos });
                }
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(match String::from_utf8(line) {
                    Ok(s) => LineRead::Line(s),
                    Err(_) => LineRead::BadUtf8,
                });
            }
            if self.buf.len() > self.max_line {
                let observed = self.buf.len();
                self.buf.clear();
                return Ok(LineRead::TooLong { observed });
            }
            let mut chunk = [0u8; 4096];
            match src.read(&mut chunk) {
                Ok(0) => return Ok(LineRead::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineRead::Idle)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_request_round_trip() {
        let (v, req) = parse_request(
            r#"{"op":"solve","id":"r7","constraint":"(assert true)","steps":1000,"no_cache":true}"#,
        )
        .unwrap();
        assert_eq!(v, 1);
        match req {
            Request::Solve(s) => {
                assert_eq!(s.id.as_deref(), Some("r7"));
                assert_eq!(s.constraint, "(assert true)");
                assert_eq!(s.steps, Some(1000));
                assert_eq!(s.timeout_ms, None);
                assert!(s.no_cache);
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn health_and_shutdown_parse() {
        assert_eq!(
            parse_request(r#"{"op":"health"}"#).unwrap(),
            (1, Request::Health { id: None })
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown","v":1,"id":"x"}"#).unwrap(),
            (
                1,
                Request::Shutdown {
                    id: Some("x".into())
                }
            )
        );
    }

    #[test]
    fn version_negotiation() {
        // Explicit current versions pass through.
        assert_eq!(parse_request(r#"{"op":"health","v":2}"#).unwrap().0, 2);
        // A future version is refused with its own code, not a parse
        // failure.
        let err = parse_request(r#"{"op":"health","v":9}"#).unwrap_err();
        assert_eq!(err.code, codes::UNSUPPORTED_VERSION);
        assert!(err.message.contains("1..=3"), "{}", err.message);
        // Zero and non-integers are malformed, not "future".
        assert_eq!(
            parse_request(r#"{"op":"health","v":0}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            parse_request(r#"{"op":"health","v":"two"}"#)
                .unwrap_err()
                .code,
            codes::BAD_REQUEST
        );
    }

    #[test]
    fn session_commands_parse_at_v2_only() {
        let (v, req) =
            parse_request(r#"{"op":"session_open","v":2,"id":"s","steps":500}"#).unwrap();
        assert_eq!(v, 2);
        assert_eq!(
            req,
            Request::SessionOpen {
                id: Some("s".into()),
                timeout_ms: None,
                steps: Some(500),
            }
        );
        let (_, req) =
            parse_request(r#"{"op":"assert","v":2,"session":"s1","constraint":"(assert true)"}"#)
                .unwrap();
        assert_eq!(
            req,
            Request::SessionAssert {
                id: None,
                session: "s1".into(),
                constraint: "(assert true)".into(),
            }
        );
        let (_, req) =
            parse_request(r#"{"op":"check","v":2,"session":"s1","no_cache":true}"#).unwrap();
        assert_eq!(
            req,
            Request::SessionCheck {
                id: None,
                session: "s1".into(),
                no_cache: true,
            }
        );
        let (_, req) = parse_request(r#"{"op":"session_close","v":2,"session":"s1"}"#).unwrap();
        assert_eq!(
            req,
            Request::SessionClose {
                id: None,
                session: "s1".into(),
            }
        );
        // The same ops without v:2 are rejected — old servers would not
        // know them, and old clients cannot send them by accident.
        for line in [
            r#"{"op":"session_open"}"#,
            r#"{"op":"assert","session":"s1","constraint":"x"}"#,
            r#"{"op":"check","session":"s1"}"#,
            r#"{"op":"session_close","session":"s1"}"#,
        ] {
            assert_eq!(parse_request(line).unwrap_err().code, codes::BAD_REQUEST);
        }
    }

    #[test]
    fn malformed_requests_get_codes() {
        assert_eq!(parse_request("{").unwrap_err().code, codes::BAD_JSON);
        assert_eq!(parse_request("{}").unwrap_err().code, codes::BAD_REQUEST);
        assert_eq!(
            parse_request(r#"{"op":"solve"}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            parse_request(r#"{"op":"solve","constraint":"x","steps":-4}"#)
                .unwrap_err()
                .code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            parse_request(r#"{"op":"fly"}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            parse_request(r#"{"op":"check","v":2}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
    }

    #[test]
    fn replies_are_parseable_json() {
        let err = error_reply(1, Some("a"), codes::PARSE_ERROR, "line 3: what");
        let v = crate::json::parse(&err).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("parse-error")
        );
        let over = overloaded_reply(1, None, 0, 0);
        let v = crate::json::parse(&over).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("id"), Some(&Json::Null));

        let sess = session_reply(2, Some("o"), "s1", "\"closed\":true");
        let v = crate::json::parse(&sess).unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("session").and_then(Json::as_str), Some("s1"));
        assert_eq!(v.get("closed").and_then(Json::as_bool), Some(true));

        let reply = SolveReply {
            v: 2,
            id: Some("q".into()),
            session: Some("s1".into()),
            verdict: "sat",
            model: Some(vec![("x".into(), "7".into())]),
            winner: Some("staub/x1/zed".into()),
            provenance: Some(staub_core::Provenance {
                label: "staub/x1/zed".into(),
                multiplier: 1,
                steps: 42,
            }),
            cache: "miss",
            fingerprint: "ab".repeat(16),
            wall_ms: 1.5,
            stats_json: Some("{\"stages\":{}}".into()),
            route: vec!["route:front".into(), "serve:back0".into()],
        };
        let v = crate::json::parse(&reply.to_json()).unwrap();
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("sat"));
        assert_eq!(v.get("session").and_then(Json::as_str), Some("s1"));
        assert_eq!(
            v.get("model")
                .and_then(|m| m.get("x"))
                .and_then(Json::as_str),
            Some("7")
        );
        assert_eq!(
            v.get("provenance")
                .and_then(|p| p.get("multiplier"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(v.get("stats").unwrap().get("stages").is_some());
    }

    #[test]
    fn line_reader_caps_and_pipelines() {
        let mut reader = LineReader::new(16);
        let mut src = io::Cursor::new(b"{\"op\":1}\nsecond\n".to_vec());
        match reader.next_line(&mut src).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "{\"op\":1}"),
            other => panic!("{other:?}"),
        }
        match reader.next_line(&mut src).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "second"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(reader.next_line(&mut src).unwrap(), LineRead::Eof));

        let mut reader = LineReader::new(8);
        let mut src = io::Cursor::new(vec![b'a'; 64]);
        match reader.next_line(&mut src).unwrap() {
            LineRead::TooLong { observed } => assert!(observed > 8, "observed {observed}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn route_hops_parse_at_v3_only() {
        let (v, req) = parse_request(
            r#"{"op":"solve","v":3,"constraint":"(assert true)","route":["route:front"]}"#,
        )
        .unwrap();
        assert_eq!(v, 3);
        match req {
            Request::Solve(s) => assert_eq!(s.route, vec!["route:front".to_string()]),
            other => panic!("wrong shape: {other:?}"),
        }
        // Absent route is an empty hop list at any version.
        let (_, req) = parse_request(r#"{"op":"solve","constraint":"x"}"#).unwrap();
        match req {
            Request::Solve(s) => assert!(s.route.is_empty()),
            other => panic!("wrong shape: {other:?}"),
        }
        // Pre-v3 requests cannot smuggle the field, and non-string hops
        // are malformed.
        for bad in [
            r#"{"op":"solve","v":2,"constraint":"x","route":["a"]}"#,
            r#"{"op":"solve","v":3,"constraint":"x","route":[1]}"#,
            r#"{"op":"solve","v":3,"constraint":"x","route":"a"}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().code, codes::BAD_REQUEST);
        }
    }

    #[test]
    fn v3_errors_are_self_describing() {
        let over = overloaded_reply(3, Some("q"), 4, 17);
        let v = crate::json::parse(&over).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("inflight").and_then(Json::as_u64), Some(4));
        assert_eq!(err.get("waiting").and_then(Json::as_u64), Some(17));

        let big = oversized_reply(1, 1 << 20, 1_052_672);
        let v = crate::json::parse(&big).unwrap();
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").and_then(Json::as_str), Some("oversized"));
        assert_eq!(err.get("limit").and_then(Json::as_u64), Some(1 << 20));
        assert_eq!(err.get("observed").and_then(Json::as_u64), Some(1_052_672));
    }

    #[test]
    fn line_reader_strips_crlf() {
        let mut reader = LineReader::new(64);
        let mut src = io::Cursor::new(b"hello\r\n".to_vec());
        match reader.next_line(&mut src).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "hello"),
            other => panic!("{other:?}"),
        }
    }
}
