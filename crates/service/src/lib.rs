//! STAUB solver-as-a-service: the `staub serve` daemon, its wire
//! protocol, the canonical-constraint answer cache, and client drivers.
//!
//! The batch front end (`staub batch`) amortises solver setup across one
//! process invocation; this crate amortises it across a *process
//! lifetime*. A long-running server accepts newline-delimited JSON
//! requests over TCP or a Unix socket, feeds cache misses into the
//! multi-lane portfolio scheduler, and answers repeats — including
//! α-renamed and commutatively reordered repeats — straight from a
//! sharded LRU keyed by the canonical form of the constraint
//! ([`staub_smtlib::canonicalize`]).
//!
//! Module map:
//!
//! * [`json`] — a minimal, depth-capped JSON reader/writer (the workspace
//!   has no serde; the request path needs only this subset).
//! * [`protocol`] — request/response shapes, error codes, and the
//!   size-capped line reader.
//! * [`cache`] — the sharded LRU answer cache with collision-proof
//!   full-key comparison, behind the [`cache::AnswerStore`] trait.
//! * [`persist`] — the crash-persistent answer store (snapshot +
//!   CRC-framed append-only log, truncated-tail-tolerant warm start).
//! * [`endpoint`] — the transport-agnostic `tcp:`/`unix:` address type
//!   shared by server, router, and clients.
//! * [`server`] — accept loops, admission control, the solve path, and
//!   graceful drain.
//! * [`reactor`] — the nonblocking epoll reactor (Linux) that serves many
//!   idle connections from a fixed worker pool.
//! * [`route`] — the `staub route` front node: consistent-hash sharding
//!   of canonical fingerprints across backend servers.
//! * [`client`] — `staub client` / `staub loadgen` drivers with
//!   client-side response auditing.
//! * [`signal`] — the SIGINT/SIGTERM shutdown flag (the workspace's one
//!   audited `unsafe` exception; the reactor's epoll FFI is the other).

pub mod cache;
pub mod client;
pub mod endpoint;
pub mod json;
pub mod persist;
pub mod protocol;
pub mod reactor;
pub mod route;
pub mod server;
pub mod signal;

pub use cache::{AnswerCache, AnswerStore, CacheConfig, CacheStats, CachedVerdict};
pub use client::{
    assert_request, audit_reply, check_request, health_request, run_loadgen, session_close_request,
    session_open_request, shutdown_request, solve_request, Audit, Connection, LoadgenConfig,
    LoadgenOutcome, RequestRecord,
};
pub use endpoint::{Endpoint, EndpointError, EndpointListener, EndpointStream};
pub use persist::{PersistConfig, PersistStatus, PersistentStore, ReplayReport};
pub use protocol::{
    parse_request, LineRead, LineReader, ProtocolError, Request, SolveRequest, PROTOCOL_VERSION,
};
pub use route::{RouteConfig, Router};
#[allow(deprecated)]
pub use server::ServeConfig;
pub use server::{DrainSummary, Server, ServerConfig};
