//! A nonblocking readiness reactor over `epoll(7)` (Linux).
//!
//! The thread-per-connection server costs one OS thread per *idle*
//! keep-alive connection — fatal at the ROADMAP's "millions of users"
//! scale. This module serves any number of connections from **one**
//! reactor thread plus a fixed pool of worker threads:
//!
//! ```text
//! reactor thread            worker pool (fixed size)
//! ─────────────            ────────────────────────
//! epoll_wait ─┬─ accept      recv Job ─ Service::handle ─ send Done
//!             ├─ read ──────────▲                            │
//!             ├─ write ◀── wake ┴────────────────────────────┘
//!             └─ completions
//! ```
//!
//! Per-connection state is a small slab entry (a [`LineReader`], a write
//! buffer, and the caller's session state) — an idle connection costs no
//! thread and no syscalls. Reads drain until `WouldBlock` through the
//! same [`LineReader`] framing as the threaded path; one request per
//! connection is in flight at a time (the protocol is
//! request/response-ordered), with the connection's session state moved
//! into the worker job and back, so no locks guard it.
//!
//! Readiness is managed mio-style with explicit *interest sets* re-armed
//! on every state transition: a connection whose request is at a worker
//! drops read interest (no spin while the kernel buffer holds pipelined
//! bytes), and write interest exists only while the write buffer is
//! nonempty. This one-shot-style re-arming gives the edge-driven
//! behaviour without edge-triggered mode's lost-wakeup hazard.
//!
//! Drain integrates with [`crate::signal`] through
//! [`Service::shutting_down`]: `epoll_wait` ticks at a bounded interval,
//! and once the flag is up the reactor stops accepting, lets in-flight
//! requests complete and flush, closes everything, joins its workers,
//! and returns.
//!
//! The `epoll` FFI below is the service crate's second audited `unsafe`
//! exception (the first is the `signal(2)` registration in
//! [`crate::signal`]); everything above [`sys`] is safe code. On
//! non-Linux platforms [`supported`] is `false` and the server falls
//! back to the threaded accept loop.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::endpoint::{EndpointListener, EndpointStream};
use crate::protocol::{LineRead, LineReader};

/// Reactor tuning.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Worker threads executing [`Service::handle`]. The thread count is
    /// fixed at start — connection count never changes it.
    pub workers: usize,
    /// Request-line size cap handed to each connection's [`LineReader`].
    pub max_line_bytes: usize,
    /// Upper bound on one `epoll_wait`, which is also the drain-flag poll
    /// cadence.
    pub poll_interval: Duration,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            workers: 4,
            max_line_bytes: crate::protocol::DEFAULT_MAX_LINE_BYTES,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// What the reactor needs from the protocol layer. The server implements
/// this once; tests implement it with trivial echo logic.
pub trait Service: Send + Sync + 'static {
    /// Per-connection session state, created on accept and dropped on
    /// close.
    type Conn: Default + Send + 'static;

    /// Handles one complete request line; returns the reply line (no
    /// newline) and whether the connection stays open. Runs on a worker
    /// thread.
    fn handle(&self, conn: &mut Self::Conn, line: &str) -> (String, bool);

    /// The reply for a line that blew the size cap (the connection
    /// closes after it flushes).
    fn oversized(&self, observed: usize) -> String;

    /// The reply for a non-UTF-8 line (the connection closes after it
    /// flushes).
    fn bad_utf8(&self) -> String;

    /// Polled every tick; `true` starts the drain.
    fn shutting_down(&self) -> bool;

    /// A connection was accepted.
    fn connected(&self) {}

    /// A connection was closed (every accepted connection gets exactly
    /// one call).
    fn disconnected(&self) {}
}

/// Whether this build has a reactor (Linux only).
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

/// Live reactor gauges, shared with the health endpoint.
#[derive(Debug, Default)]
pub struct ReactorGauges {
    /// Connections currently registered.
    pub open_connections: AtomicU64,
    /// Worker threads in the pool.
    pub workers: AtomicU64,
    /// Requests currently at a worker.
    pub busy: AtomicU64,
}

/// Runs the reactor until drain completes. Blocks the calling thread;
/// the server spawns it on a dedicated `staub-reactor` thread.
///
/// # Errors
///
/// Propagates `epoll` setup failures and fatal poll errors; per-
/// connection I/O errors just close that connection.
#[cfg(target_os = "linux")]
pub fn run<S: Service>(
    service: &Arc<S>,
    listeners: Vec<EndpointListener>,
    gauges: &Arc<ReactorGauges>,
    config: &ReactorConfig,
) -> io::Result<()> {
    linux::run(service, listeners, gauges, config)
}

/// Non-Linux stub: the server checks [`supported`] first, so this is
/// unreachable in practice, but it keeps the symbol total.
#[cfg(not(target_os = "linux"))]
pub fn run<S: Service>(
    _service: &Arc<S>,
    _listeners: Vec<EndpointListener>,
    _gauges: &Arc<ReactorGauges>,
    _config: &ReactorConfig,
) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "the epoll reactor requires Linux; use the threaded accept loop",
    ))
}

// ---------------------------------------------------------------------------
// epoll FFI (audited unsafe exception)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    //! Minimal `epoll(7)` bindings; no libc crate in the workspace.

    use std::io;

    // The kernel UAPI packs `struct epoll_event` on x86_64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// An owned epoll instance.
    pub struct Epoll {
        fd: i32,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers; a negative return
            // is the only failure mode.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it. DEL
            // ignores the event pointer on modern kernels but a valid one
            // is passed anyway (required before Linux 2.6.9).
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        pub fn delete(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Waits up to `timeout`; fills `events` and returns the count.
        pub fn wait(
            &self,
            events: &mut [EpollEvent],
            timeout: std::time::Duration,
        ) -> io::Result<usize> {
            let ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
            // SAFETY: the events pointer and capacity describe a live,
            // exclusively-borrowed buffer; the kernel writes at most
            // `maxevents` entries.
            let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, ms) };
            if rc < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            Ok(rc as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: fd is owned by this struct and closed exactly once.
            unsafe { close(self.fd) };
        }
    }
}

// ---------------------------------------------------------------------------
// The reactor proper
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod linux {
    use super::sys::{Epoll, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
    use super::*;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    /// Token namespace: connection tokens encode `(generation, slot)`;
    /// the top of the space names listeners and the waker.
    const TOKEN_WAKER: u64 = u64::MAX;
    const TOKEN_LISTENER_BASE: u64 = u64::MAX - 1024;
    const SLOT_BITS: u32 = 20;
    const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

    fn conn_token(slot: usize, gen: u64) -> u64 {
        (gen << SLOT_BITS) | slot as u64
    }

    struct Job<C> {
        slot: usize,
        gen: u64,
        line: String,
        state: C,
    }

    struct Done<C> {
        slot: usize,
        gen: u64,
        state: C,
        reply: String,
        keep_open: bool,
    }

    struct Conn<C> {
        stream: EndpointStream,
        reader: LineReader,
        wbuf: Vec<u8>,
        wpos: usize,
        /// Session state; `None` while a request is at a worker.
        state: Option<C>,
        gen: u64,
        /// No more requests: close once the write buffer flushes.
        closing: bool,
        /// Reads stopped permanently (EOF / cap / bad UTF-8).
        read_done: bool,
        /// Lingering close: the final reply is flushed and the write side
        /// shut down; input is discarded until the peer closes (or this
        /// deadline passes). Closing outright with unread bytes in the
        /// receive buffer would make the kernel send RST, destroying the
        /// reply before the peer reads it.
        linger_until: Option<Instant>,
        interest: u32,
    }

    /// How long a closing connection waits for the peer to read its final
    /// reply and hang up before being dropped anyway.
    const LINGER: Duration = Duration::from_secs(2);

    impl<C> Conn<C> {
        fn busy(&self) -> bool {
            self.state.is_none()
        }

        fn wanted_interest(&self) -> u32 {
            let mut events = EPOLLRDHUP;
            if self.linger_until.is_some() || (!self.busy() && !self.read_done && !self.closing) {
                events |= EPOLLIN;
            }
            if self.wpos < self.wbuf.len() {
                events |= EPOLLOUT;
            }
            events
        }
    }

    struct Slab<C> {
        slots: Vec<Option<Conn<C>>>,
        free: Vec<usize>,
        next_gen: u64,
    }

    impl<C> Slab<C> {
        fn new() -> Slab<C> {
            Slab {
                slots: Vec::new(),
                free: Vec::new(),
                next_gen: 1,
            }
        }

        fn insert(&mut self, mut conn: Conn<C>) -> (usize, u64) {
            let gen = self.next_gen;
            self.next_gen += 1;
            conn.gen = gen;
            match self.free.pop() {
                Some(slot) => {
                    self.slots[slot] = Some(conn);
                    (slot, gen)
                }
                None => {
                    self.slots.push(Some(conn));
                    (self.slots.len() - 1, gen)
                }
            }
        }

        fn get(&mut self, slot: usize, gen: u64) -> Option<&mut Conn<C>> {
            match self.slots.get_mut(slot) {
                Some(Some(conn)) if conn.gen == gen => Some(conn),
                _ => None,
            }
        }

        fn remove(&mut self, slot: usize) -> Option<Conn<C>> {
            let conn = self.slots.get_mut(slot)?.take()?;
            self.free.push(slot);
            Some(conn)
        }

        fn len(&self) -> usize {
            self.slots.len() - self.free.len()
        }

        fn tokens(&self) -> Vec<(usize, u64)> {
            self.slots
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.as_ref().map(|c| (i, c.gen)))
                .collect()
        }
    }

    struct Reactor<'a, S: Service> {
        service: &'a Arc<S>,
        gauges: &'a Arc<ReactorGauges>,
        ep: Epoll,
        slab: Slab<S::Conn>,
        jobs: mpsc::Sender<Job<S::Conn>>,
        done_rx: mpsc::Receiver<Done<S::Conn>>,
        waker_rx: UnixStream,
        max_line_bytes: usize,
        /// Connections in the lingering-close state; the deadline sweep
        /// runs only while this is nonzero.
        lingering: usize,
    }

    pub fn run<S: Service>(
        service: &Arc<S>,
        listeners: Vec<EndpointListener>,
        gauges: &Arc<ReactorGauges>,
        config: &ReactorConfig,
    ) -> io::Result<()> {
        let ep = Epoll::new()?;
        for (i, l) in listeners.iter().enumerate() {
            ep.add(l.as_raw_fd(), EPOLLIN, TOKEN_LISTENER_BASE + i as u64)?;
        }

        // Self-wake channel: workers write one byte after posting a
        // completion so a parked epoll_wait returns immediately.
        let (waker_tx, waker_rx) = UnixStream::pair()?;
        waker_tx.set_nonblocking(true)?;
        waker_rx.set_nonblocking(true)?;
        ep.add(waker_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKER)?;

        let (jobs_tx, jobs_rx) = mpsc::channel::<Job<S::Conn>>();
        let (done_tx, done_rx) = mpsc::channel::<Done<S::Conn>>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let worker_count = config.workers.max(1);
        gauges.workers.store(worker_count as u64, Ordering::Relaxed);
        let mut worker_handles = Vec::with_capacity(worker_count);
        for w in 0..worker_count {
            let jobs_rx = Arc::clone(&jobs_rx);
            let done_tx = done_tx.clone();
            let service = Arc::clone(service);
            let waker = waker_tx.try_clone()?;
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("staub-worker-{w}"))
                    .spawn(move || loop {
                        let job = match jobs_rx.lock().expect("job queue poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => return, // reactor dropped the sender: drain done
                        };
                        let Job {
                            slot,
                            gen,
                            line,
                            mut state,
                        } = job;
                        let (reply, keep_open) = service.handle(&mut state, &line);
                        if done_tx
                            .send(Done {
                                slot,
                                gen,
                                state,
                                reply,
                                keep_open,
                            })
                            .is_err()
                        {
                            return;
                        }
                        // A full pipe still wakes the reactor, so a
                        // WouldBlock here is harmless.
                        let _ = (&waker).write(&[1u8]);
                    })?,
            );
        }

        let mut reactor = Reactor {
            service,
            gauges,
            ep,
            slab: Slab::new(),
            jobs: jobs_tx,
            done_rx,
            waker_rx,
            max_line_bytes: config.max_line_bytes,
            lingering: 0,
        };

        let mut events = vec![super::sys::EpollEvent { events: 0, data: 0 }; 256];
        let mut accepting = true;
        loop {
            let draining = reactor.service.shutting_down();
            if draining && accepting {
                // Stop accepting; close idle connections now. Busy ones
                // finish their in-flight request and flush first.
                for l in &listeners {
                    let _ = reactor.ep.delete(l.as_raw_fd());
                }
                accepting = false;
                for (slot, gen) in reactor.slab.tokens() {
                    let idle = reactor
                        .slab
                        .get(slot, gen)
                        .map(|c| !c.busy() && c.wpos >= c.wbuf.len())
                        .unwrap_or(false);
                    if idle {
                        reactor.close(slot);
                    } else if let Some(conn) = reactor.slab.get(slot, gen) {
                        conn.closing = true;
                    }
                }
            }
            if !accepting && reactor.slab.len() == 0 {
                break;
            }

            let n = reactor.ep.wait(&mut events, config.poll_interval)?;
            for ev in &events[..n] {
                let token = ev.data;
                let bits = ev.events;
                if token == TOKEN_WAKER {
                    let mut sink = [0u8; 64];
                    while matches!(reactor.waker_rx.read(&mut sink), Ok(n) if n > 0) {}
                    continue;
                }
                if token >= TOKEN_LISTENER_BASE {
                    if accepting {
                        let idx = (token - TOKEN_LISTENER_BASE) as usize;
                        reactor.accept_all(&listeners[idx]);
                    }
                    continue;
                }
                let slot = (token & SLOT_MASK) as usize;
                let gen = token >> SLOT_BITS;
                if reactor.slab.get(slot, gen).is_none() {
                    continue; // stale event for a recycled slot
                }
                if bits & (EPOLLERR | EPOLLHUP) != 0 {
                    reactor.close(slot);
                    continue;
                }
                if bits & EPOLLOUT != 0 {
                    reactor.flush(slot, gen);
                }
                if reactor.slab.get(slot, gen).is_some() && bits & (EPOLLIN | EPOLLRDHUP) != 0 {
                    reactor.read_ready(slot, gen);
                }
            }

            reactor.drain_completions();

            // Deadline sweep for peers that never hang up after their
            // final reply; skipped entirely while nothing lingers.
            if reactor.lingering > 0 {
                let now = Instant::now();
                for (slot, gen) in reactor.slab.tokens() {
                    let expired = reactor
                        .slab
                        .get(slot, gen)
                        .and_then(|c| c.linger_until)
                        .is_some_and(|t| now >= t);
                    if expired {
                        reactor.close(slot);
                    }
                }
            }
        }

        // Dropping the job sender ends every worker's recv loop.
        drop(reactor);
        for h in worker_handles {
            let _ = h.join();
        }
        Ok(())
    }

    impl<'a, S: Service> Reactor<'a, S> {
        fn accept_all(&mut self, listener: &EndpointListener) {
            loop {
                match listener.try_accept() {
                    Ok(stream) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let conn = Conn {
                            stream,
                            reader: LineReader::new(self.max_line_bytes),
                            wbuf: Vec::new(),
                            wpos: 0,
                            state: Some(S::Conn::default()),
                            gen: 0,
                            closing: false,
                            read_done: false,
                            linger_until: None,
                            interest: 0,
                        };
                        let (slot, gen) = self.slab.insert(conn);
                        let token = conn_token(slot, gen);
                        let conn = self.slab.get(slot, gen).expect("just inserted");
                        let interest = conn.wanted_interest();
                        conn.interest = interest;
                        let fd = conn.stream.as_raw_fd();
                        if self.ep.add(fd, interest, token).is_err() {
                            self.slab.remove(slot);
                            continue;
                        }
                        self.service.connected();
                        self.gauges
                            .open_connections
                            .store(self.slab.len() as u64, Ordering::Relaxed);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            }
        }

        /// Re-arms the epoll interest set after a state transition.
        fn rearm(&mut self, slot: usize, gen: u64) {
            let Some(conn) = self.slab.get(slot, gen) else {
                return;
            };
            let wanted = conn.wanted_interest();
            if wanted != conn.interest {
                conn.interest = wanted;
                let fd = conn.stream.as_raw_fd();
                let _ = self.ep.modify(fd, wanted, conn_token(slot, gen));
            }
        }

        /// Drains readable bytes; dispatches at most one request to the
        /// worker pool (request/response ordering), queues protocol-level
        /// close replies for framing violations.
        fn read_ready(&mut self, slot: usize, gen: u64) {
            let mut close_now = false;
            loop {
                let Some(conn) = self.slab.get(slot, gen) else {
                    return;
                };
                if conn.linger_until.is_some() {
                    // Lingering: discard everything until the peer hangs
                    // up (EOF means it has read our final reply).
                    let mut sink = [0u8; 4096];
                    loop {
                        match conn.stream.read(&mut sink) {
                            Ok(0) => {
                                close_now = true;
                                break;
                            }
                            Ok(_) => {}
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => {
                                close_now = true;
                                break;
                            }
                        }
                    }
                    break;
                }
                if conn.busy() || conn.read_done || conn.closing {
                    break;
                }
                let next = {
                    let Conn { stream, reader, .. } = conn;
                    reader.next_line(stream)
                };
                match next {
                    Ok(LineRead::Line(line)) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        let state = conn.state.take().expect("not busy");
                        self.gauges.busy.fetch_add(1, Ordering::Relaxed);
                        if self
                            .jobs
                            .send(Job {
                                slot,
                                gen,
                                line,
                                state,
                            })
                            .is_err()
                        {
                            // Workers are gone (drain): close.
                            self.gauges.busy.fetch_sub(1, Ordering::Relaxed);
                            close_now = true;
                        }
                        break;
                    }
                    Ok(LineRead::Idle) => break,
                    Ok(LineRead::Eof) | Err(_) => {
                        close_now = true;
                        break;
                    }
                    Ok(LineRead::TooLong { observed }) => {
                        let reply = self.service.oversized(observed);
                        conn.wbuf.extend_from_slice(reply.as_bytes());
                        conn.wbuf.push(b'\n');
                        conn.read_done = true;
                        conn.closing = true;
                        break;
                    }
                    Ok(LineRead::BadUtf8) => {
                        let reply = self.service.bad_utf8();
                        conn.wbuf.extend_from_slice(reply.as_bytes());
                        conn.wbuf.push(b'\n');
                        conn.read_done = true;
                        conn.closing = true;
                        break;
                    }
                }
            }
            if close_now {
                self.close(slot);
            } else {
                self.flush(slot, gen);
            }
        }

        /// Writes out as much of the buffer as the socket accepts, closes
        /// flushed `closing` connections, then re-arms interest.
        fn flush(&mut self, slot: usize, gen: u64) {
            let mut close_now = false;
            let mut lingers = false;
            {
                let Some(conn) = self.slab.get(slot, gen) else {
                    return;
                };
                loop {
                    if conn.wpos >= conn.wbuf.len() {
                        break;
                    }
                    match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                        Ok(0) => {
                            close_now = true;
                            break;
                        }
                        Ok(n) => conn.wpos += n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            close_now = true;
                            break;
                        }
                    }
                }
                if !close_now && conn.wpos >= conn.wbuf.len() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    if conn.closing && !conn.busy() && conn.linger_until.is_none() {
                        // Final reply flushed: linger instead of closing.
                        // The peer may not have read the reply yet, and
                        // bytes it is still sending (e.g. the tail of an
                        // oversized line) would otherwise turn our close
                        // into an RST that destroys the reply. Half-close,
                        // then discard input until EOF or the deadline.
                        conn.linger_until = Some(Instant::now() + LINGER);
                        let _ = conn.stream.shutdown_write();
                        lingers = true;
                    }
                }
            }
            if lingers {
                self.lingering += 1;
            }
            if close_now {
                self.close(slot);
            } else {
                self.rearm(slot, gen);
            }
        }

        /// Applies finished worker results: restore session state, queue
        /// the reply, resume reading pipelined input.
        fn drain_completions(&mut self) {
            while let Ok(done) = self.done_rx.try_recv() {
                self.gauges.busy.fetch_sub(1, Ordering::Relaxed);
                let Some(conn) = self.slab.get(done.slot, done.gen) else {
                    continue; // connection died while its request ran
                };
                conn.state = Some(done.state);
                conn.wbuf.extend_from_slice(done.reply.as_bytes());
                conn.wbuf.push(b'\n');
                if !done.keep_open || self.service.shutting_down() {
                    conn.closing = true;
                }
                self.flush(done.slot, done.gen);
                // Pipelined requests may already sit in the LineReader;
                // epoll will not re-signal for bytes already read.
                self.read_ready(done.slot, done.gen);
            }
        }

        fn close(&mut self, slot: usize) {
            if let Some(conn) = self.slab.remove(slot) {
                if conn.linger_until.is_some() {
                    self.lingering -= 1;
                }
                let _ = self.ep.delete(conn.stream.as_raw_fd());
                self.service.disconnected();
                self.gauges
                    .open_connections
                    .store(self.slab.len() as u64, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::endpoint::Endpoint;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;
    use std::sync::atomic::AtomicBool;

    struct Echo {
        stop: AtomicBool,
    }

    impl Service for Echo {
        type Conn = u64;

        fn handle(&self, conn: &mut u64, line: &str) -> (String, bool) {
            *conn += 1;
            if line == "quit" {
                return ("bye".into(), false);
            }
            (format!("{line}#{conn}"), true)
        }

        fn oversized(&self, observed: usize) -> String {
            format!("too-long:{observed}")
        }

        fn bad_utf8(&self) -> String {
            "bad-utf8".into()
        }

        fn shutting_down(&self) -> bool {
            self.stop.load(Ordering::Relaxed)
        }
    }

    fn start_echo(
        max_line: usize,
    ) -> (
        Arc<Echo>,
        Arc<ReactorGauges>,
        std::net::SocketAddr,
        std::thread::JoinHandle<io::Result<()>>,
    ) {
        let service = Arc::new(Echo {
            stop: AtomicBool::new(false),
        });
        let gauges = Arc::new(ReactorGauges::default());
        let listener = Endpoint::tcp("127.0.0.1:0").unwrap().bind().unwrap();
        let addr = listener.tcp_addr().unwrap();
        let config = ReactorConfig {
            workers: 2,
            max_line_bytes: max_line,
            poll_interval: Duration::from_millis(10),
        };
        let handle = {
            let service = Arc::clone(&service);
            let gauges = Arc::clone(&gauges);
            std::thread::spawn(move || run(&service, vec![listener], &gauges, &config))
        };
        (service, gauges, addr, handle)
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
        use std::io::Write as _;
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    #[test]
    fn echoes_with_per_connection_state() {
        let (service, _gauges, addr, handle) = start_echo(1024);
        let mut a = TcpStream::connect(addr).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        assert_eq!(roundtrip(&mut a, "hello"), "hello#1");
        assert_eq!(roundtrip(&mut b, "world"), "world#1");
        // Per-connection counters are independent: the reactor moved each
        // connection's state to the worker and back.
        assert_eq!(roundtrip(&mut a, "again"), "again#2");
        assert_eq!(roundtrip(&mut a, "quit"), "bye");
        service.stop.store(true, Ordering::Relaxed);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn many_idle_connections_cost_no_threads() {
        let (service, gauges, addr, handle) = start_echo(1024);
        let mut conns: Vec<TcpStream> =
            (0..64).map(|_| TcpStream::connect(addr).unwrap()).collect();
        // Wait for the reactor to register them all.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while gauges.open_connections.load(Ordering::Relaxed) < 64 {
            assert!(std::time::Instant::now() < deadline, "registration stalled");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(gauges.workers.load(Ordering::Relaxed), 2);
        // Every connection still works after sitting idle.
        let last = conns.last_mut().unwrap();
        assert_eq!(roundtrip(last, "ping"), "ping#1");
        service.stop.store(true, Ordering::Relaxed);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_line_answers_then_closes() {
        let (service, _gauges, addr, handle) = start_echo(16);
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut stream, &"x".repeat(64));
        assert!(reply.starts_with("too-long:"), "{reply}");
        // The connection is closed after the reply.
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "expected EOF");
        service.stop.store(true, Ordering::Relaxed);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn pipelined_requests_all_answer_in_order() {
        let (service, _gauges, addr, handle) = start_echo(1024);
        let mut stream = TcpStream::connect(addr).unwrap();
        use std::io::Write as _;
        stream.write_all(b"one\ntwo\nthree\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut got = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            got.push(line.trim_end().to_string());
        }
        assert_eq!(got, vec!["one#1", "two#2", "three#3"]);
        service.stop.store(true, Ordering::Relaxed);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn drain_lets_inflight_flush_then_exits() {
        let (service, gauges, addr, handle) = start_echo(1024);
        let mut stream = TcpStream::connect(addr).unwrap();
        assert_eq!(roundtrip(&mut stream, "pre"), "pre#1");
        service.stop.store(true, Ordering::Relaxed);
        handle.join().unwrap().unwrap();
        assert_eq!(gauges.open_connections.load(Ordering::Relaxed), 0);
    }
}
