//! Transport-agnostic endpoints: one validated address type shared by the
//! server, the shard router, `staub client`, and `staub loadgen`.
//!
//! Before this module existed every driver carried its own `addr: String`
//! plus an optional Unix-socket path and re-implemented host/port
//! parsing. An [`Endpoint`] names a listening point in one of two
//! transports:
//!
//! ```text
//! tcp:HOST:PORT      (or the bare HOST:PORT shorthand)
//! unix:PATH          (Unix only)
//! ```
//!
//! [`Endpoint::bind`] yields an [`EndpointListener`] and
//! [`Endpoint::connect`] an [`EndpointStream`]; both erase the transport
//! so the reactor, the router's backend pool, and the clients are written
//! once against `Read + Write` byte streams.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// A validated service address: where to bind a listener or dial a peer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A TCP `host:port` address (port `0` binds ephemerally).
    Tcp(String),
    /// A Unix-domain socket path (Unix only).
    Unix(PathBuf),
}

/// Why an endpoint spec failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointError(String);

impl fmt::Display for EndpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid endpoint: {}", self.0)
    }
}

impl std::error::Error for EndpointError {}

impl Endpoint {
    /// Parses `tcp:HOST:PORT`, `unix:PATH`, or the bare `HOST:PORT`
    /// shorthand every pre-v3 flag accepted.
    ///
    /// # Errors
    ///
    /// Rejects empty specs, a missing or non-numeric port, an empty Unix
    /// path, and `unix:` on platforms without Unix sockets.
    pub fn parse(spec: &str) -> Result<Endpoint, EndpointError> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(EndpointError("unix: needs a socket path".into()));
            }
            if cfg!(unix) {
                return Ok(Endpoint::Unix(PathBuf::from(path)));
            }
            return Err(EndpointError(
                "unix sockets are not available on this platform".into(),
            ));
        }
        let addr = spec.strip_prefix("tcp:").unwrap_or(spec);
        Endpoint::tcp(addr)
    }

    /// A validated TCP endpoint from a `host:port` string.
    ///
    /// # Errors
    ///
    /// Rejects addresses without a `:` or whose final segment is not a
    /// port number.
    pub fn tcp(addr: &str) -> Result<Endpoint, EndpointError> {
        let Some((host, port)) = addr.rsplit_once(':') else {
            return Err(EndpointError(format!("`{addr}` is not HOST:PORT")));
        };
        if host.is_empty() {
            return Err(EndpointError(format!("`{addr}` has an empty host")));
        }
        if port.parse::<u16>().is_err() {
            return Err(EndpointError(format!("`{port}` is not a port number")));
        }
        Ok(Endpoint::Tcp(addr.to_string()))
    }

    /// A Unix-socket endpoint (not validated against the filesystem —
    /// binding creates the socket file).
    pub fn unix(path: impl Into<PathBuf>) -> Endpoint {
        Endpoint::Unix(path.into())
    }

    /// Binds a listener on this endpoint (nonblocking — every consumer
    /// either polls a shutdown flag or registers it with the reactor).
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, bad socket path, …).
    pub fn bind(&self) -> io::Result<EndpointListener> {
        match self {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Ok(EndpointListener::Tcp(listener))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A previous unclean exit leaves the socket file behind;
                // rebinding requires removing it first.
                let _ = std::fs::remove_file(path);
                let listener = std::os::unix::net::UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(EndpointListener::Unix(listener, path.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// Dials this endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(&self) -> io::Result<EndpointStream> {
        match self {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(EndpointStream::Tcp(stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(EndpointStream::Unix(
                std::os::unix::net::UnixStream::connect(path)?,
            )),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A bound listener on either transport, always nonblocking.
#[derive(Debug)]
pub enum EndpointListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-socket listener plus the path it owns (removed on drop by
    /// the server's shutdown path, not here — drops during `fork`-free
    /// test reuse must not unlink a live socket).
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, PathBuf),
}

impl EndpointListener {
    /// Accepts one pending connection, or `WouldBlock`.
    ///
    /// # Errors
    ///
    /// Propagates `accept(2)` failures, including `WouldBlock` when no
    /// connection is pending.
    pub fn try_accept(&self) -> io::Result<EndpointStream> {
        match self {
            EndpointListener::Tcp(l) => l.accept().map(|(s, _)| EndpointStream::Tcp(s)),
            #[cfg(unix)]
            EndpointListener::Unix(l, _) => l.accept().map(|(s, _)| EndpointStream::Unix(s)),
        }
    }

    /// The bound TCP socket address, if this is a TCP listener.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            EndpointListener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            EndpointListener::Unix(..) => None,
        }
    }
}

#[cfg(unix)]
impl std::os::unix::io::AsRawFd for EndpointListener {
    fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        match self {
            EndpointListener::Tcp(l) => l.as_raw_fd(),
            EndpointListener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

/// A connected byte stream on either transport.
#[derive(Debug)]
pub enum EndpointStream {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-socket stream.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl EndpointStream {
    /// Switches the stream between blocking and nonblocking mode.
    ///
    /// # Errors
    ///
    /// Propagates `fcntl` failures.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            EndpointStream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            EndpointStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Sets the per-read timeout (the idle-poll granularity of the
    /// legacy thread-per-connection mode).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            EndpointStream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            EndpointStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Half-closes the write side (sends FIN on TCP), leaving reads open.
    /// The lingering-close path uses this so a final reply is never
    /// destroyed by a reset: closing a socket with unread bytes in its
    /// receive buffer makes the kernel send RST, which discards data the
    /// peer has not read yet.
    ///
    /// # Errors
    ///
    /// Propagates `shutdown(2)` failures.
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            EndpointStream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            #[cfg(unix)]
            EndpointStream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

impl Read for EndpointStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            EndpointStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            EndpointStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for EndpointStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            EndpointStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            EndpointStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            EndpointStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            EndpointStream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(unix)]
impl std::os::unix::io::AsRawFd for EndpointStream {
    fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        match self {
            EndpointStream::Tcp(s) => s.as_raw_fd(),
            EndpointStream::Unix(s) => s.as_raw_fd(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_spellings() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:7227").unwrap(),
            Endpoint::Tcp("127.0.0.1:7227".into())
        );
        assert_eq!(
            Endpoint::parse("tcp:localhost:0").unwrap(),
            Endpoint::Tcp("localhost:0".into())
        );
        #[cfg(unix)]
        assert_eq!(
            Endpoint::parse("unix:/tmp/s.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/s.sock"))
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in ["", "nohost", "host:", "host:notaport", ":7227", "unix:"] {
            assert!(Endpoint::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_round_trips() {
        let e = Endpoint::parse("tcp:127.0.0.1:80").unwrap();
        assert_eq!(Endpoint::parse(&e.to_string()).unwrap(), e);
    }

    #[test]
    fn tcp_bind_connect_roundtrip() {
        let listener = Endpoint::tcp("127.0.0.1:0").unwrap().bind().unwrap();
        let addr = listener.tcp_addr().unwrap().to_string();
        let mut client = Endpoint::tcp(&addr).unwrap().connect().unwrap();
        client.write_all(b"ping").unwrap();
        // Nonblocking accept: the connection may take a beat to land.
        let mut server = loop {
            match listener.try_accept() {
                Ok(s) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("accept failed: {e}"),
            }
        };
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }
}
