//! Crash-persistent answer store: snapshot + CRC-framed append-only log.
//!
//! A restarted (or freshly spawned) node should not pay the solver again
//! for verdicts it already earned, so the answer cache can be backed by a
//! directory holding two files:
//!
//! ```text
//! answers.snap   header, then records — a full dump at compaction time
//! answers.log    header, then records — every insert since the snapshot
//! ```
//!
//! Both use the same record framing: `len:u32le  crc:u32le  payload`,
//! where `crc` is CRC-32 (IEEE) of the payload bytes. A record is
//! replayed only if its length fits the remaining file *and* its CRC
//! matches; the first violation ends replay — after a torn write or a
//! bit flip the framing downstream can no longer be trusted, so the tail
//! is dropped rather than resynchronised. Replay therefore yields a
//! *prefix* of the entries that were durably written, which is the
//! soundness argument: every replayed entry is byte-identical to one the
//! live server inserted, and `sat` entries are additionally re-verified
//! by exact evaluation on every serve (`server::cache_lookup`), exactly
//! as in-memory entries are. A corrupted log can lose answers, never
//! invent them.
//!
//! The payload encodes `(fingerprint, canonical key, verdict)`. Model
//! values are stored with a one-byte sort tag (`B`/`I`/`R`) and their
//! printed form; entries whose values do not round-trip through text
//! (bitvector/float models) are served from memory but not persisted —
//! the restart simply re-solves those, trading durability for never
//! deserialising a value through an ambiguous spelling.
//!
//! Appends flush (and optionally fsync) before the insert returns, so a
//! SIGKILL loses at most the entry being written — and a torn final
//! record is exactly the truncated-tail case replay tolerates. When the
//! log grows past [`PersistConfig::snapshot_every`] records the store
//! compacts: dump the in-memory cache to `answers.snap.tmp`, rename it
//! over the snapshot, truncate the log.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use staub_numeric::{BigInt, BigRational};
use staub_smtlib::Value;

use crate::cache::{AnswerCache, AnswerStore, CacheConfig, CacheStats, CachedVerdict};

/// File headers, versioned independently of the wire protocol.
const SNAP_MAGIC: &[u8] = b"STAUB-SNAP1\n";
const LOG_MAGIC: &[u8] = b"STAUB-LOG1\n";

/// Hard cap on one record's payload, bytes. A length word beyond this is
/// treated as corruption even if the file happens to be long enough.
const MAX_RECORD_BYTES: u32 = 16 << 20;

/// Where and how to persist the answer store.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory for `answers.snap` / `answers.log` (created if absent).
    pub dir: PathBuf,
    /// Compact (snapshot + truncate the log) once the log holds this many
    /// records.
    pub snapshot_every: u64,
    /// `fsync` after every append (flush always happens). Durability
    /// against power loss vs throughput; process crashes are covered
    /// either way.
    pub fsync: bool,
}

impl PersistConfig {
    /// Persistence under `dir` with default tuning.
    pub fn in_dir(dir: impl Into<PathBuf>) -> PersistConfig {
        PersistConfig {
            dir: dir.into(),
            snapshot_every: 8192,
            fsync: false,
        }
    }
}

/// Durability counters, surfaced in the v3 `health` reply's `persist`
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistStatus {
    /// Entries loaded from the snapshot at boot.
    pub snapshot_entries: u64,
    /// Records currently in the append-only log.
    pub log_records: u64,
    /// Bytes currently in the append-only log.
    pub log_bytes: u64,
    /// Entries replayed into memory at boot (snapshot + log).
    pub replayed: u64,
    /// Records rejected at boot (bad CRC, torn tail, undecodable).
    pub rejected: u64,
    /// Inserts not persisted because their model values do not
    /// round-trip through text.
    pub skipped: u64,
    /// Milliseconds since the snapshot file was last rewritten (boot
    /// time when no snapshot exists yet).
    pub snapshot_age_ms: u64,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), hand-rolled: the build has no crc crate.
// ---------------------------------------------------------------------------

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // The table is tiny; recomputing it per call would be wasteful on the
    // replay path, so build it once.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(crc32_table);
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    push_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn push_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            push_bytes(out, s.as_bytes());
        }
    }
}

/// Encodes one entry, or `None` when a model value has no textual
/// round-trip (the caller counts it as skipped).
fn encode_entry(fingerprint: u128, key: &str, verdict: &CachedVerdict) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(key.len() + 64);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    push_bytes(&mut out, key.as_bytes());
    match verdict {
        CachedVerdict::Unsat { winner } => {
            out.push(0);
            push_opt_str(&mut out, winner);
        }
        CachedVerdict::Sat { model, winner } => {
            out.push(1);
            push_opt_str(&mut out, winner);
            push_u32(&mut out, model.len() as u32);
            for (index, value) in model {
                push_u32(&mut out, *index as u32);
                let (tag, printed) = match value {
                    Value::Bool(b) => (b'B', b.to_string()),
                    Value::Int(i) => (b'I', i.to_string()),
                    Value::Real(r) => (b'R', r.to_string()),
                    // Bitvector/float/rounding-mode values do not have an
                    // unambiguous Display round-trip; skip persistence.
                    _ => return None,
                };
                out.push(tag);
                push_bytes(&mut out, printed.as_bytes());
            }
        }
    }
    Some(out)
}

/// A cursor over a payload; every read is bounds-checked so corrupt
/// records decode to `None`, never panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|b| u128::from_le_bytes(b.try_into().expect("16 bytes")))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn opt_str(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.str()?)),
            _ => None,
        }
    }
}

fn decode_value(tag: u8, printed: &str) -> Option<Value> {
    match tag {
        b'B' => match printed {
            "true" => Some(Value::Bool(true)),
            "false" => Some(Value::Bool(false)),
            _ => None,
        },
        b'I' => BigInt::from_str(printed).ok().map(Value::Int),
        b'R' => BigRational::from_str(printed).ok().map(Value::Real),
        _ => None,
    }
}

fn decode_entry(payload: &[u8]) -> Option<(u128, String, CachedVerdict)> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let fingerprint = c.u128()?;
    let key = c.str()?;
    let verdict = match c.u8()? {
        0 => CachedVerdict::Unsat {
            winner: c.opt_str()?,
        },
        1 => {
            let winner = c.opt_str()?;
            let count = c.u32()? as usize;
            // A corrupt count would try to allocate wildly; bound it by
            // what the payload could possibly hold (≥ 10 bytes each).
            if count > payload.len() / 10 + 1 {
                return None;
            }
            let mut model = Vec::with_capacity(count);
            for _ in 0..count {
                let index = c.u32()? as usize;
                let tag = c.u8()?;
                let printed = c.str()?;
                model.push((index, decode_value(tag, &printed)?));
            }
            CachedVerdict::Sat { model, winner }
        }
        _ => return None,
    };
    // Trailing garbage means the framing lied about the length.
    if c.pos != payload.len() {
        return None;
    }
    Some((fingerprint, key, verdict))
}

// ---------------------------------------------------------------------------
// File replay
// ---------------------------------------------------------------------------

/// Outcome of replaying one file: decoded entries (a durable prefix) and
/// the count of rejected records/tails.
struct Replay {
    entries: Vec<(u128, String, CachedVerdict)>,
    rejected: u64,
}

/// Replays `path` if it exists. A missing file is an empty replay; an
/// unreadable or wrong-magic file counts one rejection and replays
/// nothing (the store then overwrites it).
fn replay_file(path: &Path, magic: &[u8]) -> io::Result<Replay> {
    let mut replay = Replay {
        entries: Vec::new(),
        rejected: 0,
    };
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(replay),
        Err(e) => return Err(e),
    }
    if !bytes.starts_with(magic) {
        replay.rejected += 1;
        return Ok(replay);
    }
    let mut pos = magic.len();
    while pos < bytes.len() {
        // Framing: len, crc, payload. Any violation ends the replay —
        // the tail is dropped, never resynchronised.
        if pos + 8 > bytes.len() {
            replay.rejected += 1;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let start = pos + 8;
        let end = start + len as usize;
        if len > MAX_RECORD_BYTES || end > bytes.len() {
            replay.rejected += 1;
            break;
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            replay.rejected += 1;
            break;
        }
        match decode_entry(payload) {
            Some(entry) => replay.entries.push(entry),
            None => {
                replay.rejected += 1;
                break;
            }
        }
        pos = end;
    }
    Ok(replay)
}

fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// What warm-starting found on disk (surfaced at boot and in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayReport {
    /// Entries loaded from the snapshot.
    pub snapshot_entries: u64,
    /// Entries loaded from the log.
    pub log_entries: u64,
    /// Records rejected across both files.
    pub rejected: u64,
}

struct LogState {
    file: File,
    records: u64,
    bytes: u64,
}

/// A persistent [`AnswerStore`]: the sharded in-memory LRU in front, the
/// snapshot + append-only log behind it.
pub struct PersistentStore {
    mem: AnswerCache,
    config: PersistConfig,
    log: Mutex<LogState>,
    snapshot_entries: AtomicU64,
    snapshot_at: Mutex<Instant>,
    replayed: u64,
    rejected: AtomicU64,
    skipped: AtomicU64,
}

impl PersistentStore {
    /// Opens (or creates) the store under `persist.dir`, warm-starting
    /// the in-memory cache from the snapshot and the log.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O failures. Corrupt
    /// *contents* are never an error — they are counted and dropped.
    pub fn open(cache: &CacheConfig, persist: &PersistConfig) -> io::Result<PersistentStore> {
        std::fs::create_dir_all(&persist.dir)?;
        let snap_path = persist.dir.join("answers.snap");
        let log_path = persist.dir.join("answers.log");

        let snap = replay_file(&snap_path, SNAP_MAGIC)?;
        let log = replay_file(&log_path, LOG_MAGIC)?;
        let mem = AnswerCache::new(cache);
        let mut replayed = 0u64;
        let snapshot_entries = snap.entries.len() as u64;
        for (fingerprint, key, verdict) in snap.entries.into_iter().chain(log.entries) {
            mem.insert(fingerprint, key, verdict);
            replayed += 1;
        }

        // Rewrite the log so it continues from a clean, fully-framed
        // state: a rejected tail must not have fresh records appended
        // after it (they would be unreachable behind the corruption).
        let log_records = replayed - snapshot_entries;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(log.rejected > 0)
            .open(&log_path)?;
        let state = if log.rejected > 0 || file.metadata()?.len() < LOG_MAGIC.len() as u64 {
            file.set_len(0)?;
            file.write_all(LOG_MAGIC)?;
            // The surviving log entries move into the snapshot below iff
            // we truncated; otherwise they are still in the log file.
            LogState {
                file,
                records: 0,
                bytes: LOG_MAGIC.len() as u64,
            }
        } else {
            let bytes = file.metadata()?.len();
            use std::io::Seek;
            file.seek(io::SeekFrom::End(0))?;
            LogState {
                file,
                records: log_records,
                bytes,
            }
        };

        let store = PersistentStore {
            mem,
            config: persist.clone(),
            snapshot_entries: AtomicU64::new(snapshot_entries),
            snapshot_at: Mutex::new(Instant::now()),
            replayed,
            rejected: AtomicU64::new(snap.rejected + log.rejected),
            skipped: AtomicU64::new(0),
            log: Mutex::new(state),
        };
        // After dropping a corrupt tail, fold everything we kept into a
        // fresh snapshot so the dropped records cannot shadow later ones.
        if log.rejected > 0 || snap.rejected > 0 {
            let mut guard = store.log.lock().expect("log poisoned");
            store.compact(&mut guard)?;
        }
        Ok(store)
    }

    /// What boot-time replay found.
    pub fn replay_report(&self) -> ReplayReport {
        ReplayReport {
            snapshot_entries: self.snapshot_entries.load(Ordering::Relaxed),
            log_entries: self.replayed
                - self
                    .snapshot_entries
                    .load(Ordering::Relaxed)
                    .min(self.replayed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// The durability counters for `health`.
    pub fn status(&self) -> PersistStatus {
        let log = self.log.lock().expect("log poisoned");
        PersistStatus {
            snapshot_entries: self.snapshot_entries.load(Ordering::Relaxed),
            log_records: log.records,
            log_bytes: log.bytes,
            replayed: self.replayed,
            rejected: self.rejected.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            snapshot_age_ms: self
                .snapshot_at
                .lock()
                .expect("snapshot clock poisoned")
                .elapsed()
                .as_millis() as u64,
        }
    }

    /// Rewrites the snapshot from memory and truncates the log. Caller
    /// holds the log lock.
    fn compact(&self, log: &mut LogState) -> io::Result<()> {
        let snap_path = self.config.dir.join("answers.snap");
        let tmp_path = self.config.dir.join("answers.snap.tmp");
        let entries = self.mem.dump();
        let mut out = Vec::with_capacity(entries.len() * 64 + SNAP_MAGIC.len());
        out.extend_from_slice(SNAP_MAGIC);
        let mut written = 0u64;
        for (fingerprint, key, verdict) in &entries {
            if let Some(payload) = encode_entry(*fingerprint, key, verdict) {
                out.extend_from_slice(&frame_record(&payload));
                written += 1;
            }
        }
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&out)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &snap_path)?;
        log.file.set_len(0)?;
        use std::io::Seek;
        log.file.seek(io::SeekFrom::Start(0))?;
        log.file.write_all(LOG_MAGIC)?;
        log.file.flush()?;
        if self.config.fsync {
            log.file.sync_all()?;
        }
        log.records = 0;
        log.bytes = LOG_MAGIC.len() as u64;
        self.snapshot_entries.store(written, Ordering::Relaxed);
        *self.snapshot_at.lock().expect("snapshot clock poisoned") = Instant::now();
        Ok(())
    }

    fn append(&self, fingerprint: u128, key: &str, verdict: &CachedVerdict) {
        let Some(payload) = encode_entry(fingerprint, key, verdict) else {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let framed = frame_record(&payload);
        let mut log = self.log.lock().expect("log poisoned");
        // Persistence is best-effort on a live server: an I/O error keeps
        // the in-memory entry (still sound) and is visible as a stalled
        // log length in health rather than failing the request.
        if log
            .file
            .write_all(&framed)
            .and_then(|()| log.file.flush())
            .is_err()
        {
            return;
        }
        if self.config.fsync {
            let _ = log.file.sync_all();
        }
        log.records += 1;
        log.bytes += framed.len() as u64;
        if log.records >= self.config.snapshot_every {
            let _ = self.compact(&mut log);
        }
    }
}

impl AnswerStore for PersistentStore {
    fn lookup(&self, fingerprint: u128, key: &str) -> Option<CachedVerdict> {
        self.mem.get(fingerprint, key)
    }

    fn record(&self, fingerprint: u128, key: &str, verdict: CachedVerdict) {
        self.mem
            .insert(fingerprint, key.to_string(), verdict.clone());
        self.append(fingerprint, key, &verdict);
    }

    fn stats(&self) -> CacheStats {
        self.mem.stats()
    }

    fn persist_status(&self) -> Option<PersistStatus> {
        Some(self.status())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staub_numeric::BigInt;

    fn sat(n: i64) -> CachedVerdict {
        CachedVerdict::Sat {
            model: vec![(0, Value::Int(BigInt::from(n)))],
            winner: Some("baseline/zed".into()),
        }
    }

    fn unsat(label: &str) -> CachedVerdict {
        CachedVerdict::Unsat {
            winner: Some(label.to_string()),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "staub-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn entries_round_trip_through_the_log() {
        let dir = tmp_dir("roundtrip");
        let persist = PersistConfig::in_dir(&dir);
        {
            let store = PersistentStore::open(&CacheConfig::default(), &persist).unwrap();
            store.record(7, "k7", sat(3));
            store.record(9, "k9", unsat("complete/zed"));
            store.record(
                11,
                "k11",
                CachedVerdict::Sat {
                    model: vec![
                        (0, Value::Bool(true)),
                        (
                            2,
                            Value::Real(BigRational::new(BigInt::from(3), BigInt::from(4))),
                        ),
                    ],
                    winner: None,
                },
            );
        }
        let store = PersistentStore::open(&CacheConfig::default(), &persist).unwrap();
        assert_eq!(store.lookup(7, "k7"), Some(sat(3)));
        assert_eq!(store.lookup(9, "k9"), Some(unsat("complete/zed")));
        assert!(matches!(
            store.lookup(11, "k11"),
            Some(CachedVerdict::Sat { model, .. }) if model.len() == 2
        ));
        assert_eq!(store.replay_report().log_entries, 3);
        assert_eq!(store.replay_report().rejected, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unpersistable_models_are_skipped_not_lost_in_memory() {
        let dir = tmp_dir("skip");
        let persist = PersistConfig::in_dir(&dir);
        let bv = CachedVerdict::Sat {
            model: vec![(
                0,
                Value::BitVec(staub_numeric::BitVecValue::new(5u64.into(), 8)),
            )],
            winner: None,
        };
        {
            let store = PersistentStore::open(&CacheConfig::default(), &persist).unwrap();
            store.record(1, "bv", bv.clone());
            assert_eq!(store.lookup(1, "bv"), Some(bv), "memory still serves it");
            assert_eq!(store.status().skipped, 1);
        }
        let store = PersistentStore::open(&CacheConfig::default(), &persist).unwrap();
        assert_eq!(store.lookup(1, "bv"), None, "not durable by design");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped_cleanly() {
        let dir = tmp_dir("trunc");
        let persist = PersistConfig::in_dir(&dir);
        {
            let store = PersistentStore::open(&CacheConfig::default(), &persist).unwrap();
            for i in 0..8u64 {
                store.record(u128::from(i), &format!("k{i}"), sat(i as i64));
            }
        }
        // Chop ten bytes off the log: the torn final record must vanish,
        // earlier ones must survive.
        let log_path = dir.join("answers.log");
        let len = std::fs::metadata(&log_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&log_path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let store = PersistentStore::open(&CacheConfig::default(), &persist).unwrap();
        let report = store.replay_report();
        assert_eq!(report.rejected, 1, "torn tail counted");
        assert_eq!(store.lookup(0, "k0"), Some(sat(0)));
        assert_eq!(store.lookup(7, "k7"), None, "torn record dropped");
        // The reopened store compacted away the damage: a third open is
        // clean.
        drop(store);
        let store = PersistentStore::open(&CacheConfig::default(), &persist).unwrap();
        assert_eq!(store.replay_report().rejected, 0);
        assert_eq!(store.lookup(6, "k6"), Some(sat(6)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_moves_log_into_snapshot() {
        let dir = tmp_dir("compact");
        let mut persist = PersistConfig::in_dir(&dir);
        persist.snapshot_every = 4;
        let store = PersistentStore::open(&CacheConfig::default(), &persist).unwrap();
        for i in 0..10u64 {
            store.record(u128::from(i), &format!("k{i}"), sat(i as i64));
        }
        let status = store.status();
        assert!(
            status.log_records < 4,
            "log should have been compacted, has {} records",
            status.log_records
        );
        assert!(status.snapshot_entries >= 8);
        drop(store);
        let store = PersistentStore::open(&CacheConfig::default(), &persist).unwrap();
        for i in 0..10u64 {
            assert_eq!(
                store.lookup(u128::from(i), &format!("k{i}")),
                Some(sat(i as i64))
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
