//! Client-side drivers: one-shot requests (`staub client`) and the
//! replay load generator (`staub loadgen`).
//!
//! Both speak the same newline-delimited JSON protocol as the server and
//! reuse the [`LineReader`](crate::protocol::LineReader) so a response
//! larger than the line cap is reported rather than looping forever.
//! The load generator additionally *audits* responses: every reply must
//! be well-formed JSON with a known status, and `sat` replies carrying a
//! parseable model are re-checked by exact evaluation against the
//! original constraint — the client-side half of the soundness story.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use staub_numeric::{BigInt, BigRational};
use staub_smtlib::{evaluate, Model, Script, Sort, Value};

use crate::endpoint::{Endpoint, EndpointStream};
use crate::json::{self, Json};
use crate::protocol::{LineRead, LineReader};

/// A connected protocol client over any byte stream.
pub struct Connection<S> {
    stream: S,
    reader: LineReader,
}

impl Connection<EndpointStream> {
    /// Dials an [`Endpoint`] on either transport (blocking reads;
    /// responses are caller-paced).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Connection<EndpointStream>> {
        Ok(Connection::over(endpoint.connect()?))
    }
}

impl Connection<TcpStream> {
    /// Connects over TCP (blocking reads; responses are caller-paced).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    #[deprecated(note = "use `Connection::connect` with an `Endpoint`")]
    pub fn connect_tcp(addr: &str) -> io::Result<Connection<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Connection::over(stream))
    }
}

#[cfg(unix)]
impl Connection<std::os::unix::net::UnixStream> {
    /// Connects over a Unix domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    #[deprecated(note = "use `Connection::connect` with an `Endpoint`")]
    pub fn connect_unix(
        path: &std::path::Path,
    ) -> io::Result<Connection<std::os::unix::net::UnixStream>> {
        Ok(Connection::over(std::os::unix::net::UnixStream::connect(
            path,
        )?))
    }
}

impl<S: Read + Write> Connection<S> {
    /// Wraps an already-connected stream (tests use an in-memory pair).
    pub fn over(stream: S) -> Connection<S> {
        Connection {
            stream,
            reader: LineReader::new(crate::protocol::DEFAULT_MAX_LINE_BYTES),
        }
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// I/O failures, a response longer than the line cap, or a dropped
    /// connection all surface as `io::Error`.
    pub fn roundtrip(&mut self, request: &str) -> io::Result<String> {
        self.stream.write_all(request.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        loop {
            match self.reader.next_line(&mut self.stream)? {
                LineRead::Line(line) => return Ok(line),
                LineRead::Idle => continue,
                LineRead::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection before replying",
                    ))
                }
                LineRead::TooLong { .. } => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response exceeds the line cap",
                    ))
                }
                LineRead::BadUtf8 => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response is not UTF-8",
                    ))
                }
            }
        }
    }
}

/// Builds a `solve` request line (protocol v1).
pub fn solve_request(
    id: &str,
    constraint: &str,
    timeout_ms: Option<u64>,
    steps: Option<u64>,
    no_cache: bool,
) -> String {
    let mut out = String::with_capacity(constraint.len() + 64);
    out.push_str("{\"op\":\"solve\",\"v\":1,");
    json::push_key(&mut out, "id");
    json::push_str_lit(&mut out, id);
    out.push(',');
    json::push_key(&mut out, "constraint");
    json::push_str_lit(&mut out, constraint);
    if let Some(ms) = timeout_ms {
        out.push_str(&format!(",\"timeout_ms\":{ms}"));
    }
    if let Some(s) = steps {
        out.push_str(&format!(",\"steps\":{s}"));
    }
    if no_cache {
        out.push_str(",\"no_cache\":true");
    }
    out.push('}');
    out
}

/// Builds a `health` request line (protocol v1).
pub fn health_request() -> String {
    "{\"op\":\"health\",\"v\":1}".to_string()
}

/// Builds a `shutdown` request line (protocol v1).
pub fn shutdown_request() -> String {
    "{\"op\":\"shutdown\",\"v\":1}".to_string()
}

/// Builds a `session_open` request line (protocol v2).
pub fn session_open_request(timeout_ms: Option<u64>, steps: Option<u64>) -> String {
    let mut out = String::from("{\"op\":\"session_open\",\"v\":2");
    if let Some(ms) = timeout_ms {
        out.push_str(&format!(",\"timeout_ms\":{ms}"));
    }
    if let Some(s) = steps {
        out.push_str(&format!(",\"steps\":{s}"));
    }
    out.push('}');
    out
}

/// Builds a session `assert` request line (protocol v2).
pub fn assert_request(session: &str, constraint: &str) -> String {
    let mut out = String::with_capacity(constraint.len() + 64);
    out.push_str("{\"op\":\"assert\",\"v\":2,");
    json::push_key(&mut out, "session");
    json::push_str_lit(&mut out, session);
    out.push(',');
    json::push_key(&mut out, "constraint");
    json::push_str_lit(&mut out, constraint);
    out.push('}');
    out
}

/// Builds a session `check` request line (protocol v2).
pub fn check_request(session: &str, no_cache: bool) -> String {
    let mut out = String::from("{\"op\":\"check\",\"v\":2,");
    json::push_key(&mut out, "session");
    json::push_str_lit(&mut out, session);
    if no_cache {
        out.push_str(",\"no_cache\":true");
    }
    out.push('}');
    out
}

/// Builds a `session_close` request line (protocol v2).
pub fn session_close_request(session: &str) -> String {
    let mut out = String::from("{\"op\":\"session_close\",\"v\":2,");
    json::push_key(&mut out, "session");
    json::push_str_lit(&mut out, session);
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Response auditing
// ---------------------------------------------------------------------------

/// Client-side audit of one solve reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Audit {
    /// `sat` / `unsat` / `unknown` / `error` / `overloaded`.
    pub verdict: String,
    /// `hit` / `miss` / `off` (empty for non-ok replies).
    pub cache: String,
    /// The reply was well-formed for its status.
    pub well_formed: bool,
    /// A `sat` model was present, parseable, and exactly satisfies the
    /// constraint. `true` when there was nothing to check.
    pub sound: bool,
}

/// Parses a model value printed by the server back into a [`Value`],
/// given the variable's sort in the requester's script.
fn parse_value(sort: &Sort, printed: &str) -> Option<Value> {
    match sort {
        Sort::Bool => match printed {
            "true" => Some(Value::Bool(true)),
            "false" => Some(Value::Bool(false)),
            _ => None,
        },
        Sort::Int => BigInt::from_str(printed).ok().map(Value::Int),
        Sort::Real => BigRational::from_str(printed).ok().map(Value::Real),
        // Bitvector / float model values round-trip through SMT-LIB
        // syntax, not Display; the loadgen corpora are Int/Real/Bool so
        // auditing those sorts is out of scope here.
        _ => None,
    }
}

/// Audits one reply line against the constraint that produced it.
pub fn audit_reply(constraint: &str, reply_line: &str) -> Audit {
    let bad = |verdict: &str| Audit {
        verdict: verdict.to_string(),
        cache: String::new(),
        well_formed: false,
        sound: true,
    };
    let Ok(reply) = json::parse(reply_line) else {
        return bad("unparseable");
    };
    let status = reply.get("status").and_then(Json::as_str).unwrap_or("");
    match status {
        "overloaded" => {
            return Audit {
                verdict: "overloaded".into(),
                cache: String::new(),
                well_formed: true,
                sound: true,
            }
        }
        "error" => {
            let has_code = reply
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .is_some();
            return Audit {
                verdict: "error".into(),
                cache: String::new(),
                well_formed: has_code,
                sound: true,
            };
        }
        "ok" => {}
        _ => return bad("bad-status"),
    }
    let Some(verdict) = reply.get("verdict").and_then(Json::as_str) else {
        return bad("ok");
    };
    let cache = reply
        .get("cache")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    let well_formed = matches!(verdict, "sat" | "unsat" | "unknown")
        && matches!(cache.as_str(), "hit" | "miss" | "off")
        && reply.get("fingerprint").and_then(Json::as_str).is_some();

    let mut sound = true;
    if verdict == "sat" {
        if let (Some(Json::Obj(bindings)), Ok(script)) =
            (reply.get("model"), Script::parse(constraint))
        {
            let mut model = Model::new();
            let mut parseable = true;
            for (name, value) in bindings {
                let Some(sym) = script.store().symbol(name) else {
                    parseable = false;
                    break;
                };
                let sort = script.store().symbol_sort(sym);
                match value.as_str().and_then(|v| parse_value(&sort, v)) {
                    Some(v) => {
                        model.insert(sym, v);
                    }
                    None => {
                        parseable = false;
                        break;
                    }
                }
            }
            if parseable {
                sound = script
                    .assertions()
                    .iter()
                    .all(|&a| matches!(evaluate(script.store(), a, &model), Ok(Value::Bool(true))));
            }
        }
    }
    Audit {
        verdict: verdict.to_string(),
        cache,
        well_formed,
        sound,
    }
}

// ---------------------------------------------------------------------------
// Load generation
// ---------------------------------------------------------------------------

/// Load-generator tuning.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server (or router) endpoint to dial.
    pub endpoint: Endpoint,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Times to replay the whole corpus.
    pub repeat: usize,
    /// Send `no_cache` on every request.
    pub no_cache: bool,
    /// Per-request step budget to send.
    pub steps: Option<u64>,
    /// Per-request timeout to send.
    pub timeout_ms: Option<u64>,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            endpoint: Endpoint::Tcp(String::new()),
            concurrency: 8,
            repeat: 1,
            no_cache: false,
            steps: None,
            timeout_ms: None,
        }
    }
}

/// One request's measured outcome.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The constraint's name.
    pub name: String,
    /// Audited verdict string.
    pub verdict: String,
    /// `hit` / `miss` / `off`.
    pub cache: String,
    /// Round-trip latency.
    pub latency: Duration,
    /// Reply was well-formed.
    pub well_formed: bool,
    /// Reply passed the client-side model audit.
    pub sound: bool,
}

impl RequestRecord {
    /// One JSONL line for the throughput artifact.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        json::push_key(&mut out, "name");
        json::push_str_lit(&mut out, &self.name);
        out.push(',');
        json::push_key(&mut out, "verdict");
        json::push_str_lit(&mut out, &self.verdict);
        out.push(',');
        json::push_key(&mut out, "cache");
        json::push_str_lit(&mut out, &self.cache);
        out.push_str(&format!(
            ",\"ms\":{:.3},\"well_formed\":{},\"sound\":{}}}",
            self.latency.as_secs_f64() * 1e3,
            self.well_formed,
            self.sound
        ));
        out
    }
}

/// Aggregate results of one loadgen run.
#[derive(Debug)]
pub struct LoadgenOutcome {
    /// Every request's record, in completion order.
    pub records: Vec<RequestRecord>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Transport-level failures (connect/read/write errors).
    pub transport_errors: u64,
}

impl LoadgenOutcome {
    /// Requests per second over the whole run.
    pub fn rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.records.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Latency percentile (p in [0,100]) over completed requests,
    /// nearest-rank convention.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.records.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted: Vec<Duration> = self.records.iter().map(|r| r.latency).collect();
        sorted.sort();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// `true` when every reply was well-formed and sound and the
    /// transport stayed clean.
    pub fn clean(&self) -> bool {
        self.transport_errors == 0 && self.records.iter().all(|r| r.well_formed && r.sound)
    }

    /// Count of records whose cache field matches.
    pub fn cache_count(&self, kind: &str) -> usize {
        self.records.iter().filter(|r| r.cache == kind).count()
    }
}

/// Replays `corpus` (name, constraint) pairs against a server at the
/// requested concurrency; each worker owns one connection and pulls the
/// next corpus index from a shared counter, so work distribution is
/// dynamic rather than striped.
///
/// # Errors
///
/// Only setup failures (spawn errors) surface here; per-request
/// transport failures are counted in the outcome instead.
pub fn run_loadgen(
    corpus: &[(String, String)],
    config: &LoadgenConfig,
) -> io::Result<LoadgenOutcome> {
    let total = corpus.len() * config.repeat.max(1);
    let next = AtomicUsize::new(0);
    let transport_errors = AtomicU64::new(0);
    let records: Mutex<Vec<RequestRecord>> = Mutex::new(Vec::with_capacity(total));
    let started = Instant::now();

    std::thread::scope(|scope| -> io::Result<()> {
        for worker in 0..config.concurrency.max(1) {
            let next = &next;
            let records = &records;
            let transport_errors = &transport_errors;
            let config = &config;
            std::thread::Builder::new()
                .name(format!("loadgen-{worker}"))
                .spawn_scoped(scope, move || {
                    let mut conn = match Connection::connect(&config.endpoint) {
                        Ok(c) => c,
                        Err(_) => {
                            transport_errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            return;
                        }
                        let (name, constraint) = &corpus[i % corpus.len()];
                        let request = solve_request(
                            name,
                            constraint,
                            config.timeout_ms,
                            config.steps,
                            config.no_cache,
                        );
                        let sent = Instant::now();
                        match conn.roundtrip(&request) {
                            Ok(reply) => {
                                let audit = audit_reply(constraint, &reply);
                                records
                                    .lock()
                                    .expect("records poisoned")
                                    .push(RequestRecord {
                                        name: name.clone(),
                                        verdict: audit.verdict,
                                        cache: audit.cache,
                                        latency: sent.elapsed(),
                                        well_formed: audit.well_formed,
                                        sound: audit.sound,
                                    });
                            }
                            Err(_) => {
                                transport_errors.fetch_add(1, Ordering::Relaxed);
                                // The connection is suspect; reconnect.
                                match Connection::connect(&config.endpoint) {
                                    Ok(c) => conn = c,
                                    Err(_) => return,
                                }
                            }
                        }
                    }
                })?;
        }
        Ok(())
    })?;

    Ok(LoadgenOutcome {
        records: records.into_inner().expect("records poisoned"),
        wall: started.elapsed(),
        transport_errors: transport_errors.into_inner(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SQUARE: &str = "(declare-fun x () Int)(assert (= (* x x) 49))(check-sat)";

    #[test]
    fn audit_accepts_a_sound_sat_reply() {
        let reply = r#"{"id":"a","status":"ok","verdict":"sat","model":{"x":"7"},"winner":"baseline/zed","cache":"miss","fingerprint":"00","wall_ms":1.0,"stats":null}"#;
        let audit = audit_reply(SQUARE, reply);
        assert!(audit.well_formed, "{audit:?}");
        assert!(audit.sound, "{audit:?}");
        assert_eq!(audit.verdict, "sat");
        assert_eq!(audit.cache, "miss");
    }

    #[test]
    fn audit_flags_an_unsound_model() {
        let reply = r#"{"id":"a","status":"ok","verdict":"sat","model":{"x":"8"},"winner":null,"cache":"hit","fingerprint":"00","wall_ms":1.0,"stats":null}"#;
        let audit = audit_reply(SQUARE, reply);
        assert!(!audit.sound, "{audit:?}");
    }

    #[test]
    fn audit_flags_malformed_replies() {
        assert!(!audit_reply(SQUARE, "not json").well_formed);
        assert!(!audit_reply(SQUARE, r#"{"status":"ok"}"#).well_formed);
        assert!(
            !audit_reply(
                SQUARE,
                r#"{"status":"ok","verdict":"maybe","cache":"miss","fingerprint":"00"}"#
            )
            .well_formed
        );
    }

    #[test]
    fn audit_accepts_protocol_errors_as_well_formed() {
        let reply = r#"{"id":null,"status":"error","error":{"code":"parse-error","message":"no"}}"#;
        let audit = audit_reply(SQUARE, reply);
        assert!(audit.well_formed);
        assert_eq!(audit.verdict, "error");
    }

    #[test]
    fn rational_model_values_parse_back() {
        assert_eq!(
            parse_value(&Sort::Real, "3/4"),
            Some(Value::Real(BigRational::new(
                BigInt::from(3),
                BigInt::from(4)
            )))
        );
        assert_eq!(parse_value(&Sort::Bool, "true"), Some(Value::Bool(true)));
        assert_eq!(parse_value(&Sort::Int, "x"), None);
    }

    #[test]
    fn percentiles_and_rps_are_stable() {
        let outcome = LoadgenOutcome {
            records: (1..=100)
                .map(|i| RequestRecord {
                    name: format!("r{i}"),
                    verdict: "sat".into(),
                    cache: "miss".into(),
                    latency: Duration::from_millis(i),
                    well_formed: true,
                    sound: true,
                })
                .collect(),
            wall: Duration::from_secs(2),
            transport_errors: 0,
        };
        assert_eq!(outcome.rps(), 50.0);
        assert_eq!(outcome.latency_percentile(50.0), Duration::from_millis(50));
        assert_eq!(outcome.latency_percentile(95.0), Duration::from_millis(95));
        assert!(outcome.clean());
    }
}
