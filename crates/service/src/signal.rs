//! SIGINT/SIGTERM → shutdown-flag plumbing for graceful drain.
//!
//! The whole workspace denies `unsafe_code`; this module is the single,
//! audited exception (an `allow` override), kept to the minimum a signal
//! handler needs: one `extern` declaration of libc's `signal(2)` and two
//! calls to it. The handler itself only stores to an `AtomicBool` —
//! async-signal-safe by construction. The accept loop runs nonblocking
//! and polls [`shutdown_requested`], because glibc installs handlers with
//! `SA_RESTART`, so a blocking `accept` would never observe the signal.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT/SIGTERM has been delivered (or [`request_shutdown`]
/// called) since process start.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Raises the shutdown flag from ordinary code (the `shutdown` protocol
/// op and tests use this; the signal handler uses the same flag).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{Ordering, SHUTDOWN};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (idempotent; no-op off Unix).
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shutdown_raises_flag() {
        // Process-global state: this test asserts the one-way transition
        // only, so it cannot race with other tests in the same binary.
        request_shutdown();
        assert!(shutdown_requested());
    }
}
