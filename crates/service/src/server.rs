//! The `staub serve` daemon: accept loops, admission control, and the
//! per-request solve path (cache → scheduler).
//!
//! The server speaks the newline-delimited JSON protocol of
//! [`crate::protocol`] over TCP and (on Unix) a Unix domain socket. Each
//! connection gets its own thread; each `solve` request passes through an
//! [`AdmissionGate`] bounding concurrent scheduler work, then through the
//! canonical-constraint [`AnswerCache`] (unless disabled), and only on a
//! miss spawns lanes via
//! [`run_one_with`](staub_core::run_one_with).
//!
//! # Drain
//!
//! Listeners are nonblocking and the accept loops poll the shutdown flag
//! ([`crate::signal`]), because glibc's `SA_RESTART` would otherwise keep
//! a blocking `accept` alive across SIGINT. On shutdown the server stops
//! accepting, lets in-flight requests finish, closes idle connections at
//! their next read-timeout tick, joins every connection thread, and only
//! then lets [`Server::join`] return — no request is abandoned mid-solve.
//!
//! # Cached-answer soundness
//!
//! A cache hit never trusts the stored bytes blindly: `sat` entries are
//! rebound onto the requester's own symbols through the canonical
//! variable table and **re-verified by exact evaluation** of every
//! assertion before being served; any failure (index out of range, sort
//! mismatch surfacing as an eval error, stale entry) silently degrades to
//! a miss and the scheduler runs. `unsat` entries are verdict-only and
//! derive either from exact lanes or from certified complete lanes (the
//! scheduler promotes a bounded-unsat only when its a-priori bound
//! certificate passes the independent `L4xx` lints), so replaying the
//! verdict for a canonically identical constraint is sound by
//! construction.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use staub_core::{
    run_one_with, BatchConfig, BatchVerdict, Metrics, RunOptions, Session, StaubConfig, StaubError,
    StaubOutcome,
};
use staub_smtlib::{canonicalize, evaluate, Canonical, Model, Script, Value};
use staub_solver::SolverProfile;

use crate::cache::{AnswerCache, CacheConfig, CachedVerdict};
use crate::protocol::{
    self, codes, LineRead, LineReader, ProtocolError, Request, SolveReply, SolveRequest,
};
use crate::signal;

/// How a server instance should listen, solve, and cache.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP address to bind (e.g. `127.0.0.1:7227`; port `0` for ephemeral).
    pub tcp: String,
    /// Optional Unix-socket path to additionally bind (Unix only).
    pub unix: Option<std::path::PathBuf>,
    /// Scheduler configuration for cache misses. Per-request `timeout_ms`
    /// and `steps` overrides are clamped to these values — a client can
    /// ask for less work than the server default, never more.
    pub batch: BatchConfig,
    /// Answer-cache tuning; `None` disables the cache entirely.
    pub cache: Option<CacheConfig>,
    /// Maximum `solve` requests running lanes at once.
    pub max_inflight: usize,
    /// Maximum `solve` requests queued behind the inflight limit before
    /// the server answers `overloaded` instead of blocking.
    pub max_waiting: usize,
    /// Request-line size cap in bytes (satellite of the parser depth cap).
    pub max_line_bytes: usize,
    /// Per-read socket timeout: the idle-poll granularity for drain.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            tcp: "127.0.0.1:0".to_string(),
            unix: None,
            batch: BatchConfig::default(),
            cache: Some(CacheConfig::default()),
            max_inflight: 4,
            max_waiting: 64,
            max_line_bytes: protocol::DEFAULT_MAX_LINE_BYTES,
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// Bounded-queue admission control for `solve` requests.
///
/// `acquire` admits up to `max_inflight` concurrent holders; up to
/// `max_waiting` more block on a condvar (woken in no particular order —
/// fairness is not needed, boundedness is). Anything beyond that is
/// refused immediately so the client gets an `overloaded` reply instead
/// of unbounded queueing.
struct AdmissionGate {
    state: Mutex<(usize, usize)>, // (active, waiting)
    cv: Condvar,
    max_inflight: usize,
    max_waiting: usize,
}

/// Why `acquire` did not grant a slot.
enum Refused {
    /// Both the inflight and waiting budgets are full.
    Overloaded,
    /// The server began draining while this request waited.
    ShuttingDown,
}

impl AdmissionGate {
    fn new(max_inflight: usize, max_waiting: usize) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_waiting,
        }
    }

    fn acquire(&self, shutting_down: impl Fn() -> bool) -> Result<(), Refused> {
        let mut s = self.state.lock().expect("gate poisoned");
        if s.0 < self.max_inflight {
            s.0 += 1;
            return Ok(());
        }
        if s.1 >= self.max_waiting {
            return Err(Refused::Overloaded);
        }
        s.1 += 1;
        loop {
            if shutting_down() {
                s.1 -= 1;
                return Err(Refused::ShuttingDown);
            }
            if s.0 < self.max_inflight {
                s.1 -= 1;
                s.0 += 1;
                return Ok(());
            }
            let (next, _) = self
                .cv
                .wait_timeout(s, Duration::from_millis(50))
                .expect("gate poisoned");
            s = next;
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.0 -= 1;
        drop(s);
        self.cv.notify_one();
    }

    fn active(&self) -> usize {
        self.state.lock().expect("gate poisoned").0
    }
}

/// State shared by the accept loops and every connection thread.
struct Inner {
    config: ServeConfig,
    cache: Option<AnswerCache>,
    metrics: Arc<Metrics>,
    gate: AdmissionGate,
    started: Instant,
    local_shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
}

impl Inner {
    fn shutting_down(&self) -> bool {
        self.local_shutdown.load(Ordering::SeqCst) || signal::shutdown_requested()
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] then [`Server::join`] (or deliver SIGINT).
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listeners and starts the accept loops.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, bad socket path, …).
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let tcp = TcpListener::bind(&config.tcp)?;
        tcp.set_nonblocking(true)?;
        let addr = tcp.local_addr()?;

        #[cfg(unix)]
        let unix_listener = match &config.unix {
            Some(path) => {
                // A previous unclean exit leaves the socket file behind;
                // rebinding requires removing it first.
                let _ = std::fs::remove_file(path);
                let l = std::os::unix::net::UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };

        let cache = config.cache.as_ref().map(AnswerCache::new);
        let inner = Arc::new(Inner {
            gate: AdmissionGate::new(config.max_inflight, config.max_waiting),
            cache,
            metrics: Arc::new(Metrics::new()),
            started: Instant::now(),
            local_shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            config,
        });

        let mut accept_handles = Vec::new();
        {
            let inner = Arc::clone(&inner);
            accept_handles.push(
                std::thread::Builder::new()
                    .name("staub-accept-tcp".into())
                    .spawn(move || accept_loop(&inner, &tcp, tcp_conn))?,
            );
        }
        #[cfg(unix)]
        if let Some(listener) = unix_listener {
            let inner = Arc::clone(&inner);
            accept_handles.push(
                std::thread::Builder::new()
                    .name("staub-accept-unix".into())
                    .spawn(move || accept_loop(&inner, &listener, unix_conn))?,
            );
        }

        Ok(Server {
            inner,
            addr,
            accept_handles,
        })
    }

    /// The bound TCP address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain (same effect as SIGINT).
    pub fn shutdown(&self) {
        self.inner.local_shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the drain to complete: accept loops exited, every
    /// connection thread joined.
    pub fn join(mut self) -> DrainSummary {
        for h in self.accept_handles.drain(..) {
            let _ = h.join();
        }
        DrainSummary {
            connections: self.inner.connections.load(Ordering::Relaxed),
            requests: self.inner.requests.load(Ordering::Relaxed),
            uptime: self.inner.started.elapsed(),
        }
    }

    /// Point-in-time health JSON, as served to `staub client --health`
    /// (exposed for tests and the drain banner).
    pub fn health_json(&self) -> String {
        health_reply(&self.inner, 1, None)
    }
}

/// What a drained server reports on the way out.
#[derive(Debug, Clone, Copy)]
pub struct DrainSummary {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests handled over the server's lifetime.
    pub requests: u64,
    /// Total time the server was up.
    pub uptime: Duration,
}

// ---------------------------------------------------------------------------
// Accept loops and connections
// ---------------------------------------------------------------------------

/// Poll cadence of the nonblocking accept loops.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

trait Acceptor {
    type Stream: Read + Write + Send + 'static;
    fn try_accept(&self) -> io::Result<Self::Stream>;
}

impl Acceptor for TcpListener {
    type Stream = TcpStream;
    fn try_accept(&self) -> io::Result<TcpStream> {
        self.accept().map(|(s, _)| s)
    }
}

#[cfg(unix)]
impl Acceptor for std::os::unix::net::UnixListener {
    type Stream = std::os::unix::net::UnixStream;
    fn try_accept(&self) -> io::Result<Self::Stream> {
        self.accept().map(|(s, _)| s)
    }
}

fn tcp_conn(stream: &TcpStream, timeout: Duration) -> io::Result<()> {
    stream.set_read_timeout(Some(timeout))
}

#[cfg(unix)]
fn unix_conn(stream: &std::os::unix::net::UnixStream, timeout: Duration) -> io::Result<()> {
    stream.set_read_timeout(Some(timeout))
}

fn accept_loop<L: Acceptor>(
    inner: &Arc<Inner>,
    listener: &L,
    configure: fn(&L::Stream, Duration) -> io::Result<()>,
) {
    let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
    while !inner.shutting_down() {
        match listener.try_accept() {
            Ok(stream) => {
                if configure(&stream, inner.config.read_timeout).is_err() {
                    continue; // peer already gone
                }
                inner.connections.fetch_add(1, Ordering::Relaxed);
                inner.metrics.incr("serve.connections", 1);
                let inner = Arc::clone(inner);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("staub-conn".into())
                    .spawn(move || connection_loop(&inner, stream))
                {
                    conn_handles.push(handle);
                }
                // Opportunistically reap finished connection threads so a
                // long-lived server does not accumulate join handles.
                conn_handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for handle in conn_handles {
        let _ = handle.join();
    }
}

fn write_line(stream: &mut impl Write, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Open sessions of one connection. Session state is
/// connection-scoped: a dropped connection drops its solver state, so a
/// crashed client cannot leak warm engines.
#[derive(Default)]
struct SessionTable {
    next: u64,
    open: Vec<(String, Session)>,
}

/// Cap on concurrently open sessions per connection — each one holds a
/// warm solver engine, so the bound is a memory bound.
const MAX_SESSIONS_PER_CONN: usize = 8;

impl SessionTable {
    fn get_mut(&mut self, name: &str) -> Option<&mut Session> {
        self.open
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    fn close(&mut self, name: &str) -> bool {
        let before = self.open.len();
        self.open.retain(|(n, _)| n != name);
        self.open.len() < before
    }
}

fn connection_loop<S: Read + Write>(inner: &Arc<Inner>, mut stream: S) {
    let mut reader = LineReader::new(inner.config.max_line_bytes);
    let mut sessions = SessionTable::default();
    loop {
        match reader.next_line(&mut stream) {
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                inner.requests.fetch_add(1, Ordering::Relaxed);
                inner.metrics.incr("serve.requests", 1);
                let (reply, keep_open) = handle_line(inner, &mut sessions, &line);
                if write_line(&mut stream, &reply).is_err() || !keep_open {
                    return;
                }
            }
            Ok(LineRead::Idle) => {
                if inner.shutting_down() {
                    return; // drain: drop idle keep-alive connections
                }
            }
            Ok(LineRead::TooLong) => {
                inner.metrics.incr("serve.errors", 1);
                let reply = protocol::error_reply(
                    1,
                    None,
                    codes::OVERSIZED,
                    &format!(
                        "request line exceeds {} bytes; closing connection",
                        inner.config.max_line_bytes
                    ),
                );
                let _ = write_line(&mut stream, &reply);
                return;
            }
            Ok(LineRead::BadUtf8) => {
                inner.metrics.incr("serve.errors", 1);
                let reply =
                    protocol::error_reply(1, None, codes::BAD_JSON, "request line is not UTF-8");
                let _ = write_line(&mut stream, &reply);
                return;
            }
            Ok(LineRead::Eof) | Err(_) => return,
        }
    }
}

/// Dispatches one request line. Returns the reply and whether the
/// connection stays open.
fn handle_line(inner: &Arc<Inner>, sessions: &mut SessionTable, line: &str) -> (String, bool) {
    // Gate-protected work (one `solve` or session `check`), shared by both
    // request shapes: refuse while draining, admit through the bounded
    // queue, release on the way out.
    fn gated(
        inner: &Arc<Inner>,
        id: Option<&str>,
        v: u32,
        work: impl FnOnce() -> String,
    ) -> (String, bool) {
        if inner.shutting_down() {
            inner.metrics.incr("serve.errors", 1);
            return (
                protocol::error_reply(v, id, codes::SHUTTING_DOWN, "server is draining"),
                false,
            );
        }
        match inner.gate.acquire(|| inner.shutting_down()) {
            Err(Refused::Overloaded) => {
                inner.metrics.incr("serve.overloaded", 1);
                (protocol::overloaded_reply(v, id), true)
            }
            Err(Refused::ShuttingDown) => (
                protocol::error_reply(v, id, codes::SHUTTING_DOWN, "server is draining"),
                false,
            ),
            Ok(()) => {
                let reply = work();
                inner.gate.release();
                (reply, true)
            }
        }
    }

    let (v, request) = match protocol::parse_request(line) {
        Err(ProtocolError { code, message }) => {
            // A malformed line means the sender's framing can no longer be
            // trusted: reply with the structured error, then close. (The
            // one exception is a *well-formed* line at a future version —
            // framing is fine, so the connection survives the refusal.)
            inner.metrics.incr("serve.errors", 1);
            let keep_open = code == codes::UNSUPPORTED_VERSION;
            return (protocol::error_reply(1, None, code, &message), keep_open);
        }
        Ok(parsed) => parsed,
    };
    match request {
        Request::Health { id } => (health_reply(inner, v, id.as_deref()), true),
        Request::Shutdown { id } => {
            inner.local_shutdown.store(true, Ordering::SeqCst);
            let mut out = format!("{{\"v\":{v},");
            match &id {
                Some(id) => {
                    out.push_str("\"id\":");
                    crate::json::push_str_lit(&mut out, id);
                }
                None => out.push_str("\"id\":null"),
            }
            out.push_str(",\"status\":\"ok\",\"draining\":true}");
            (out, false)
        }
        Request::Solve(req) => {
            let id = req.id.clone();
            gated(inner, id.as_deref(), v, || solve_one(inner, v, &req))
        }
        Request::SessionOpen {
            id,
            timeout_ms,
            steps,
        } => (
            open_session(inner, sessions, id.as_deref(), timeout_ms, steps),
            true,
        ),
        Request::SessionAssert {
            id,
            session,
            constraint,
        } => {
            let reply = match sessions.get_mut(&session) {
                None => unknown_session(inner, id.as_deref(), &session),
                Some(open) => match open.assert_text(&constraint) {
                    Ok(()) => {
                        inner.metrics.incr("serve.session.asserts", 1);
                        protocol::session_reply(
                            2,
                            id.as_deref(),
                            &session,
                            &format!("\"level\":{}", open.assertion_level()),
                        )
                    }
                    Err(e) => {
                        inner.metrics.incr("serve.errors", 1);
                        protocol::error_reply(2, id.as_deref(), codes::PARSE_ERROR, &e.to_string())
                    }
                },
            };
            (reply, true)
        }
        Request::SessionCheck {
            id,
            session,
            no_cache,
        } => {
            if sessions.get_mut(&session).is_none() {
                return (unknown_session(inner, id.as_deref(), &session), true);
            }
            gated(inner, id.as_deref(), v, || {
                let open = sessions
                    .get_mut(&session)
                    .expect("session checked above; single-threaded connection");
                check_session(inner, id.as_deref(), &session, open, no_cache)
            })
        }
        Request::SessionClose { id, session } => {
            let reply = if sessions.close(&session) {
                inner.metrics.incr("serve.session.closed", 1);
                protocol::session_reply(2, id.as_deref(), &session, "\"closed\":true")
            } else {
                unknown_session(inner, id.as_deref(), &session)
            };
            (reply, true)
        }
    }
}

fn unknown_session(inner: &Arc<Inner>, id: Option<&str>, session: &str) -> String {
    inner.metrics.incr("serve.errors", 1);
    protocol::error_reply(
        2,
        id,
        codes::UNKNOWN_SESSION,
        &format!("no open session `{session}` on this connection"),
    )
}

// ---------------------------------------------------------------------------
// The solve path
// ---------------------------------------------------------------------------

/// Rebinds a cached canonical-index model onto the requester's symbols.
/// Returns `None` when an index has no counterpart (a stale or corrupt
/// entry) — the caller degrades to a miss.
fn rebind_model(canon: &Canonical, bindings: &[(usize, Value)]) -> Option<Model> {
    let mut model = Model::new();
    for (idx, value) in bindings {
        let sym = *canon.vars().get(*idx)?;
        model.insert(sym, value.clone());
    }
    Some(model)
}

/// Exact evaluation of every assertion under `model` (paper §4.4 applied
/// to cached answers: the model is only served if it still checks out).
fn model_satisfies(script: &Script, model: &Model) -> bool {
    script
        .assertions()
        .iter()
        .all(|&a| matches!(evaluate(script.store(), a, model), Ok(Value::Bool(true))))
}

fn named_bindings(script: &Script, model: &Model) -> Vec<(String, String)> {
    model
        .iter()
        .map(|(sym, value)| {
            (
                script.store().symbol_name(sym).to_string(),
                value.to_string(),
            )
        })
        .collect()
}

/// A cached verdict ready to serve: already rebound onto the
/// requester's symbols and re-verified.
enum CacheAnswer {
    Sat {
        bindings: Vec<(String, String)>,
        winner: Option<String>,
    },
    Unsat {
        winner: Option<String>,
    },
}

/// Wire projection of a cached answer: verdict name, sat bindings, winner.
type CacheParts = (&'static str, Option<Vec<(String, String)>>, Option<String>);

impl CacheAnswer {
    fn into_parts(self) -> CacheParts {
        match self {
            CacheAnswer::Sat { bindings, winner } => ("sat", Some(bindings), winner),
            CacheAnswer::Unsat { winner } => ("unsat", None, winner),
        }
    }
}

/// Consults the answer cache for a canonicalized script. `None` is a
/// miss — including an entry that failed re-verification, which is never
/// served (see the module docs on cached-answer soundness).
fn cache_lookup(inner: &Inner, canon: &Canonical, script: &Script) -> Option<CacheAnswer> {
    let cache = inner.cache.as_ref()?;
    match cache.get(canon.fingerprint, &canon.key) {
        Some(CachedVerdict::Sat { model, winner }) => {
            if let Some(rebound) = rebind_model(canon, &model) {
                if model_satisfies(script, &rebound) {
                    inner.metrics.incr("serve.cache.hit", 1);
                    return Some(CacheAnswer::Sat {
                        bindings: named_bindings(script, &rebound),
                        winner,
                    });
                }
            }
            // Re-verification failed: never serve it, solve fresh.
            inner.metrics.incr("serve.cache.unsound_hit", 1);
            None
        }
        Some(CachedVerdict::Unsat { winner }) => {
            inner.metrics.incr("serve.cache.hit", 1);
            Some(CacheAnswer::Unsat { winner })
        }
        None => {
            inner.metrics.incr("serve.cache.miss", 1);
            None
        }
    }
}

/// Stores a fresh `sat` model or `unsat` verdict under the canonical
/// key (`unknown` is a budget artifact, never cached) and refreshes the
/// cache gauges.
fn cache_store(inner: &Inner, canon: &Canonical, model: Option<&Model>, winner: &Option<String>) {
    let Some(cache) = inner.cache.as_ref() else {
        return;
    };
    let verdict = match model {
        Some(model) => {
            // Index the model by canonical variable; symbols that do
            // not occur in any assertion have no canonical index and
            // are irrelevant to re-verification, so they are dropped.
            let indexed: Vec<(usize, Value)> = model
                .iter()
                .filter_map(|(sym, v)| canon.var_index(sym).map(|i| (i, v.clone())))
                .collect();
            CachedVerdict::Sat {
                model: indexed,
                winner: winner.clone(),
            }
        }
        None => CachedVerdict::Unsat {
            winner: winner.clone(),
        },
    };
    cache.insert(canon.fingerprint, canon.key.clone(), verdict);
    let stats = cache.stats();
    inner
        .metrics
        .gauge_set("serve.cache.entries", stats.entries as i64);
    inner
        .metrics
        .gauge_set("serve.cache.evictions", stats.evictions as i64);
}

fn solve_one(inner: &Arc<Inner>, v: u32, req: &SolveRequest) -> String {
    let start = Instant::now();
    let id = req.id.as_deref();

    let script = match Script::parse(&req.constraint) {
        Ok(s) => s,
        Err(e) => {
            inner.metrics.incr("serve.errors", 1);
            return protocol::error_reply(v, id, codes::PARSE_ERROR, &e.to_string());
        }
    };
    if script.assertions().is_empty() {
        inner.metrics.incr("serve.errors", 1);
        return protocol::error_reply(v, id, codes::EMPTY_SCRIPT, "constraint asserts nothing");
    }

    let canon = canonicalize(&script);
    let use_cache = inner.cache.is_some() && !req.no_cache;

    if use_cache {
        if let Some(answer) = cache_lookup(inner, &canon, &script) {
            let (verdict, model, winner) = answer.into_parts();
            return SolveReply {
                v,
                id: req.id.clone(),
                session: None,
                verdict,
                model,
                winner,
                provenance: None,
                cache: "hit",
                fingerprint: canon.fingerprint_hex(),
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
                stats_json: None,
            }
            .to_json();
        }
    }

    // Miss (or cache off): run the lanes, with per-request budgets clamped
    // to the server's configured maxima.
    let mut batch = inner.config.batch.clone();
    if let Some(ms) = req.timeout_ms {
        batch.timeout = batch.timeout.min(Duration::from_millis(ms));
    }
    if let Some(steps) = req.steps {
        batch.steps = batch.steps.min(steps.max(1));
    }
    let name = req.id.clone().unwrap_or_else(|| "request".to_string());
    let options = RunOptions {
        metrics: Some(Arc::clone(&inner.metrics)),
        ..RunOptions::default()
    };
    let report = inner.metrics.time("serve.solve", || {
        run_one_with(&name, &script, &batch, &options)
    });

    let winner = report.winner_lane().map(|l| l.spec.label());
    let (verdict, bindings): (&'static str, Option<Vec<(String, String)>>) = match &report.verdict {
        BatchVerdict::Sat(model) => ("sat", Some(named_bindings(&script, model))),
        BatchVerdict::Unsat => ("unsat", None),
        BatchVerdict::Unknown => ("unknown", None),
    };

    if use_cache {
        match &report.verdict {
            BatchVerdict::Sat(model) => cache_store(inner, &canon, Some(model), &winner),
            BatchVerdict::Unsat => cache_store(inner, &canon, None, &winner),
            BatchVerdict::Unknown => {}
        }
    }

    SolveReply {
        v,
        id: req.id.clone(),
        session: None,
        verdict,
        model: bindings,
        winner,
        provenance: report.provenance(),
        cache: if use_cache { "miss" } else { "off" },
        fingerprint: canon.fingerprint_hex(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        stats_json: Some(report.stats_json()),
    }
    .to_json()
}

// ---------------------------------------------------------------------------
// Incremental sessions (protocol v2)
// ---------------------------------------------------------------------------

fn open_session(
    inner: &Arc<Inner>,
    sessions: &mut SessionTable,
    id: Option<&str>,
    timeout_ms: Option<u64>,
    steps: Option<u64>,
) -> String {
    if sessions.open.len() >= MAX_SESSIONS_PER_CONN {
        inner.metrics.incr("serve.errors", 1);
        return protocol::error_reply(
            2,
            id,
            codes::BAD_REQUEST,
            &format!("session limit ({MAX_SESSIONS_PER_CONN}) reached on this connection"),
        );
    }
    // Per-check budgets are fixed at open time, clamped to the server's
    // configured maxima (same policy as per-request `solve` overrides).
    let batch = &inner.config.batch;
    let mut timeout = batch.timeout;
    if let Some(ms) = timeout_ms {
        timeout = timeout.min(Duration::from_millis(ms));
    }
    let mut step_budget = batch.steps;
    if let Some(s) = steps {
        step_budget = step_budget.min(s.max(1));
    }
    let config = StaubConfig {
        width_choice: batch.width_choice,
        limits: batch.limits,
        profile: batch
            .profiles
            .first()
            .copied()
            .unwrap_or(SolverProfile::Zed),
        timeout,
        steps: step_budget,
        ..StaubConfig::default()
    };
    let session = Session::new(config).with_metrics(Arc::clone(&inner.metrics));
    sessions.next += 1;
    let name = format!("s{}", sessions.next);
    sessions.open.push((name.clone(), session));
    inner.metrics.incr("serve.session.opened", 1);
    protocol::session_reply(2, id, &name, "")
}

fn check_session(
    inner: &Arc<Inner>,
    id: Option<&str>,
    name: &str,
    session: &mut Session,
    no_cache: bool,
) -> String {
    let start = Instant::now();
    let Some(script) = session.script().cloned() else {
        inner.metrics.incr("serve.errors", 1);
        return protocol::error_reply(2, id, codes::EMPTY_SCRIPT, "session has no assertions");
    };
    if script.assertions().is_empty() {
        inner.metrics.incr("serve.errors", 1);
        return protocol::error_reply(2, id, codes::EMPTY_SCRIPT, "session asserts nothing");
    }

    let canon = canonicalize(&script);
    let use_cache = inner.cache.is_some() && !no_cache;
    if use_cache {
        if let Some(answer) = cache_lookup(inner, &canon, &script) {
            let (verdict, model, winner) = answer.into_parts();
            return SolveReply {
                v: 2,
                id: id.map(str::to_string),
                session: Some(name.to_string()),
                verdict,
                model,
                winner,
                provenance: None,
                cache: "hit",
                fingerprint: canon.fingerprint_hex(),
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
                stats_json: None,
            }
            .to_json();
        }
    }

    inner.metrics.incr("serve.session.checks", 1);
    let outcome = match inner.metrics.time("serve.solve", || session.check()) {
        Ok(outcome) => outcome,
        Err(StaubError::EmptyScript) => {
            inner.metrics.incr("serve.errors", 1);
            return protocol::error_reply(2, id, codes::EMPTY_SCRIPT, "session asserts nothing");
        }
    };

    let provenance = outcome.provenance().clone();
    let winner = Some(provenance.label.clone());
    let (verdict, bindings): (&'static str, Option<Vec<(String, String)>>) = match &outcome {
        StaubOutcome::Sat { model, .. } => ("sat", Some(named_bindings(&script, model))),
        StaubOutcome::Unsat { .. } => ("unsat", None),
        StaubOutcome::Unknown { .. } => ("unknown", None),
    };
    if use_cache {
        match &outcome {
            StaubOutcome::Sat { model, .. } => cache_store(inner, &canon, Some(model), &winner),
            // A session `unsat` is sound — proven on the original
            // constraint, or promoted from a certified complete lane —
            // so replaying it for a canonically identical constraint is
            // sound too, the same invariant the scheduler path relies on.
            StaubOutcome::Unsat { .. } => cache_store(inner, &canon, None, &winner),
            StaubOutcome::Unknown { .. } => {}
        }
    }

    SolveReply {
        v: 2,
        id: id.map(str::to_string),
        session: Some(name.to_string()),
        verdict,
        model: bindings,
        winner,
        provenance: Some(provenance),
        cache: if use_cache { "miss" } else { "off" },
        fingerprint: canon.fingerprint_hex(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        stats_json: None,
    }
    .to_json()
}

// ---------------------------------------------------------------------------
// Health
// ---------------------------------------------------------------------------

fn health_reply(inner: &Arc<Inner>, v: u32, id: Option<&str>) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    out.push_str(&format!("\"v\":{v},"));
    out.push_str("\"id\":");
    match id {
        Some(id) => crate::json::push_str_lit(&mut out, id),
        None => out.push_str("null"),
    }
    out.push_str(",\"status\":\"ok\",\"version\":");
    crate::json::push_str_lit(&mut out, env!("CARGO_PKG_VERSION"));
    out.push_str(",\"profile\":");
    crate::json::push_str_lit(
        &mut out,
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    );
    out.push_str(&format!(
        ",\"uptime_ms\":{:.0},\"inflight\":{},\"connections\":{},\"requests\":{},\"draining\":{}",
        inner.started.elapsed().as_secs_f64() * 1e3,
        inner.gate.active(),
        inner.connections.load(Ordering::Relaxed),
        inner.requests.load(Ordering::Relaxed),
        inner.shutting_down(),
    ));
    out.push_str(",\"cache\":");
    match &inner.cache {
        None => out.push_str("null"),
        Some(cache) => {
            let s = cache.stats();
            out.push_str(&format!(
                "{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\"entries\":{}}}",
                s.hits, s.misses, s.insertions, s.evictions, s.entries
            ));
        }
    }
    out.push_str(",\"metrics\":");
    out.push_str(&inner.metrics.snapshot().to_json());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            batch: BatchConfig {
                threads: 2,
                steps: 200_000,
                ..BatchConfig::default()
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn gate_admits_up_to_inflight_then_overloads() {
        let gate = AdmissionGate::new(2, 0);
        assert!(gate.acquire(|| false).is_ok());
        assert!(gate.acquire(|| false).is_ok());
        assert!(matches!(gate.acquire(|| false), Err(Refused::Overloaded)));
        gate.release();
        assert!(gate.acquire(|| false).is_ok());
        assert_eq!(gate.active(), 2);
    }

    #[test]
    fn gate_waiter_bails_on_shutdown() {
        let gate = AdmissionGate::new(1, 4);
        assert!(gate.acquire(|| false).is_ok());
        assert!(matches!(gate.acquire(|| true), Err(Refused::ShuttingDown)));
    }

    #[test]
    fn solve_path_answers_and_caches() {
        let server = Server::start(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        let req = SolveRequest {
            id: Some("t1".into()),
            constraint: "(declare-fun x () Int)(assert (= (* x x) 49))(check-sat)".into(),
            timeout_ms: None,
            steps: None,
            no_cache: false,
        };
        let first = solve_one(&inner, 1, &req);
        assert!(first.contains("\"verdict\":\"sat\""), "{first}");
        assert!(first.contains("\"cache\":\"miss\""), "{first}");
        assert!(first.contains("\"v\":1"), "{first}");
        assert!(first.contains("\"provenance\":{"), "{first}");
        // α-renamed + commutatively flipped: must hit.
        let renamed = SolveRequest {
            constraint: "(declare-fun y () Int)(assert (= 49 (* y y)))(check-sat)".into(),
            ..req.clone()
        };
        let second = solve_one(&inner, 1, &renamed);
        assert!(second.contains("\"cache\":\"hit\""), "{second}");
        assert!(second.contains("\"verdict\":\"sat\""), "{second}");
        assert!(second.contains("\"model\":{\"y\":"), "{second}");
        let stats = inner.cache.as_ref().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        server.shutdown();
        server.join();
    }

    #[test]
    fn dl_unsat_repeat_hits_the_cache_with_dl_provenance() {
        let server = Server::start(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        // A planted negative cycle: x − y ≤ 1 together with y − x < −1.
        let req = SolveRequest {
            id: Some("dl1".into()),
            constraint: "(declare-fun x () Int)(declare-fun y () Int)\
                         (assert (<= (- x y) 1))(assert (< (- y x) (- 1)))\
                         (check-sat)"
                .into(),
            timeout_ms: None,
            steps: None,
            no_cache: false,
        };
        let first = solve_one(&inner, 1, &req);
        assert!(first.contains("\"verdict\":\"unsat\""), "{first}");
        assert!(first.contains("\"cache\":\"miss\""), "{first}");
        assert!(first.contains("\"winner\":\"dl/"), "{first}");
        // The repeat is α-renamed, flips one comparison (`>=` vs `<=`),
        // and spells the strict Int bound in its tightened non-strict
        // form — all folded away by canonicalization, so the answer must
        // come from the cache, `dl/` winner intact, with no lanes run
        // (`stats:null` is only ever emitted on the lane-free hit path).
        let renamed = SolveRequest {
            constraint: "(declare-fun a () Int)(declare-fun b () Int)\
                         (assert (>= 1 (- a b)))(assert (<= (- b a) (- 2)))\
                         (check-sat)"
                .into(),
            ..req.clone()
        };
        let second = solve_one(&inner, 1, &renamed);
        assert!(second.contains("\"cache\":\"hit\""), "{second}");
        assert!(second.contains("\"verdict\":\"unsat\""), "{second}");
        assert!(second.contains("\"winner\":\"dl/"), "{second}");
        assert!(second.contains("\"stats\":null"), "{second}");
        let stats = inner.cache.as_ref().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        server.shutdown();
        server.join();
    }

    #[test]
    fn no_cache_flag_bypasses_the_cache() {
        let server = Server::start(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        let req = SolveRequest {
            id: None,
            constraint: "(declare-fun a () Int)(assert (> a 3))(check-sat)".into(),
            timeout_ms: None,
            steps: None,
            no_cache: true,
        };
        let one = solve_one(&inner, 1, &req);
        let two = solve_one(&inner, 1, &req);
        assert!(one.contains("\"cache\":\"off\""), "{one}");
        assert!(two.contains("\"cache\":\"off\""), "{two}");
        assert_eq!(inner.cache.as_ref().unwrap().stats().insertions, 0);
        server.shutdown();
        server.join();
    }

    #[test]
    fn session_lifecycle_over_handle_line() {
        let server = Server::start(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        let mut sessions = SessionTable::default();

        let (open, keep) = handle_line(&inner, &mut sessions, r#"{"op":"session_open","v":2}"#);
        assert!(keep);
        assert!(open.contains("\"session\":\"s1\""), "{open}");

        let (reply, keep) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"assert","v":2,"session":"s1","constraint":"(declare-fun x () Int)(assert (= (* x x) 49))"}"#,
        );
        assert!(keep);
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        assert!(reply.contains("\"level\":0"), "{reply}");

        let (check1, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"check","v":2,"session":"s1"}"#,
        );
        assert!(check1.contains("\"verdict\":\"sat\""), "{check1}");
        assert!(check1.contains("\"session\":\"s1\""), "{check1}");
        assert!(check1.contains("\"v\":2"), "{check1}");

        // A second check of the identical stack is a cache hit.
        let (check2, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"check","v":2,"session":"s1"}"#,
        );
        assert!(check2.contains("\"cache\":\"hit\""), "{check2}");
        assert!(check2.contains("\"verdict\":\"sat\""), "{check2}");

        // Growing the stack changes the canonical constraint: miss, and
        // the warm engine solves the strictly stronger script.
        let (reply, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"assert","v":2,"session":"s1","constraint":"(assert (> x 0))"}"#,
        );
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        let (check3, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"check","v":2,"session":"s1"}"#,
        );
        assert!(check3.contains("\"cache\":\"miss\""), "{check3}");
        assert!(check3.contains("\"verdict\":\"sat\""), "{check3}");
        assert!(check3.contains("\"model\":{\"x\":\"7\"}"), "{check3}");

        let (closed, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"session_close","v":2,"session":"s1"}"#,
        );
        assert!(closed.contains("\"closed\":true"), "{closed}");
        let (gone, keep) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"check","v":2,"session":"s1"}"#,
        );
        assert!(keep);
        assert!(gone.contains("unknown-session"), "{gone}");

        server.shutdown();
        server.join();
    }

    #[test]
    fn bad_session_requests_keep_the_connection_open() {
        let server = Server::start(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        let mut sessions = SessionTable::default();

        // Future version: refused with its own code, connection survives.
        let (reply, keep) = handle_line(&inner, &mut sessions, r#"{"op":"health","v":7}"#);
        assert!(keep);
        assert!(reply.contains("unsupported_version"), "{reply}");

        // Session command without v:2: structured error.
        let (reply, keep) = handle_line(&inner, &mut sessions, r#"{"op":"session_open"}"#);
        assert!(!keep, "v1 misuse of a v2 op is a framing error");
        assert!(reply.contains("session command"), "{reply}");

        // A parse error inside a session assert does not corrupt it.
        let (_, _) = handle_line(&inner, &mut sessions, r#"{"op":"session_open","v":2}"#);
        let (reply, keep) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"assert","v":2,"session":"s1","constraint":"(assert (="}"#,
        );
        assert!(keep);
        assert!(reply.contains("parse-error"), "{reply}");
        let (reply, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"assert","v":2,"session":"s1","constraint":"(declare-fun b () Int)(assert (> b 2))"}"#,
        );
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");

        server.shutdown();
        server.join();
    }
}
