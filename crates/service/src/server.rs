//! The `staub serve` daemon: listeners, admission control, and the
//! per-request solve path (answer store → scheduler).
//!
//! The server speaks the newline-delimited JSON protocol of
//! [`crate::protocol`] over any [`Endpoint`] (TCP and, on Unix, a Unix
//! domain socket). Connections are served by the nonblocking epoll
//! [`crate::reactor`] on Linux — idle connections cost a slab entry, not
//! a thread, and requests execute on a fixed worker pool — or by the
//! legacy thread-per-connection loop elsewhere (and on request, via
//! [`ServerConfig::threaded`]). Each `solve` passes through an
//! [`AdmissionGate`] bounding concurrent scheduler work, then through
//! the [`AnswerStore`] (the in-memory LRU, or the crash-persistent
//! snapshot+log store when [`ServerConfig::persist`] is set), and only
//! on a miss spawns lanes via
//! [`run_one_with`](staub_core::run_one_with).
//!
//! # Drain
//!
//! Accept paths are nonblocking and poll the shutdown flag
//! ([`crate::signal`]), because glibc's `SA_RESTART` would otherwise
//! keep a blocking `accept` alive across SIGINT. On shutdown the server
//! stops accepting, lets in-flight requests finish and flush, closes
//! idle connections, joins every service thread, and only then lets
//! [`Server::join`] return — no request is abandoned mid-solve.
//!
//! # Cached-answer soundness
//!
//! A store hit never trusts the stored bytes blindly: `sat` entries are
//! rebound onto the requester's own symbols through the canonical
//! variable table and **re-verified by exact evaluation** of every
//! assertion before being served; any failure (index out of range, sort
//! mismatch surfacing as an eval error, stale or corrupt entry — even
//! one replayed from a damaged persistence log) silently degrades to a
//! miss and the scheduler runs. `unsat` entries are verdict-only and
//! derive either from exact lanes or from certified complete lanes (the
//! scheduler promotes a bounded-unsat only when its a-priori bound
//! certificate passes the independent `L4xx` lints), so replaying the
//! verdict for a canonically identical constraint is sound by
//! construction.

use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use staub_core::{
    run_one_with, BatchConfig, BatchVerdict, Metrics, RunOptions, Session, StaubConfig, StaubError,
    StaubOutcome,
};
use staub_smtlib::{canonicalize, evaluate, Canonical, Model, Script, Value};
use staub_solver::SolverProfile;

use crate::cache::{AnswerCache, AnswerStore, CacheConfig, CachedVerdict};
use crate::endpoint::{Endpoint, EndpointListener, EndpointStream};
use crate::persist::{PersistConfig, PersistentStore};
use crate::protocol::{
    self, codes, LineRead, LineReader, ProtocolError, Request, SolveReply, SolveRequest,
};
use crate::reactor::{self, ReactorConfig, ReactorGauges};
use crate::signal;

/// How a server instance listens, solves, caches, and persists.
/// Construct with [`ServerConfig::new`] and chain the builder methods;
/// every field is also public for direct struct updates.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP endpoint to bind (port `0` for ephemeral).
    pub tcp: Endpoint,
    /// Optional additional Unix-socket endpoint (Unix only).
    pub unix: Option<std::path::PathBuf>,
    /// Scheduler configuration for store misses. Per-request
    /// `timeout_ms` and `steps` overrides are clamped to these values —
    /// a client can ask for less work than the server default, never
    /// more.
    pub batch: BatchConfig,
    /// Answer-store tuning; `None` disables caching entirely.
    pub cache: Option<CacheConfig>,
    /// When set (and `cache` is on), back the store with the
    /// crash-persistent snapshot + append-only log in this directory.
    pub persist: Option<PersistConfig>,
    /// Maximum `solve` requests running lanes at once.
    pub max_inflight: usize,
    /// Maximum `solve` requests queued behind the inflight limit before
    /// the server answers `overloaded` instead of blocking.
    pub max_waiting: usize,
    /// Request-line size cap in bytes (satellite of the parser depth cap).
    pub max_line_bytes: usize,
    /// Per-read socket timeout in threaded mode: the idle-poll
    /// granularity for drain. The reactor uses it as its poll interval.
    pub read_timeout: Duration,
    /// Force the legacy thread-per-connection loop even where the epoll
    /// reactor is available.
    pub threaded: bool,
    /// Reactor worker threads (the fixed pool that executes requests).
    pub workers: usize,
    /// This node's name in protocol-v3 `route` hop lists. Defaults to
    /// `serve:<bound-address>`.
    pub node_name: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            tcp: Endpoint::Tcp("127.0.0.1:0".to_string()),
            unix: None,
            batch: BatchConfig::default(),
            cache: Some(CacheConfig::default()),
            persist: None,
            max_inflight: 4,
            max_waiting: 64,
            max_line_bytes: protocol::DEFAULT_MAX_LINE_BYTES,
            read_timeout: Duration::from_millis(50),
            threaded: false,
            workers: 4,
            node_name: None,
        }
    }
}

impl ServerConfig {
    /// The default configuration: ephemeral loopback TCP, in-memory
    /// cache, epoll reactor where available.
    pub fn new() -> ServerConfig {
        ServerConfig::default()
    }

    /// Sets the TCP listening endpoint.
    #[must_use]
    pub fn tcp(mut self, endpoint: Endpoint) -> ServerConfig {
        self.tcp = endpoint;
        self
    }

    /// Adds a Unix-socket listener.
    #[must_use]
    pub fn unix(mut self, path: impl Into<std::path::PathBuf>) -> ServerConfig {
        self.unix = Some(path.into());
        self
    }

    /// Sets the scheduler configuration used on store misses.
    #[must_use]
    pub fn batch(mut self, batch: BatchConfig) -> ServerConfig {
        self.batch = batch;
        self
    }

    /// Sets (or with `None` disables) the answer store.
    #[must_use]
    pub fn cache(mut self, cache: Option<CacheConfig>) -> ServerConfig {
        self.cache = cache;
        self
    }

    /// Backs the answer store with the persistent snapshot + log.
    #[must_use]
    pub fn persist(mut self, persist: PersistConfig) -> ServerConfig {
        self.persist = Some(persist);
        self
    }

    /// Sets the admission-gate budgets.
    #[must_use]
    pub fn admission(mut self, max_inflight: usize, max_waiting: usize) -> ServerConfig {
        self.max_inflight = max_inflight;
        self.max_waiting = max_waiting;
        self
    }

    /// Sets the request-line byte cap.
    #[must_use]
    pub fn max_line_bytes(mut self, bytes: usize) -> ServerConfig {
        self.max_line_bytes = bytes;
        self
    }

    /// Forces the legacy thread-per-connection mode.
    #[must_use]
    pub fn threaded(mut self, threaded: bool) -> ServerConfig {
        self.threaded = threaded;
        self
    }

    /// Sets the reactor worker-pool size.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> ServerConfig {
        self.workers = workers.max(1);
        self
    }

    /// Overrides this node's name in v3 `route` hop lists.
    #[must_use]
    pub fn node_name(mut self, name: impl Into<String>) -> ServerConfig {
        self.node_name = Some(name.into());
        self
    }
}

/// The pre-v3 configuration shape, kept one release for callers that
/// have not migrated (mirrors the `RunOptions` migration pattern).
#[deprecated(note = "use `ServerConfig` (builder) with `Server::launch`")]
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP address to bind (e.g. `127.0.0.1:7227`; port `0` for ephemeral).
    pub tcp: String,
    /// Optional Unix-socket path to additionally bind (Unix only).
    pub unix: Option<std::path::PathBuf>,
    /// Scheduler configuration for cache misses.
    pub batch: BatchConfig,
    /// Answer-cache tuning; `None` disables the cache entirely.
    pub cache: Option<CacheConfig>,
    /// Maximum `solve` requests running lanes at once.
    pub max_inflight: usize,
    /// Maximum queued `solve` requests before `overloaded`.
    pub max_waiting: usize,
    /// Request-line size cap in bytes.
    pub max_line_bytes: usize,
    /// Per-read socket timeout.
    pub read_timeout: Duration,
}

#[allow(deprecated)]
impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            tcp: "127.0.0.1:0".to_string(),
            unix: None,
            batch: BatchConfig::default(),
            cache: Some(CacheConfig::default()),
            max_inflight: 4,
            max_waiting: 64,
            max_line_bytes: protocol::DEFAULT_MAX_LINE_BYTES,
            read_timeout: Duration::from_millis(50),
        }
    }
}

#[allow(deprecated)]
impl From<ServeConfig> for ServerConfig {
    fn from(old: ServeConfig) -> ServerConfig {
        ServerConfig {
            tcp: Endpoint::Tcp(old.tcp),
            unix: old.unix,
            batch: old.batch,
            cache: old.cache,
            max_inflight: old.max_inflight,
            max_waiting: old.max_waiting,
            max_line_bytes: old.max_line_bytes,
            read_timeout: old.read_timeout,
            ..ServerConfig::default()
        }
    }
}

/// Bounded-queue admission control for `solve` requests.
///
/// `acquire` admits up to `max_inflight` concurrent holders; up to
/// `max_waiting` more block on a condvar (woken in no particular order —
/// fairness is not needed, boundedness is). Anything beyond that is
/// refused immediately so the client gets an `overloaded` reply instead
/// of unbounded queueing.
struct AdmissionGate {
    state: Mutex<(usize, usize)>, // (active, waiting)
    cv: Condvar,
    max_inflight: usize,
    max_waiting: usize,
}

/// Why `acquire` did not grant a slot.
enum Refused {
    /// Both the inflight and waiting budgets are full.
    Overloaded,
    /// The server began draining while this request waited.
    ShuttingDown,
}

impl AdmissionGate {
    fn new(max_inflight: usize, max_waiting: usize) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_waiting,
        }
    }

    fn acquire(&self, shutting_down: impl Fn() -> bool) -> Result<(), Refused> {
        let mut s = self.state.lock().expect("gate poisoned");
        if s.0 < self.max_inflight {
            s.0 += 1;
            return Ok(());
        }
        if s.1 >= self.max_waiting {
            return Err(Refused::Overloaded);
        }
        s.1 += 1;
        loop {
            if shutting_down() {
                s.1 -= 1;
                return Err(Refused::ShuttingDown);
            }
            if s.0 < self.max_inflight {
                s.1 -= 1;
                s.0 += 1;
                return Ok(());
            }
            let (next, _) = self
                .cv
                .wait_timeout(s, Duration::from_millis(50))
                .expect("gate poisoned");
            s = next;
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.0 -= 1;
        drop(s);
        self.cv.notify_one();
    }

    fn active(&self) -> usize {
        self.state.lock().expect("gate poisoned").0
    }

    /// Current (inflight, waiting), for the v3 `overloaded` reply.
    fn occupancy(&self) -> (usize, usize) {
        let s = self.state.lock().expect("gate poisoned");
        (s.0, s.1)
    }
}

/// State shared by the accept paths and every request executor.
struct Inner {
    config: ServerConfig,
    store: Option<Arc<dyn AnswerStore>>,
    metrics: Arc<Metrics>,
    gate: AdmissionGate,
    gauges: Arc<ReactorGauges>,
    reactor_enabled: bool,
    node: String,
    started: Instant,
    local_shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
}

impl Inner {
    fn shutting_down(&self) -> bool {
        self.local_shutdown.load(Ordering::SeqCst) || signal::shutdown_requested()
    }
}

/// The reactor-facing protocol adapter: one [`Inner`] behind the
/// [`reactor::Service`] trait.
struct ServeService {
    inner: Arc<Inner>,
}

impl reactor::Service for ServeService {
    type Conn = SessionTable;

    fn handle(&self, sessions: &mut SessionTable, line: &str) -> (String, bool) {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.incr("serve.requests", 1);
        handle_line(&self.inner, sessions, line)
    }

    fn oversized(&self, observed: usize) -> String {
        self.inner.metrics.incr("serve.errors", 1);
        protocol::oversized_reply(1, self.inner.config.max_line_bytes, observed)
    }

    fn bad_utf8(&self) -> String {
        self.inner.metrics.incr("serve.errors", 1);
        protocol::error_reply(1, None, codes::BAD_JSON, "request line is not UTF-8")
    }

    fn shutting_down(&self) -> bool {
        self.inner.shutting_down()
    }

    fn connected(&self) {
        self.inner.connections.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.incr("serve.connections", 1);
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] then [`Server::join`] (or deliver SIGINT).
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listeners, warm-starts the answer store, and starts the
    /// service threads (the reactor, or the legacy accept loops).
    ///
    /// # Errors
    ///
    /// Propagates bind failures and persistent-store I/O failures.
    pub fn launch(config: ServerConfig) -> io::Result<Server> {
        let tcp_listener = config.tcp.bind()?;
        let addr = tcp_listener
            .tcp_addr()
            .ok_or_else(|| io::Error::other("primary endpoint must be TCP"))?;

        let mut listeners = vec![tcp_listener];
        if let Some(path) = &config.unix {
            listeners.push(Endpoint::unix(path.clone()).bind()?);
        }

        let store: Option<Arc<dyn AnswerStore>> = match (&config.cache, &config.persist) {
            (None, _) => None,
            (Some(cache), None) => Some(Arc::new(AnswerCache::new(cache))),
            (Some(cache), Some(persist)) => Some(Arc::new(PersistentStore::open(cache, persist)?)),
        };

        let reactor_enabled = reactor::supported() && !config.threaded;
        let node = config
            .node_name
            .clone()
            .unwrap_or_else(|| format!("serve:{addr}"));
        let inner = Arc::new(Inner {
            gate: AdmissionGate::new(config.max_inflight, config.max_waiting),
            store,
            metrics: Arc::new(Metrics::new()),
            gauges: Arc::new(ReactorGauges::default()),
            reactor_enabled,
            node,
            started: Instant::now(),
            local_shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            config,
        });

        let mut accept_handles = Vec::new();
        if reactor_enabled {
            let service = Arc::new(ServeService {
                inner: Arc::clone(&inner),
            });
            let gauges = Arc::clone(&inner.gauges);
            let reactor_config = ReactorConfig {
                workers: inner.config.workers.max(1),
                max_line_bytes: inner.config.max_line_bytes,
                poll_interval: inner.config.read_timeout,
            };
            accept_handles.push(
                std::thread::Builder::new()
                    .name("staub-reactor".into())
                    .spawn(move || {
                        let _ = reactor::run(&service, listeners, &gauges, &reactor_config);
                    })?,
            );
        } else {
            for listener in listeners {
                let inner = Arc::clone(&inner);
                accept_handles.push(
                    std::thread::Builder::new()
                        .name("staub-accept".into())
                        .spawn(move || accept_loop(&inner, &listener))?,
                );
            }
        }

        Ok(Server {
            inner,
            addr,
            accept_handles,
        })
    }

    /// Pre-v3 entry point; binds and starts exactly like
    /// [`Server::launch`] after converting the configuration.
    #[deprecated(note = "use `Server::launch` with `ServerConfig`")]
    #[allow(deprecated)]
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        Server::launch(config.into())
    }

    /// The bound TCP address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain (same effect as SIGINT).
    pub fn shutdown(&self) {
        self.inner.local_shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the drain to complete: service threads exited, every
    /// connection closed.
    pub fn join(mut self) -> DrainSummary {
        for h in self.accept_handles.drain(..) {
            let _ = h.join();
        }
        DrainSummary {
            connections: self.inner.connections.load(Ordering::Relaxed),
            requests: self.inner.requests.load(Ordering::Relaxed),
            uptime: self.inner.started.elapsed(),
        }
    }

    /// Point-in-time health JSON, as served to `staub client --health`
    /// (exposed for tests and the drain banner).
    pub fn health_json(&self) -> String {
        health_reply(&self.inner, 1, None)
    }
}

/// What a drained server reports on the way out.
#[derive(Debug, Clone, Copy)]
pub struct DrainSummary {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests handled over the server's lifetime.
    pub requests: u64,
    /// Total time the server was up.
    pub uptime: Duration,
}

// ---------------------------------------------------------------------------
// Legacy thread-per-connection mode
// ---------------------------------------------------------------------------

/// Poll cadence of the nonblocking accept loops.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

fn accept_loop(inner: &Arc<Inner>, listener: &EndpointListener) {
    let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
    while !inner.shutting_down() {
        match listener.try_accept() {
            Ok(stream) => {
                // Accepted streams are served blocking with a read
                // timeout (the drain poll tick).
                if stream.set_nonblocking(false).is_err()
                    || stream
                        .set_read_timeout(Some(inner.config.read_timeout))
                        .is_err()
                {
                    continue; // peer already gone
                }
                inner.connections.fetch_add(1, Ordering::Relaxed);
                inner.metrics.incr("serve.connections", 1);
                inner
                    .gauges
                    .open_connections
                    .fetch_add(1, Ordering::Relaxed);
                let inner = Arc::clone(inner);
                if let Ok(handle) =
                    std::thread::Builder::new()
                        .name("staub-conn".into())
                        .spawn(move || {
                            connection_loop(&inner, stream);
                            inner
                                .gauges
                                .open_connections
                                .fetch_sub(1, Ordering::Relaxed);
                        })
                {
                    conn_handles.push(handle);
                }
                // Opportunistically reap finished connection threads so a
                // long-lived server does not accumulate join handles.
                conn_handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for handle in conn_handles {
        let _ = handle.join();
    }
}

fn write_line(stream: &mut impl Write, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Half-close then drain before dropping a connection that was just sent
/// a final reply. Closing while unread request bytes sit in the receive
/// buffer (an oversized line's tail, a pipelined request) makes the
/// kernel send RST, destroying the buffered reply before the peer reads
/// it. Sending FIN and discarding input until the peer hangs up — bounded
/// by a short deadline — lets the reply land. Mirrors the reactor's
/// lingering-close state.
fn linger_close(stream: &mut EndpointStream) {
    const LINGER: Duration = Duration::from_secs(2);
    if stream.shutdown_write().is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let deadline = Instant::now() + LINGER;
    let mut sink = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

/// Open sessions of one connection. Session state is
/// connection-scoped: a dropped connection drops its solver state, so a
/// crashed client cannot leak warm engines.
#[derive(Default)]
pub(crate) struct SessionTable {
    next: u64,
    open: Vec<(String, Session)>,
}

/// Cap on concurrently open sessions per connection — each one holds a
/// warm solver engine, so the bound is a memory bound.
const MAX_SESSIONS_PER_CONN: usize = 8;

impl SessionTable {
    fn get_mut(&mut self, name: &str) -> Option<&mut Session> {
        self.open
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    fn close(&mut self, name: &str) -> bool {
        let before = self.open.len();
        self.open.retain(|(n, _)| n != name);
        self.open.len() < before
    }
}

fn connection_loop(inner: &Arc<Inner>, mut stream: EndpointStream) {
    let mut reader = LineReader::new(inner.config.max_line_bytes);
    let mut sessions = SessionTable::default();
    loop {
        match reader.next_line(&mut stream) {
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                inner.requests.fetch_add(1, Ordering::Relaxed);
                inner.metrics.incr("serve.requests", 1);
                let (reply, keep_open) = handle_line(inner, &mut sessions, &line);
                if write_line(&mut stream, &reply).is_err() {
                    return;
                }
                if !keep_open {
                    linger_close(&mut stream);
                    return;
                }
            }
            Ok(LineRead::Idle) => {
                if inner.shutting_down() {
                    return; // drain: drop idle keep-alive connections
                }
            }
            Ok(LineRead::TooLong { observed }) => {
                inner.metrics.incr("serve.errors", 1);
                let reply = protocol::oversized_reply(1, inner.config.max_line_bytes, observed);
                if write_line(&mut stream, &reply).is_ok() {
                    linger_close(&mut stream);
                }
                return;
            }
            Ok(LineRead::BadUtf8) => {
                inner.metrics.incr("serve.errors", 1);
                let reply =
                    protocol::error_reply(1, None, codes::BAD_JSON, "request line is not UTF-8");
                if write_line(&mut stream, &reply).is_ok() {
                    linger_close(&mut stream);
                }
                return;
            }
            Ok(LineRead::Eof) | Err(_) => return,
        }
    }
}

/// Dispatches one request line. Returns the reply and whether the
/// connection stays open.
fn handle_line(inner: &Arc<Inner>, sessions: &mut SessionTable, line: &str) -> (String, bool) {
    // Gate-protected work (one `solve` or session `check`), shared by both
    // request shapes: refuse while draining, admit through the bounded
    // queue, release on the way out.
    fn gated(
        inner: &Arc<Inner>,
        id: Option<&str>,
        v: u32,
        work: impl FnOnce() -> String,
    ) -> (String, bool) {
        if inner.shutting_down() {
            inner.metrics.incr("serve.errors", 1);
            return (
                protocol::error_reply(v, id, codes::SHUTTING_DOWN, "server is draining"),
                false,
            );
        }
        match inner.gate.acquire(|| inner.shutting_down()) {
            Err(Refused::Overloaded) => {
                inner.metrics.incr("serve.overloaded", 1);
                let (inflight, waiting) = inner.gate.occupancy();
                (protocol::overloaded_reply(v, id, inflight, waiting), true)
            }
            Err(Refused::ShuttingDown) => (
                protocol::error_reply(v, id, codes::SHUTTING_DOWN, "server is draining"),
                false,
            ),
            Ok(()) => {
                let reply = work();
                inner.gate.release();
                (reply, true)
            }
        }
    }

    let (v, request) = match protocol::parse_request(line) {
        Err(ProtocolError { code, message }) => {
            // A malformed line means the sender's framing can no longer be
            // trusted: reply with the structured error, then close. (The
            // one exception is a *well-formed* line at a future version —
            // framing is fine, so the connection survives the refusal.)
            inner.metrics.incr("serve.errors", 1);
            let keep_open = code == codes::UNSUPPORTED_VERSION;
            return (protocol::error_reply(1, None, code, &message), keep_open);
        }
        Ok(parsed) => parsed,
    };
    match request {
        Request::Health { id } => (health_reply(inner, v, id.as_deref()), true),
        Request::Shutdown { id } => {
            inner.local_shutdown.store(true, Ordering::SeqCst);
            let mut out = format!("{{\"v\":{v},");
            match &id {
                Some(id) => {
                    out.push_str("\"id\":");
                    crate::json::push_str_lit(&mut out, id);
                }
                None => out.push_str("\"id\":null"),
            }
            out.push_str(",\"status\":\"ok\",\"draining\":true}");
            (out, false)
        }
        Request::Solve(req) => {
            let id = req.id.clone();
            // A request whose hop list already names this node has been
            // here before: forwarding or solving it again would cycle.
            if req.route.iter().any(|hop| hop == &inner.node) {
                inner.metrics.incr("serve.errors", 1);
                return (
                    protocol::error_reply(
                        v,
                        id.as_deref(),
                        codes::ROUTING_LOOP,
                        &format!("route already contains this node (`{}`)", inner.node),
                    ),
                    true,
                );
            }
            gated(inner, id.as_deref(), v, || solve_one(inner, v, &req))
        }
        Request::SessionOpen {
            id,
            timeout_ms,
            steps,
        } => (
            open_session(inner, sessions, id.as_deref(), timeout_ms, steps),
            true,
        ),
        Request::SessionAssert {
            id,
            session,
            constraint,
        } => {
            let reply = match sessions.get_mut(&session) {
                None => unknown_session(inner, id.as_deref(), &session),
                Some(open) => match open.assert_text(&constraint) {
                    Ok(()) => {
                        inner.metrics.incr("serve.session.asserts", 1);
                        protocol::session_reply(
                            2,
                            id.as_deref(),
                            &session,
                            &format!("\"level\":{}", open.assertion_level()),
                        )
                    }
                    Err(e) => {
                        inner.metrics.incr("serve.errors", 1);
                        protocol::error_reply(2, id.as_deref(), codes::PARSE_ERROR, &e.to_string())
                    }
                },
            };
            (reply, true)
        }
        Request::SessionCheck {
            id,
            session,
            no_cache,
        } => {
            if sessions.get_mut(&session).is_none() {
                return (unknown_session(inner, id.as_deref(), &session), true);
            }
            gated(inner, id.as_deref(), v, || {
                let open = sessions
                    .get_mut(&session)
                    .expect("session checked above; single-threaded connection");
                check_session(inner, id.as_deref(), &session, open, no_cache)
            })
        }
        Request::SessionClose { id, session } => {
            let reply = if sessions.close(&session) {
                inner.metrics.incr("serve.session.closed", 1);
                protocol::session_reply(2, id.as_deref(), &session, "\"closed\":true")
            } else {
                unknown_session(inner, id.as_deref(), &session)
            };
            (reply, true)
        }
    }
}

fn unknown_session(inner: &Arc<Inner>, id: Option<&str>, session: &str) -> String {
    inner.metrics.incr("serve.errors", 1);
    protocol::error_reply(
        2,
        id,
        codes::UNKNOWN_SESSION,
        &format!("no open session `{session}` on this connection"),
    )
}

// ---------------------------------------------------------------------------
// The solve path
// ---------------------------------------------------------------------------

/// Rebinds a cached canonical-index model onto the requester's symbols.
/// Returns `None` when an index has no counterpart (a stale or corrupt
/// entry) — the caller degrades to a miss.
fn rebind_model(canon: &Canonical, bindings: &[(usize, Value)]) -> Option<Model> {
    let mut model = Model::new();
    for (idx, value) in bindings {
        let sym = *canon.vars().get(*idx)?;
        model.insert(sym, value.clone());
    }
    Some(model)
}

/// Exact evaluation of every assertion under `model` (paper §4.4 applied
/// to cached answers: the model is only served if it still checks out).
fn model_satisfies(script: &Script, model: &Model) -> bool {
    script
        .assertions()
        .iter()
        .all(|&a| matches!(evaluate(script.store(), a, model), Ok(Value::Bool(true))))
}

fn named_bindings(script: &Script, model: &Model) -> Vec<(String, String)> {
    model
        .iter()
        .map(|(sym, value)| {
            (
                script.store().symbol_name(sym).to_string(),
                value.to_string(),
            )
        })
        .collect()
}

/// A cached verdict ready to serve: already rebound onto the
/// requester's symbols and re-verified.
enum CacheAnswer {
    Sat {
        bindings: Vec<(String, String)>,
        winner: Option<String>,
    },
    Unsat {
        winner: Option<String>,
    },
}

/// Wire projection of a cached answer: verdict name, sat bindings, winner.
type CacheParts = (&'static str, Option<Vec<(String, String)>>, Option<String>);

impl CacheAnswer {
    fn into_parts(self) -> CacheParts {
        match self {
            CacheAnswer::Sat { bindings, winner } => ("sat", Some(bindings), winner),
            CacheAnswer::Unsat { winner } => ("unsat", None, winner),
        }
    }
}

/// Consults the answer store for a canonicalized script. `None` is a
/// miss — including an entry that failed re-verification, which is never
/// served (see the module docs on cached-answer soundness).
fn cache_lookup(inner: &Inner, canon: &Canonical, script: &Script) -> Option<CacheAnswer> {
    let store = inner.store.as_ref()?;
    match store.lookup(canon.fingerprint, &canon.key) {
        Some(CachedVerdict::Sat { model, winner }) => {
            if let Some(rebound) = rebind_model(canon, &model) {
                if model_satisfies(script, &rebound) {
                    inner.metrics.incr("serve.cache.hit", 1);
                    return Some(CacheAnswer::Sat {
                        bindings: named_bindings(script, &rebound),
                        winner,
                    });
                }
            }
            // Re-verification failed: never serve it, solve fresh.
            inner.metrics.incr("serve.cache.unsound_hit", 1);
            None
        }
        Some(CachedVerdict::Unsat { winner }) => {
            inner.metrics.incr("serve.cache.hit", 1);
            Some(CacheAnswer::Unsat { winner })
        }
        None => {
            inner.metrics.incr("serve.cache.miss", 1);
            None
        }
    }
}

/// Stores a fresh `sat` model or `unsat` verdict under the canonical
/// key (`unknown` is a budget artifact, never cached) and refreshes the
/// cache gauges.
fn cache_store(inner: &Inner, canon: &Canonical, model: Option<&Model>, winner: &Option<String>) {
    let Some(store) = inner.store.as_ref() else {
        return;
    };
    let verdict = match model {
        Some(model) => {
            // Index the model by canonical variable; symbols that do
            // not occur in any assertion have no canonical index and
            // are irrelevant to re-verification, so they are dropped.
            let indexed: Vec<(usize, Value)> = model
                .iter()
                .filter_map(|(sym, v)| canon.var_index(sym).map(|i| (i, v.clone())))
                .collect();
            CachedVerdict::Sat {
                model: indexed,
                winner: winner.clone(),
            }
        }
        None => CachedVerdict::Unsat {
            winner: winner.clone(),
        },
    };
    store.record(canon.fingerprint, &canon.key, verdict);
    let stats = store.stats();
    inner
        .metrics
        .gauge_set("serve.cache.entries", stats.entries as i64);
    inner
        .metrics
        .gauge_set("serve.cache.evictions", stats.evictions as i64);
}

/// The reply's v3 hop list: untouched when the request was not routed,
/// otherwise the request's hops plus this node.
fn reply_route(inner: &Inner, req: &SolveRequest) -> Vec<String> {
    if req.route.is_empty() {
        return Vec::new();
    }
    let mut route = req.route.clone();
    route.push(inner.node.clone());
    route
}

fn solve_one(inner: &Arc<Inner>, v: u32, req: &SolveRequest) -> String {
    let start = Instant::now();
    let id = req.id.as_deref();

    let script = match Script::parse(&req.constraint) {
        Ok(s) => s,
        Err(e) => {
            inner.metrics.incr("serve.errors", 1);
            return protocol::error_reply(v, id, codes::PARSE_ERROR, &e.to_string());
        }
    };
    if script.assertions().is_empty() {
        inner.metrics.incr("serve.errors", 1);
        return protocol::error_reply(v, id, codes::EMPTY_SCRIPT, "constraint asserts nothing");
    }

    let canon = canonicalize(&script);
    let use_cache = inner.store.is_some() && !req.no_cache;

    if use_cache {
        if let Some(answer) = cache_lookup(inner, &canon, &script) {
            let (verdict, model, winner) = answer.into_parts();
            return SolveReply {
                v,
                id: req.id.clone(),
                session: None,
                verdict,
                model,
                winner,
                provenance: None,
                cache: "hit",
                fingerprint: canon.fingerprint_hex(),
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
                stats_json: None,
                route: reply_route(inner, req),
            }
            .to_json();
        }
    }

    // Miss (or cache off): run the lanes, with per-request budgets clamped
    // to the server's configured maxima.
    let mut batch = inner.config.batch.clone();
    if let Some(ms) = req.timeout_ms {
        batch.timeout = batch.timeout.min(Duration::from_millis(ms));
    }
    if let Some(steps) = req.steps {
        batch.steps = batch.steps.min(steps.max(1));
    }
    let name = req.id.clone().unwrap_or_else(|| "request".to_string());
    let options = RunOptions {
        metrics: Some(Arc::clone(&inner.metrics)),
        ..RunOptions::default()
    };
    let report = inner.metrics.time("serve.solve", || {
        run_one_with(&name, &script, &batch, &options)
    });

    let winner = report.winner_lane().map(|l| l.spec.label());
    let (verdict, bindings): (&'static str, Option<Vec<(String, String)>>) = match &report.verdict {
        BatchVerdict::Sat(model) => ("sat", Some(named_bindings(&script, model))),
        BatchVerdict::Unsat => ("unsat", None),
        BatchVerdict::Unknown => ("unknown", None),
    };

    if use_cache {
        match &report.verdict {
            BatchVerdict::Sat(model) => cache_store(inner, &canon, Some(model), &winner),
            BatchVerdict::Unsat => cache_store(inner, &canon, None, &winner),
            BatchVerdict::Unknown => {}
        }
    }

    SolveReply {
        v,
        id: req.id.clone(),
        session: None,
        verdict,
        model: bindings,
        winner,
        provenance: report.provenance(),
        cache: if use_cache { "miss" } else { "off" },
        fingerprint: canon.fingerprint_hex(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        stats_json: Some(report.stats_json()),
        route: reply_route(inner, req),
    }
    .to_json()
}

// ---------------------------------------------------------------------------
// Incremental sessions (protocol v2)
// ---------------------------------------------------------------------------

fn open_session(
    inner: &Arc<Inner>,
    sessions: &mut SessionTable,
    id: Option<&str>,
    timeout_ms: Option<u64>,
    steps: Option<u64>,
) -> String {
    if sessions.open.len() >= MAX_SESSIONS_PER_CONN {
        inner.metrics.incr("serve.errors", 1);
        return protocol::error_reply(
            2,
            id,
            codes::BAD_REQUEST,
            &format!("session limit ({MAX_SESSIONS_PER_CONN}) reached on this connection"),
        );
    }
    // Per-check budgets are fixed at open time, clamped to the server's
    // configured maxima (same policy as per-request `solve` overrides).
    let batch = &inner.config.batch;
    let mut timeout = batch.timeout;
    if let Some(ms) = timeout_ms {
        timeout = timeout.min(Duration::from_millis(ms));
    }
    let mut step_budget = batch.steps;
    if let Some(s) = steps {
        step_budget = step_budget.min(s.max(1));
    }
    let config = StaubConfig {
        width_choice: batch.width_choice,
        limits: batch.limits,
        profile: batch
            .profiles
            .first()
            .copied()
            .unwrap_or(SolverProfile::Zed),
        timeout,
        steps: step_budget,
        ..StaubConfig::default()
    };
    let session = Session::new(config).with_metrics(Arc::clone(&inner.metrics));
    sessions.next += 1;
    let name = format!("s{}", sessions.next);
    sessions.open.push((name.clone(), session));
    inner.metrics.incr("serve.session.opened", 1);
    protocol::session_reply(2, id, &name, "")
}

fn check_session(
    inner: &Arc<Inner>,
    id: Option<&str>,
    name: &str,
    session: &mut Session,
    no_cache: bool,
) -> String {
    let start = Instant::now();
    let Some(script) = session.script().cloned() else {
        inner.metrics.incr("serve.errors", 1);
        return protocol::error_reply(2, id, codes::EMPTY_SCRIPT, "session has no assertions");
    };
    if script.assertions().is_empty() {
        inner.metrics.incr("serve.errors", 1);
        return protocol::error_reply(2, id, codes::EMPTY_SCRIPT, "session asserts nothing");
    }

    let canon = canonicalize(&script);
    let use_cache = inner.store.is_some() && !no_cache;
    if use_cache {
        if let Some(answer) = cache_lookup(inner, &canon, &script) {
            let (verdict, model, winner) = answer.into_parts();
            return SolveReply {
                v: 2,
                id: id.map(str::to_string),
                session: Some(name.to_string()),
                verdict,
                model,
                winner,
                provenance: None,
                cache: "hit",
                fingerprint: canon.fingerprint_hex(),
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
                stats_json: None,
                route: Vec::new(),
            }
            .to_json();
        }
    }

    inner.metrics.incr("serve.session.checks", 1);
    let outcome = match inner.metrics.time("serve.solve", || session.check()) {
        Ok(outcome) => outcome,
        Err(StaubError::EmptyScript) => {
            inner.metrics.incr("serve.errors", 1);
            return protocol::error_reply(2, id, codes::EMPTY_SCRIPT, "session asserts nothing");
        }
    };

    let provenance = outcome.provenance().clone();
    let winner = Some(provenance.label.clone());
    let (verdict, bindings): (&'static str, Option<Vec<(String, String)>>) = match &outcome {
        StaubOutcome::Sat { model, .. } => ("sat", Some(named_bindings(&script, model))),
        StaubOutcome::Unsat { .. } => ("unsat", None),
        StaubOutcome::Unknown { .. } => ("unknown", None),
    };
    if use_cache {
        match &outcome {
            StaubOutcome::Sat { model, .. } => cache_store(inner, &canon, Some(model), &winner),
            // A session `unsat` is sound — proven on the original
            // constraint, or promoted from a certified complete lane —
            // so replaying it for a canonically identical constraint is
            // sound too, the same invariant the scheduler path relies on.
            StaubOutcome::Unsat { .. } => cache_store(inner, &canon, None, &winner),
            StaubOutcome::Unknown { .. } => {}
        }
    }

    SolveReply {
        v: 2,
        id: id.map(str::to_string),
        session: Some(name.to_string()),
        verdict,
        model: bindings,
        winner,
        provenance: Some(provenance),
        cache: if use_cache { "miss" } else { "off" },
        fingerprint: canon.fingerprint_hex(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        stats_json: None,
        route: Vec::new(),
    }
    .to_json()
}

// ---------------------------------------------------------------------------
// Health
// ---------------------------------------------------------------------------

fn health_reply(inner: &Arc<Inner>, v: u32, id: Option<&str>) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    out.push_str(&format!("\"v\":{v},"));
    out.push_str("\"id\":");
    match id {
        Some(id) => crate::json::push_str_lit(&mut out, id),
        None => out.push_str("null"),
    }
    out.push_str(",\"status\":\"ok\",\"version\":");
    crate::json::push_str_lit(&mut out, env!("CARGO_PKG_VERSION"));
    out.push_str(",\"profile\":");
    crate::json::push_str_lit(
        &mut out,
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    );
    out.push_str(",\"node\":");
    crate::json::push_str_lit(&mut out, &inner.node);
    out.push_str(&format!(
        ",\"uptime_ms\":{:.0},\"inflight\":{},\"connections\":{},\"requests\":{},\"draining\":{}",
        inner.started.elapsed().as_secs_f64() * 1e3,
        inner.gate.active(),
        inner.connections.load(Ordering::Relaxed),
        inner.requests.load(Ordering::Relaxed),
        inner.shutting_down(),
    ));
    out.push_str(&format!(
        ",\"reactor\":{{\"enabled\":{},\"workers\":{},\"open_connections\":{},\"busy\":{}}}",
        inner.reactor_enabled,
        inner.gauges.workers.load(Ordering::Relaxed),
        inner.gauges.open_connections.load(Ordering::Relaxed),
        inner.gauges.busy.load(Ordering::Relaxed),
    ));
    out.push_str(",\"cache\":");
    match &inner.store {
        None => out.push_str("null"),
        Some(store) => {
            let s = store.stats();
            out.push_str(&format!(
                "{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\"entries\":{}}}",
                s.hits, s.misses, s.insertions, s.evictions, s.entries
            ));
        }
    }
    out.push_str(",\"persist\":");
    match inner.store.as_ref().and_then(|s| s.persist_status()) {
        None => out.push_str("null"),
        Some(p) => out.push_str(&format!(
            "{{\"snapshot_entries\":{},\"log_records\":{},\"log_bytes\":{},\
             \"replayed\":{},\"rejected\":{},\"skipped\":{},\"snapshot_age_ms\":{}}}",
            p.snapshot_entries,
            p.log_records,
            p.log_bytes,
            p.replayed,
            p.rejected,
            p.skipped,
            p.snapshot_age_ms
        )),
    }
    out.push_str(",\"metrics\":");
    out.push_str(&inner.metrics.snapshot().to_json());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServerConfig {
        ServerConfig::new().batch(BatchConfig {
            threads: 2,
            steps: 200_000,
            ..BatchConfig::default()
        })
    }

    fn solve_req(constraint: &str, id: Option<&str>) -> SolveRequest {
        SolveRequest {
            id: id.map(str::to_string),
            constraint: constraint.to_string(),
            timeout_ms: None,
            steps: None,
            no_cache: false,
            route: Vec::new(),
        }
    }

    #[test]
    fn gate_admits_up_to_inflight_then_overloads() {
        let gate = AdmissionGate::new(2, 0);
        assert!(gate.acquire(|| false).is_ok());
        assert!(gate.acquire(|| false).is_ok());
        assert!(matches!(gate.acquire(|| false), Err(Refused::Overloaded)));
        gate.release();
        assert!(gate.acquire(|| false).is_ok());
        assert_eq!(gate.active(), 2);
        assert_eq!(gate.occupancy(), (2, 0));
    }

    #[test]
    fn gate_waiter_bails_on_shutdown() {
        let gate = AdmissionGate::new(1, 4);
        assert!(gate.acquire(|| false).is_ok());
        assert!(matches!(gate.acquire(|| true), Err(Refused::ShuttingDown)));
    }

    #[test]
    fn deprecated_config_converts_to_the_new_shape() {
        #[allow(deprecated)]
        let old = ServeConfig {
            tcp: "127.0.0.1:9".into(),
            max_inflight: 7,
            ..ServeConfig::default()
        };
        let new: ServerConfig = old.into();
        assert_eq!(new.tcp, Endpoint::Tcp("127.0.0.1:9".into()));
        assert_eq!(new.max_inflight, 7);
        assert!(!new.threaded, "converted configs keep the reactor default");
    }

    #[test]
    fn solve_path_answers_and_caches() {
        let server = Server::launch(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        let req = solve_req(
            "(declare-fun x () Int)(assert (= (* x x) 49))(check-sat)",
            Some("t1"),
        );
        let first = solve_one(&inner, 1, &req);
        assert!(first.contains("\"verdict\":\"sat\""), "{first}");
        assert!(first.contains("\"cache\":\"miss\""), "{first}");
        assert!(first.contains("\"v\":1"), "{first}");
        assert!(first.contains("\"provenance\":{"), "{first}");
        // α-renamed + commutatively flipped: must hit.
        let renamed = SolveRequest {
            constraint: "(declare-fun y () Int)(assert (= 49 (* y y)))(check-sat)".into(),
            ..req.clone()
        };
        let second = solve_one(&inner, 1, &renamed);
        assert!(second.contains("\"cache\":\"hit\""), "{second}");
        assert!(second.contains("\"verdict\":\"sat\""), "{second}");
        assert!(second.contains("\"model\":{\"y\":"), "{second}");
        let stats = inner.store.as_ref().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        server.shutdown();
        server.join();
    }

    #[test]
    fn dl_unsat_repeat_hits_the_cache_with_dl_provenance() {
        let server = Server::launch(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        // A planted negative cycle: x − y ≤ 1 together with y − x < −1.
        let req = solve_req(
            "(declare-fun x () Int)(declare-fun y () Int)\
             (assert (<= (- x y) 1))(assert (< (- y x) (- 1)))\
             (check-sat)",
            Some("dl1"),
        );
        let first = solve_one(&inner, 1, &req);
        assert!(first.contains("\"verdict\":\"unsat\""), "{first}");
        assert!(first.contains("\"cache\":\"miss\""), "{first}");
        assert!(first.contains("\"winner\":\"dl/"), "{first}");
        // The repeat is α-renamed, flips one comparison (`>=` vs `<=`),
        // and spells the strict Int bound in its tightened non-strict
        // form — all folded away by canonicalization, so the answer must
        // come from the cache, `dl/` winner intact, with no lanes run
        // (`stats:null` is only ever emitted on the lane-free hit path).
        let renamed = SolveRequest {
            constraint: "(declare-fun a () Int)(declare-fun b () Int)\
                         (assert (>= 1 (- a b)))(assert (<= (- b a) (- 2)))\
                         (check-sat)"
                .into(),
            ..req.clone()
        };
        let second = solve_one(&inner, 1, &renamed);
        assert!(second.contains("\"cache\":\"hit\""), "{second}");
        assert!(second.contains("\"verdict\":\"unsat\""), "{second}");
        assert!(second.contains("\"winner\":\"dl/"), "{second}");
        assert!(second.contains("\"stats\":null"), "{second}");
        let stats = inner.store.as_ref().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        server.shutdown();
        server.join();
    }

    #[test]
    fn no_cache_flag_bypasses_the_cache() {
        let server = Server::launch(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        let req = SolveRequest {
            no_cache: true,
            ..solve_req("(declare-fun a () Int)(assert (> a 3))(check-sat)", None)
        };
        let one = solve_one(&inner, 1, &req);
        let two = solve_one(&inner, 1, &req);
        assert!(one.contains("\"cache\":\"off\""), "{one}");
        assert!(two.contains("\"cache\":\"off\""), "{two}");
        assert_eq!(inner.store.as_ref().unwrap().stats().insertions, 0);
        server.shutdown();
        server.join();
    }

    #[test]
    fn routed_solve_appends_this_node_and_refuses_loops() {
        let server = Server::launch(tiny_config().node_name("serve:test-node")).expect("bind");
        let inner = Arc::clone(&server.inner);
        let mut sessions = SessionTable::default();
        let line = r#"{"op":"solve","v":3,"constraint":"(declare-fun x () Int)(assert (> x 1))(check-sat)","route":["route:front"]}"#;
        let (reply, keep) = handle_line(&inner, &mut sessions, line);
        assert!(keep);
        assert!(
            reply.contains("\"route\":[\"route:front\",\"serve:test-node\"]"),
            "{reply}"
        );
        // The same request arriving with this node already in the hop
        // list is a loop: refused, connection stays up.
        let looped =
            r#"{"op":"solve","v":3,"constraint":"(assert true)","route":["serve:test-node"]}"#;
        let (reply, keep) = handle_line(&inner, &mut sessions, looped);
        assert!(keep);
        assert!(reply.contains("routing-loop"), "{reply}");
        server.shutdown();
        server.join();
    }

    #[test]
    fn health_reports_reactor_and_persist_blocks() {
        let dir = std::env::temp_dir().join(format!("staub-serve-health-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::launch(tiny_config().persist(PersistConfig::in_dir(&dir)))
            .expect("bind loopback");
        let health = server.health_json();
        let parsed = crate::json::parse(&health).unwrap();
        let reactor = parsed.get("reactor").expect("reactor block");
        assert_eq!(
            reactor.get("enabled").and_then(crate::json::Json::as_bool),
            Some(cfg!(target_os = "linux"))
        );
        let persist = parsed.get("persist").expect("persist block");
        assert_eq!(
            persist.get("replayed").and_then(crate::json::Json::as_u64),
            Some(0)
        );
        server.shutdown();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_lifecycle_over_handle_line() {
        let server = Server::launch(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        let mut sessions = SessionTable::default();

        let (open, keep) = handle_line(&inner, &mut sessions, r#"{"op":"session_open","v":2}"#);
        assert!(keep);
        assert!(open.contains("\"session\":\"s1\""), "{open}");

        let (reply, keep) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"assert","v":2,"session":"s1","constraint":"(declare-fun x () Int)(assert (= (* x x) 49))"}"#,
        );
        assert!(keep);
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        assert!(reply.contains("\"level\":0"), "{reply}");

        let (check1, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"check","v":2,"session":"s1"}"#,
        );
        assert!(check1.contains("\"verdict\":\"sat\""), "{check1}");
        assert!(check1.contains("\"session\":\"s1\""), "{check1}");
        assert!(check1.contains("\"v\":2"), "{check1}");

        // A second check of the identical stack is a cache hit.
        let (check2, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"check","v":2,"session":"s1"}"#,
        );
        assert!(check2.contains("\"cache\":\"hit\""), "{check2}");
        assert!(check2.contains("\"verdict\":\"sat\""), "{check2}");

        // Growing the stack changes the canonical constraint: miss, and
        // the warm engine solves the strictly stronger script.
        let (reply, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"assert","v":2,"session":"s1","constraint":"(assert (> x 0))"}"#,
        );
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        let (check3, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"check","v":2,"session":"s1"}"#,
        );
        assert!(check3.contains("\"cache\":\"miss\""), "{check3}");
        assert!(check3.contains("\"verdict\":\"sat\""), "{check3}");
        assert!(check3.contains("\"model\":{\"x\":\"7\"}"), "{check3}");

        let (closed, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"session_close","v":2,"session":"s1"}"#,
        );
        assert!(closed.contains("\"closed\":true"), "{closed}");
        let (gone, keep) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"check","v":2,"session":"s1"}"#,
        );
        assert!(keep);
        assert!(gone.contains("unknown-session"), "{gone}");

        server.shutdown();
        server.join();
    }

    #[test]
    fn bad_session_requests_keep_the_connection_open() {
        let server = Server::launch(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        let mut sessions = SessionTable::default();

        // Future version: refused with its own code, connection survives.
        let (reply, keep) = handle_line(&inner, &mut sessions, r#"{"op":"health","v":7}"#);
        assert!(keep);
        assert!(reply.contains("unsupported_version"), "{reply}");

        // Session command without v:2: structured error.
        let (reply, keep) = handle_line(&inner, &mut sessions, r#"{"op":"session_open"}"#);
        assert!(!keep, "v1 misuse of a v2 op is a framing error");
        assert!(reply.contains("session command"), "{reply}");

        // A parse error inside a session assert does not corrupt it.
        let (_, _) = handle_line(&inner, &mut sessions, r#"{"op":"session_open","v":2}"#);
        let (reply, keep) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"assert","v":2,"session":"s1","constraint":"(assert (="}"#,
        );
        assert!(keep);
        assert!(reply.contains("parse-error"), "{reply}");
        let (reply, _) = handle_line(
            &inner,
            &mut sessions,
            r#"{"op":"assert","v":2,"session":"s1","constraint":"(declare-fun b () Int)(assert (> b 2))"}"#,
        );
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");

        server.shutdown();
        server.join();
    }
}
