//! The `staub serve` daemon: accept loops, admission control, and the
//! per-request solve path (cache → scheduler).
//!
//! The server speaks the newline-delimited JSON protocol of
//! [`crate::protocol`] over TCP and (on Unix) a Unix domain socket. Each
//! connection gets its own thread; each `solve` request passes through an
//! [`AdmissionGate`] bounding concurrent scheduler work, then through the
//! canonical-constraint [`AnswerCache`] (unless disabled), and only on a
//! miss spawns lanes via
//! [`run_one_observed`](staub_core::run_one_observed).
//!
//! # Drain
//!
//! Listeners are nonblocking and the accept loops poll the shutdown flag
//! ([`crate::signal`]), because glibc's `SA_RESTART` would otherwise keep
//! a blocking `accept` alive across SIGINT. On shutdown the server stops
//! accepting, lets in-flight requests finish, closes idle connections at
//! their next read-timeout tick, joins every connection thread, and only
//! then lets [`Server::join`] return — no request is abandoned mid-solve.
//!
//! # Cached-answer soundness
//!
//! A cache hit never trusts the stored bytes blindly: `sat` entries are
//! rebound onto the requester's own symbols through the canonical
//! variable table and **re-verified by exact evaluation** of every
//! assertion before being served; any failure (index out of range, sort
//! mismatch surfacing as an eval error, stale entry) silently degrades to
//! a miss and the scheduler runs. `unsat` entries are verdict-only and
//! derive from exact lanes (the scheduler never reports bounded-unsat),
//! so replaying the verdict for a canonically identical constraint is
//! sound by construction.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use staub_core::{run_one_observed, BatchConfig, BatchVerdict, Metrics};
use staub_smtlib::{canonicalize, evaluate, Canonical, Model, Script, Value};

use crate::cache::{AnswerCache, CacheConfig, CachedVerdict};
use crate::protocol::{
    self, codes, LineRead, LineReader, ProtocolError, Request, SolveReply, SolveRequest,
};
use crate::signal;

/// How a server instance should listen, solve, and cache.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP address to bind (e.g. `127.0.0.1:7227`; port `0` for ephemeral).
    pub tcp: String,
    /// Optional Unix-socket path to additionally bind (Unix only).
    pub unix: Option<std::path::PathBuf>,
    /// Scheduler configuration for cache misses. Per-request `timeout_ms`
    /// and `steps` overrides are clamped to these values — a client can
    /// ask for less work than the server default, never more.
    pub batch: BatchConfig,
    /// Answer-cache tuning; `None` disables the cache entirely.
    pub cache: Option<CacheConfig>,
    /// Maximum `solve` requests running lanes at once.
    pub max_inflight: usize,
    /// Maximum `solve` requests queued behind the inflight limit before
    /// the server answers `overloaded` instead of blocking.
    pub max_waiting: usize,
    /// Request-line size cap in bytes (satellite of the parser depth cap).
    pub max_line_bytes: usize,
    /// Per-read socket timeout: the idle-poll granularity for drain.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            tcp: "127.0.0.1:0".to_string(),
            unix: None,
            batch: BatchConfig::default(),
            cache: Some(CacheConfig::default()),
            max_inflight: 4,
            max_waiting: 64,
            max_line_bytes: protocol::DEFAULT_MAX_LINE_BYTES,
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// Bounded-queue admission control for `solve` requests.
///
/// `acquire` admits up to `max_inflight` concurrent holders; up to
/// `max_waiting` more block on a condvar (woken in no particular order —
/// fairness is not needed, boundedness is). Anything beyond that is
/// refused immediately so the client gets an `overloaded` reply instead
/// of unbounded queueing.
struct AdmissionGate {
    state: Mutex<(usize, usize)>, // (active, waiting)
    cv: Condvar,
    max_inflight: usize,
    max_waiting: usize,
}

/// Why `acquire` did not grant a slot.
enum Refused {
    /// Both the inflight and waiting budgets are full.
    Overloaded,
    /// The server began draining while this request waited.
    ShuttingDown,
}

impl AdmissionGate {
    fn new(max_inflight: usize, max_waiting: usize) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_waiting,
        }
    }

    fn acquire(&self, shutting_down: impl Fn() -> bool) -> Result<(), Refused> {
        let mut s = self.state.lock().expect("gate poisoned");
        if s.0 < self.max_inflight {
            s.0 += 1;
            return Ok(());
        }
        if s.1 >= self.max_waiting {
            return Err(Refused::Overloaded);
        }
        s.1 += 1;
        loop {
            if shutting_down() {
                s.1 -= 1;
                return Err(Refused::ShuttingDown);
            }
            if s.0 < self.max_inflight {
                s.1 -= 1;
                s.0 += 1;
                return Ok(());
            }
            let (next, _) = self
                .cv
                .wait_timeout(s, Duration::from_millis(50))
                .expect("gate poisoned");
            s = next;
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.0 -= 1;
        drop(s);
        self.cv.notify_one();
    }

    fn active(&self) -> usize {
        self.state.lock().expect("gate poisoned").0
    }
}

/// State shared by the accept loops and every connection thread.
struct Inner {
    config: ServeConfig,
    cache: Option<AnswerCache>,
    metrics: Metrics,
    gate: AdmissionGate,
    started: Instant,
    local_shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
}

impl Inner {
    fn shutting_down(&self) -> bool {
        self.local_shutdown.load(Ordering::SeqCst) || signal::shutdown_requested()
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] then [`Server::join`] (or deliver SIGINT).
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listeners and starts the accept loops.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, bad socket path, …).
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let tcp = TcpListener::bind(&config.tcp)?;
        tcp.set_nonblocking(true)?;
        let addr = tcp.local_addr()?;

        #[cfg(unix)]
        let unix_listener = match &config.unix {
            Some(path) => {
                // A previous unclean exit leaves the socket file behind;
                // rebinding requires removing it first.
                let _ = std::fs::remove_file(path);
                let l = std::os::unix::net::UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };

        let cache = config.cache.as_ref().map(AnswerCache::new);
        let inner = Arc::new(Inner {
            gate: AdmissionGate::new(config.max_inflight, config.max_waiting),
            cache,
            metrics: Metrics::new(),
            started: Instant::now(),
            local_shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            config,
        });

        let mut accept_handles = Vec::new();
        {
            let inner = Arc::clone(&inner);
            accept_handles.push(
                std::thread::Builder::new()
                    .name("staub-accept-tcp".into())
                    .spawn(move || accept_loop(&inner, &tcp, tcp_conn))?,
            );
        }
        #[cfg(unix)]
        if let Some(listener) = unix_listener {
            let inner = Arc::clone(&inner);
            accept_handles.push(
                std::thread::Builder::new()
                    .name("staub-accept-unix".into())
                    .spawn(move || accept_loop(&inner, &listener, unix_conn))?,
            );
        }

        Ok(Server {
            inner,
            addr,
            accept_handles,
        })
    }

    /// The bound TCP address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain (same effect as SIGINT).
    pub fn shutdown(&self) {
        self.inner.local_shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the drain to complete: accept loops exited, every
    /// connection thread joined.
    pub fn join(mut self) -> DrainSummary {
        for h in self.accept_handles.drain(..) {
            let _ = h.join();
        }
        DrainSummary {
            connections: self.inner.connections.load(Ordering::Relaxed),
            requests: self.inner.requests.load(Ordering::Relaxed),
            uptime: self.inner.started.elapsed(),
        }
    }

    /// Point-in-time health JSON, as served to `staub client --health`
    /// (exposed for tests and the drain banner).
    pub fn health_json(&self) -> String {
        health_reply(&self.inner, None)
    }
}

/// What a drained server reports on the way out.
#[derive(Debug, Clone, Copy)]
pub struct DrainSummary {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests handled over the server's lifetime.
    pub requests: u64,
    /// Total time the server was up.
    pub uptime: Duration,
}

// ---------------------------------------------------------------------------
// Accept loops and connections
// ---------------------------------------------------------------------------

/// Poll cadence of the nonblocking accept loops.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

trait Acceptor {
    type Stream: Read + Write + Send + 'static;
    fn try_accept(&self) -> io::Result<Self::Stream>;
}

impl Acceptor for TcpListener {
    type Stream = TcpStream;
    fn try_accept(&self) -> io::Result<TcpStream> {
        self.accept().map(|(s, _)| s)
    }
}

#[cfg(unix)]
impl Acceptor for std::os::unix::net::UnixListener {
    type Stream = std::os::unix::net::UnixStream;
    fn try_accept(&self) -> io::Result<Self::Stream> {
        self.accept().map(|(s, _)| s)
    }
}

fn tcp_conn(stream: &TcpStream, timeout: Duration) -> io::Result<()> {
    stream.set_read_timeout(Some(timeout))
}

#[cfg(unix)]
fn unix_conn(stream: &std::os::unix::net::UnixStream, timeout: Duration) -> io::Result<()> {
    stream.set_read_timeout(Some(timeout))
}

fn accept_loop<L: Acceptor>(
    inner: &Arc<Inner>,
    listener: &L,
    configure: fn(&L::Stream, Duration) -> io::Result<()>,
) {
    let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
    while !inner.shutting_down() {
        match listener.try_accept() {
            Ok(stream) => {
                if configure(&stream, inner.config.read_timeout).is_err() {
                    continue; // peer already gone
                }
                inner.connections.fetch_add(1, Ordering::Relaxed);
                inner.metrics.incr("serve.connections", 1);
                let inner = Arc::clone(inner);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("staub-conn".into())
                    .spawn(move || connection_loop(&inner, stream))
                {
                    conn_handles.push(handle);
                }
                // Opportunistically reap finished connection threads so a
                // long-lived server does not accumulate join handles.
                conn_handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for handle in conn_handles {
        let _ = handle.join();
    }
}

fn write_line(stream: &mut impl Write, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn connection_loop<S: Read + Write>(inner: &Arc<Inner>, mut stream: S) {
    let mut reader = LineReader::new(inner.config.max_line_bytes);
    loop {
        match reader.next_line(&mut stream) {
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                inner.requests.fetch_add(1, Ordering::Relaxed);
                inner.metrics.incr("serve.requests", 1);
                let (reply, keep_open) = handle_line(inner, &line);
                if write_line(&mut stream, &reply).is_err() || !keep_open {
                    return;
                }
            }
            Ok(LineRead::Idle) => {
                if inner.shutting_down() {
                    return; // drain: drop idle keep-alive connections
                }
            }
            Ok(LineRead::TooLong) => {
                inner.metrics.incr("serve.errors", 1);
                let reply = protocol::error_reply(
                    None,
                    codes::OVERSIZED,
                    &format!(
                        "request line exceeds {} bytes; closing connection",
                        inner.config.max_line_bytes
                    ),
                );
                let _ = write_line(&mut stream, &reply);
                return;
            }
            Ok(LineRead::BadUtf8) => {
                inner.metrics.incr("serve.errors", 1);
                let reply =
                    protocol::error_reply(None, codes::BAD_JSON, "request line is not UTF-8");
                let _ = write_line(&mut stream, &reply);
                return;
            }
            Ok(LineRead::Eof) | Err(_) => return,
        }
    }
}

/// Dispatches one request line. Returns the reply and whether the
/// connection stays open.
fn handle_line(inner: &Arc<Inner>, line: &str) -> (String, bool) {
    match protocol::parse_request(line) {
        Err(ProtocolError { code, message }) => {
            // A malformed line means the sender's framing can no longer be
            // trusted: reply with the structured error, then close.
            inner.metrics.incr("serve.errors", 1);
            (protocol::error_reply(None, code, &message), false)
        }
        Ok(Request::Health { id }) => (health_reply(inner, id.as_deref()), true),
        Ok(Request::Shutdown { id }) => {
            inner.local_shutdown.store(true, Ordering::SeqCst);
            let mut out = String::from("{");
            match &id {
                Some(id) => {
                    out.push_str("\"id\":");
                    crate::json::push_str_lit(&mut out, id);
                }
                None => out.push_str("\"id\":null"),
            }
            out.push_str(",\"status\":\"ok\",\"draining\":true}");
            (out, false)
        }
        Ok(Request::Solve(req)) => {
            if inner.shutting_down() {
                inner.metrics.incr("serve.errors", 1);
                return (
                    protocol::error_reply(
                        req.id.as_deref(),
                        codes::SHUTTING_DOWN,
                        "server is draining",
                    ),
                    false,
                );
            }
            match inner.gate.acquire(|| inner.shutting_down()) {
                Err(Refused::Overloaded) => {
                    inner.metrics.incr("serve.overloaded", 1);
                    (protocol::overloaded_reply(req.id.as_deref()), true)
                }
                Err(Refused::ShuttingDown) => (
                    protocol::error_reply(
                        req.id.as_deref(),
                        codes::SHUTTING_DOWN,
                        "server is draining",
                    ),
                    false,
                ),
                Ok(()) => {
                    let reply = solve_one(inner, &req);
                    inner.gate.release();
                    (reply, true)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The solve path
// ---------------------------------------------------------------------------

/// Rebinds a cached canonical-index model onto the requester's symbols.
/// Returns `None` when an index has no counterpart (a stale or corrupt
/// entry) — the caller degrades to a miss.
fn rebind_model(canon: &Canonical, bindings: &[(usize, Value)]) -> Option<Model> {
    let mut model = Model::new();
    for (idx, value) in bindings {
        let sym = *canon.vars().get(*idx)?;
        model.insert(sym, value.clone());
    }
    Some(model)
}

/// Exact evaluation of every assertion under `model` (paper §4.4 applied
/// to cached answers: the model is only served if it still checks out).
fn model_satisfies(script: &Script, model: &Model) -> bool {
    script
        .assertions()
        .iter()
        .all(|&a| matches!(evaluate(script.store(), a, model), Ok(Value::Bool(true))))
}

fn named_bindings(script: &Script, model: &Model) -> Vec<(String, String)> {
    model
        .iter()
        .map(|(sym, value)| {
            (
                script.store().symbol_name(sym).to_string(),
                value.to_string(),
            )
        })
        .collect()
}

fn solve_one(inner: &Arc<Inner>, req: &SolveRequest) -> String {
    let start = Instant::now();
    let id = req.id.as_deref();

    let script = match Script::parse(&req.constraint) {
        Ok(s) => s,
        Err(e) => {
            inner.metrics.incr("serve.errors", 1);
            return protocol::error_reply(id, codes::PARSE_ERROR, &e.to_string());
        }
    };
    if script.assertions().is_empty() {
        inner.metrics.incr("serve.errors", 1);
        return protocol::error_reply(id, codes::EMPTY_SCRIPT, "constraint asserts nothing");
    }

    let canon = canonicalize(&script);
    let use_cache = inner.cache.is_some() && !req.no_cache;

    if use_cache {
        let cache = inner.cache.as_ref().expect("use_cache checked is_some");
        match cache.get(canon.fingerprint, &canon.key) {
            Some(CachedVerdict::Sat { model, winner }) => {
                if let Some(rebound) = rebind_model(&canon, &model) {
                    if model_satisfies(&script, &rebound) {
                        inner.metrics.incr("serve.cache.hit", 1);
                        return SolveReply {
                            id: req.id.clone(),
                            verdict: "sat",
                            model: Some(named_bindings(&script, &rebound)),
                            winner,
                            cache: "hit",
                            fingerprint: canon.fingerprint_hex(),
                            wall_ms: start.elapsed().as_secs_f64() * 1e3,
                            stats_json: None,
                        }
                        .to_json();
                    }
                }
                // Re-verification failed: never serve it, solve fresh.
                inner.metrics.incr("serve.cache.unsound_hit", 1);
            }
            Some(CachedVerdict::Unsat { winner }) => {
                inner.metrics.incr("serve.cache.hit", 1);
                return SolveReply {
                    id: req.id.clone(),
                    verdict: "unsat",
                    model: None,
                    winner,
                    cache: "hit",
                    fingerprint: canon.fingerprint_hex(),
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                    stats_json: None,
                }
                .to_json();
            }
            None => inner.metrics.incr("serve.cache.miss", 1),
        }
    }

    // Miss (or cache off): run the lanes, with per-request budgets clamped
    // to the server's configured maxima.
    let mut batch = inner.config.batch.clone();
    if let Some(ms) = req.timeout_ms {
        batch.timeout = batch.timeout.min(Duration::from_millis(ms));
    }
    if let Some(steps) = req.steps {
        batch.steps = batch.steps.min(steps.max(1));
    }
    let name = req.id.clone().unwrap_or_else(|| "request".to_string());
    let report = inner.metrics.time("serve.solve", || {
        run_one_observed(&name, &script, &batch, &inner.metrics)
    });

    let winner = report.winner_lane().map(|l| l.spec.label());
    let (verdict, bindings): (&'static str, Option<Vec<(String, String)>>) = match &report.verdict {
        BatchVerdict::Sat(model) => ("sat", Some(named_bindings(&script, model))),
        BatchVerdict::Unsat => ("unsat", None),
        BatchVerdict::Unknown => ("unknown", None),
    };

    if use_cache {
        let cache = inner.cache.as_ref().expect("use_cache checked is_some");
        match &report.verdict {
            BatchVerdict::Sat(model) => {
                // Index the model by canonical variable; symbols that do
                // not occur in any assertion have no canonical index and
                // are irrelevant to re-verification, so they are dropped.
                let indexed: Vec<(usize, Value)> = model
                    .iter()
                    .filter_map(|(sym, v)| canon.var_index(sym).map(|i| (i, v.clone())))
                    .collect();
                cache.insert(
                    canon.fingerprint,
                    canon.key.clone(),
                    CachedVerdict::Sat {
                        model: indexed,
                        winner: winner.clone(),
                    },
                );
            }
            BatchVerdict::Unsat => cache.insert(
                canon.fingerprint,
                canon.key.clone(),
                CachedVerdict::Unsat {
                    winner: winner.clone(),
                },
            ),
            // `unknown` is a budget artifact, never cached.
            BatchVerdict::Unknown => {}
        }
        let stats = cache.stats();
        inner
            .metrics
            .gauge_set("serve.cache.entries", stats.entries as i64);
        inner
            .metrics
            .gauge_set("serve.cache.evictions", stats.evictions as i64);
    }

    SolveReply {
        id: req.id.clone(),
        verdict,
        model: bindings,
        winner,
        cache: if use_cache { "miss" } else { "off" },
        fingerprint: canon.fingerprint_hex(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        stats_json: Some(report.stats_json()),
    }
    .to_json()
}

// ---------------------------------------------------------------------------
// Health
// ---------------------------------------------------------------------------

fn health_reply(inner: &Arc<Inner>, id: Option<&str>) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    out.push_str("\"id\":");
    match id {
        Some(id) => crate::json::push_str_lit(&mut out, id),
        None => out.push_str("null"),
    }
    out.push_str(",\"status\":\"ok\",\"version\":");
    crate::json::push_str_lit(&mut out, env!("CARGO_PKG_VERSION"));
    out.push_str(",\"profile\":");
    crate::json::push_str_lit(
        &mut out,
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    );
    out.push_str(&format!(
        ",\"uptime_ms\":{:.0},\"inflight\":{},\"connections\":{},\"requests\":{},\"draining\":{}",
        inner.started.elapsed().as_secs_f64() * 1e3,
        inner.gate.active(),
        inner.connections.load(Ordering::Relaxed),
        inner.requests.load(Ordering::Relaxed),
        inner.shutting_down(),
    ));
    out.push_str(",\"cache\":");
    match &inner.cache {
        None => out.push_str("null"),
        Some(cache) => {
            let s = cache.stats();
            out.push_str(&format!(
                "{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\"entries\":{}}}",
                s.hits, s.misses, s.insertions, s.evictions, s.entries
            ));
        }
    }
    out.push_str(",\"metrics\":");
    out.push_str(&inner.metrics.snapshot().to_json());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            batch: BatchConfig {
                threads: 2,
                steps: 200_000,
                ..BatchConfig::default()
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn gate_admits_up_to_inflight_then_overloads() {
        let gate = AdmissionGate::new(2, 0);
        assert!(gate.acquire(|| false).is_ok());
        assert!(gate.acquire(|| false).is_ok());
        assert!(matches!(gate.acquire(|| false), Err(Refused::Overloaded)));
        gate.release();
        assert!(gate.acquire(|| false).is_ok());
        assert_eq!(gate.active(), 2);
    }

    #[test]
    fn gate_waiter_bails_on_shutdown() {
        let gate = AdmissionGate::new(1, 4);
        assert!(gate.acquire(|| false).is_ok());
        assert!(matches!(gate.acquire(|| true), Err(Refused::ShuttingDown)));
    }

    #[test]
    fn solve_path_answers_and_caches() {
        let server = Server::start(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        let req = SolveRequest {
            id: Some("t1".into()),
            constraint: "(declare-fun x () Int)(assert (= (* x x) 49))(check-sat)".into(),
            timeout_ms: None,
            steps: None,
            no_cache: false,
        };
        let first = solve_one(&inner, &req);
        assert!(first.contains("\"verdict\":\"sat\""), "{first}");
        assert!(first.contains("\"cache\":\"miss\""), "{first}");
        // α-renamed + commutatively flipped: must hit.
        let renamed = SolveRequest {
            constraint: "(declare-fun y () Int)(assert (= 49 (* y y)))(check-sat)".into(),
            ..req.clone()
        };
        let second = solve_one(&inner, &renamed);
        assert!(second.contains("\"cache\":\"hit\""), "{second}");
        assert!(second.contains("\"verdict\":\"sat\""), "{second}");
        assert!(second.contains("\"model\":{\"y\":"), "{second}");
        let stats = inner.cache.as_ref().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        server.shutdown();
        server.join();
    }

    #[test]
    fn no_cache_flag_bypasses_the_cache() {
        let server = Server::start(tiny_config()).expect("bind loopback");
        let inner = Arc::clone(&server.inner);
        let req = SolveRequest {
            id: None,
            constraint: "(declare-fun a () Int)(assert (> a 3))(check-sat)".into(),
            timeout_ms: None,
            steps: None,
            no_cache: true,
        };
        let one = solve_one(&inner, &req);
        let two = solve_one(&inner, &req);
        assert!(one.contains("\"cache\":\"off\""), "{one}");
        assert!(two.contains("\"cache\":\"off\""), "{two}");
        assert_eq!(inner.cache.as_ref().unwrap().stats().insertions, 0);
        server.shutdown();
        server.join();
    }
}
