//! The `staub route` front node: consistent-hash sharding of canonical
//! constraint fingerprints across backend `staub serve` processes.
//!
//! # Why shard by fingerprint
//!
//! The answer cache is keyed by the *canonical* form of a constraint, so
//! its hit rate depends on repeats landing on the node that saw the
//! first occurrence. A round-robin balancer splits α-renamed repeats
//! across backends and each one pays the solve; the router instead
//! parses and canonicalizes the constraint itself and hashes the
//! canonical fingerprint onto a consistent-hash ring, so every repeat of
//! a constraint — under any variable names — reaches the same backend
//! and its warm cache. The ring places [`RouteConfig::vnodes`] virtual
//! points per backend (FNV-1a of `"<endpoint>#<index>#<vnode>"`), which
//! keeps the load split even and means adding or removing one backend
//! remaps only `1/n` of the keyspace instead of reshuffling everything.
//!
//! # Protocol position
//!
//! The router is a protocol-v3 hop: it appends its node name to the
//! request's `route` list before forwarding, and the backend appends its
//! own to the reply, so a reply's `route` reads front-to-back (and a
//! request that somehow cycles back is refused with `routing-loop`
//! before any work happens). Backend replies are relayed to the client
//! verbatim — a v1 client sending through the router receives the
//! backend's v3-shaped reply, which is a superset of the v1 shape.
//! Session ops (`session_open` & co.) are refused: sessions are
//! connection-stateful by design, and the router's per-request dialing
//! cannot pin one client connection to one backend engine. Clients that
//! need sessions connect to a backend directly.
//!
//! # Failure handling
//!
//! A backend that fails to connect or mid-request is marked down for
//! [`RouteConfig::retry_cooldown`] and the request fails over to the
//! next *distinct* backend on the ring (deterministic order, so repeats
//! during an outage still co-locate). When every backend is down the
//! client gets a structured `no-backend` error rather than a hang.

use std::io::{self, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use staub_smtlib::{canonicalize, Script};

use crate::client::Connection;
use crate::endpoint::{Endpoint, EndpointListener};
use crate::json;
use crate::protocol::{self, codes, LineRead, LineReader, ProtocolError, Request, SolveRequest};
use crate::reactor::{self, ReactorConfig, ReactorGauges};
use crate::signal;

/// How a router listens, shards, and retries.
#[derive(Debug, Clone)]
pub struct RouteConfig {
    /// Endpoint the router listens on.
    pub listen: Endpoint,
    /// Backend `staub serve` endpoints (at least one).
    pub backends: Vec<Endpoint>,
    /// Virtual ring points per backend. More points smooth the load
    /// split at the cost of a (tiny) larger ring.
    pub vnodes: usize,
    /// Request-line byte cap (same meaning as the server's).
    pub max_line_bytes: usize,
    /// How long a failed backend stays marked down before being retried.
    pub retry_cooldown: Duration,
    /// Per-reply read timeout on backend connections, bounding how long
    /// a hung backend can hold a router worker.
    pub backend_timeout: Duration,
    /// This node's name in `route` hop lists. Defaults to
    /// `route:<bound-address>`.
    pub node_name: Option<String>,
    /// Router worker threads (the reactor's fixed pool).
    pub workers: usize,
}

impl Default for RouteConfig {
    fn default() -> RouteConfig {
        RouteConfig {
            listen: Endpoint::Tcp("127.0.0.1:0".to_string()),
            backends: Vec::new(),
            vnodes: 64,
            max_line_bytes: protocol::DEFAULT_MAX_LINE_BYTES,
            retry_cooldown: Duration::from_secs(1),
            backend_timeout: Duration::from_secs(120),
            node_name: None,
            workers: 4,
        }
    }
}

/// 64-bit FNV-1a: tiny, dependency-free, and plenty for ring placement
/// (keys are already canonical fingerprints; the ring hash only needs to
/// scatter, not resist adversaries).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The consistent-hash ring: sorted `(point, backend-index)` pairs.
struct Ring {
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl Ring {
    fn build(backends: &[Endpoint], vnodes: usize) -> Ring {
        let mut points = Vec::with_capacity(backends.len() * vnodes);
        for (i, backend) in backends.iter().enumerate() {
            for v in 0..vnodes.max(1) {
                points.push((fnv1a64(format!("{backend}#{i}#{v}").as_bytes()), i));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            backends: backends.len(),
        }
    }

    /// Backend indices to try for a fingerprint, in ring order starting
    /// at the first point clockwise of the key, one entry per distinct
    /// backend. The first entry is the home backend; the rest are the
    /// deterministic failover order.
    fn candidates(&self, fingerprint: u128) -> Vec<usize> {
        let key = fingerprint as u64 ^ (fingerprint >> 64) as u64;
        let start = self
            .points
            .partition_point(|&(point, _)| point < key)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        let mut seen = vec![false; self.backends];
        let mut order = Vec::with_capacity(self.backends);
        for offset in 0..self.points.len() {
            let (_, backend) = self.points[(start + offset) % self.points.len()];
            if !seen[backend] {
                seen[backend] = true;
                order.push(backend);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }
}

/// One backend's liveness view.
struct Backend {
    endpoint: Endpoint,
    down_until: Mutex<Option<Instant>>,
}

impl Backend {
    fn usable(&self) -> bool {
        match *self.down_until.lock().expect("backend poisoned") {
            Some(until) => Instant::now() >= until,
            None => true,
        }
    }

    fn mark_down(&self, cooldown: Duration) {
        *self.down_until.lock().expect("backend poisoned") = Some(Instant::now() + cooldown);
    }

    fn mark_up(&self) {
        *self.down_until.lock().expect("backend poisoned") = None;
    }
}

struct RouterInner {
    config: RouteConfig,
    ring: Ring,
    backends: Vec<Backend>,
    node: String,
    started: Instant,
    local_shutdown: AtomicBool,
    forwarded: AtomicU64,
    failed: AtomicU64,
    errors: AtomicU64,
}

impl RouterInner {
    fn shutting_down(&self) -> bool {
        self.local_shutdown.load(Ordering::SeqCst) || signal::shutdown_requested()
    }
}

/// A running `staub route` front node.
pub struct Router {
    inner: Arc<RouterInner>,
    addr: SocketAddr,
    gauges: Arc<ReactorGauges>,
    handles: Vec<JoinHandle<()>>,
}

impl Router {
    /// Binds the listener and starts serving (reactor where available,
    /// thread-per-connection otherwise).
    ///
    /// # Errors
    ///
    /// Fails on an empty backend list or a bind failure.
    pub fn launch(config: RouteConfig) -> io::Result<Router> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one --backend",
            ));
        }
        let listener = config.listen.bind()?;
        let addr = listener
            .tcp_addr()
            .ok_or_else(|| io::Error::other("router listen endpoint must be TCP"))?;
        let ring = Ring::build(&config.backends, config.vnodes);
        let backends = config
            .backends
            .iter()
            .map(|endpoint| Backend {
                endpoint: endpoint.clone(),
                down_until: Mutex::new(None),
            })
            .collect();
        let node = config
            .node_name
            .clone()
            .unwrap_or_else(|| format!("route:{addr}"));
        let inner = Arc::new(RouterInner {
            ring,
            backends,
            node,
            started: Instant::now(),
            local_shutdown: AtomicBool::new(false),
            forwarded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            config,
        });
        let gauges = Arc::new(ReactorGauges::default());

        let mut handles = Vec::new();
        if reactor::supported() {
            let service = Arc::new(RouterService {
                inner: Arc::clone(&inner),
            });
            let reactor_gauges = Arc::clone(&gauges);
            let reactor_config = ReactorConfig {
                workers: inner.config.workers.max(1),
                max_line_bytes: inner.config.max_line_bytes,
                poll_interval: Duration::from_millis(50),
            };
            handles.push(
                std::thread::Builder::new()
                    .name("staub-router".into())
                    .spawn(move || {
                        let _ = reactor::run(
                            &service,
                            vec![listener],
                            &reactor_gauges,
                            &reactor_config,
                        );
                    })?,
            );
        } else {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name("staub-router".into())
                    .spawn(move || threaded_loop(&inner, &listener))?,
            );
        }

        Ok(Router {
            inner,
            addr,
            gauges,
            handles,
        })
    }

    /// The bound TCP address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// This node's name in `route` hop lists.
    pub fn node_name(&self) -> &str {
        &self.inner.node
    }

    /// Open client connections right now (reactor mode).
    pub fn open_connections(&self) -> u64 {
        self.gauges.open_connections.load(Ordering::Relaxed)
    }

    /// Begins a graceful drain.
    pub fn shutdown(&self) {
        self.inner.local_shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the drain to complete.
    pub fn join(mut self) {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct RouterService {
    inner: Arc<RouterInner>,
}

impl reactor::Service for RouterService {
    type Conn = ();

    fn handle(&self, _conn: &mut (), line: &str) -> (String, bool) {
        handle_line(&self.inner, line)
    }

    fn oversized(&self, observed: usize) -> String {
        self.inner.errors.fetch_add(1, Ordering::Relaxed);
        protocol::oversized_reply(1, self.inner.config.max_line_bytes, observed)
    }

    fn bad_utf8(&self) -> String {
        self.inner.errors.fetch_add(1, Ordering::Relaxed);
        protocol::error_reply(1, None, codes::BAD_JSON, "request line is not UTF-8")
    }

    fn shutting_down(&self) -> bool {
        self.inner.shutting_down()
    }
}

/// Thread-per-connection fallback for platforms without the reactor.
fn threaded_loop(inner: &Arc<RouterInner>, listener: &EndpointListener) {
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    while !inner.shutting_down() {
        match listener.try_accept() {
            Ok(stream) => {
                if stream.set_nonblocking(false).is_err()
                    || stream
                        .set_read_timeout(Some(Duration::from_millis(50)))
                        .is_err()
                {
                    continue;
                }
                let inner = Arc::clone(inner);
                if let Ok(h) = std::thread::Builder::new()
                    .name("staub-route-conn".into())
                    .spawn(move || {
                        let mut stream = stream;
                        let mut reader = LineReader::new(inner.config.max_line_bytes);
                        loop {
                            match reader.next_line(&mut stream) {
                                Ok(LineRead::Line(line)) => {
                                    if line.trim().is_empty() {
                                        continue;
                                    }
                                    let (reply, keep) = handle_line(&inner, &line);
                                    let write = stream
                                        .write_all(reply.as_bytes())
                                        .and_then(|()| stream.write_all(b"\n"))
                                        .and_then(|()| stream.flush());
                                    if write.is_err() || !keep {
                                        return;
                                    }
                                }
                                Ok(LineRead::Idle) => {
                                    if inner.shutting_down() {
                                        return;
                                    }
                                }
                                Ok(LineRead::TooLong { observed }) => {
                                    let reply = protocol::oversized_reply(
                                        1,
                                        inner.config.max_line_bytes,
                                        observed,
                                    );
                                    let _ = stream.write_all(reply.as_bytes());
                                    let _ = stream.write_all(b"\n");
                                    return;
                                }
                                Ok(LineRead::BadUtf8) | Ok(LineRead::Eof) | Err(_) => return,
                            }
                        }
                    })
                {
                    handles.push(h);
                }
                handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

fn handle_line(inner: &Arc<RouterInner>, line: &str) -> (String, bool) {
    let (v, request) = match protocol::parse_request(line) {
        Err(ProtocolError { code, message }) => {
            inner.errors.fetch_add(1, Ordering::Relaxed);
            let keep_open = code == codes::UNSUPPORTED_VERSION;
            return (protocol::error_reply(1, None, code, &message), keep_open);
        }
        Ok(parsed) => parsed,
    };
    match request {
        Request::Health { id } => (health_reply(inner, v, id.as_deref()), true),
        Request::Shutdown { id } => {
            inner.local_shutdown.store(true, Ordering::SeqCst);
            let mut out = format!("{{\"v\":{v},");
            match &id {
                Some(id) => {
                    out.push_str("\"id\":");
                    json::push_str_lit(&mut out, id);
                }
                None => out.push_str("\"id\":null"),
            }
            out.push_str(",\"status\":\"ok\",\"draining\":true}");
            (out, false)
        }
        Request::Solve(req) => {
            if inner.shutting_down() {
                return (
                    protocol::error_reply(
                        v,
                        req.id.as_deref(),
                        codes::SHUTTING_DOWN,
                        "router is draining",
                    ),
                    false,
                );
            }
            (route_solve(inner, v, &req), true)
        }
        Request::SessionOpen { id, .. }
        | Request::SessionAssert { id, .. }
        | Request::SessionCheck { id, .. }
        | Request::SessionClose { id, .. } => {
            inner.errors.fetch_add(1, Ordering::Relaxed);
            (
                protocol::error_reply(
                    2,
                    id.as_deref(),
                    codes::BAD_REQUEST,
                    "sessions are connection-stateful; open them against a backend directly",
                ),
                true,
            )
        }
    }
}

/// Re-serializes a solve request for the backend hop: always protocol
/// v3 (the hop list needs it), with this router appended to `route`.
fn forward_line(req: &SolveRequest, node: &str) -> String {
    let mut out = String::with_capacity(req.constraint.len() + 96);
    out.push_str("{\"op\":\"solve\",\"v\":3,");
    if let Some(id) = &req.id {
        json::push_key(&mut out, "id");
        json::push_str_lit(&mut out, id);
        out.push(',');
    }
    json::push_key(&mut out, "constraint");
    json::push_str_lit(&mut out, &req.constraint);
    if let Some(ms) = req.timeout_ms {
        out.push_str(&format!(",\"timeout_ms\":{ms}"));
    }
    if let Some(s) = req.steps {
        out.push_str(&format!(",\"steps\":{s}"));
    }
    if req.no_cache {
        out.push_str(",\"no_cache\":true");
    }
    out.push_str(",\"route\":[");
    for hop in &req.route {
        json::push_str_lit(&mut out, hop);
        out.push(',');
    }
    json::push_str_lit(&mut out, node);
    out.push_str("]}");
    out
}

fn route_solve(inner: &Arc<RouterInner>, v: u32, req: &SolveRequest) -> String {
    let id = req.id.as_deref();
    // A hop list already naming this router means the request cycled.
    if req.route.iter().any(|hop| hop == &inner.node) {
        inner.errors.fetch_add(1, Ordering::Relaxed);
        return protocol::error_reply(
            v,
            id,
            codes::ROUTING_LOOP,
            &format!("route already contains this node (`{}`)", inner.node),
        );
    }
    // Canonicalize locally so α-renamed repeats shard identically; a
    // constraint the router cannot parse would not parse on the backend
    // either, so refusing here saves the hop.
    let script = match Script::parse(&req.constraint) {
        Ok(s) => s,
        Err(e) => {
            inner.errors.fetch_add(1, Ordering::Relaxed);
            return protocol::error_reply(v, id, codes::PARSE_ERROR, &e.to_string());
        }
    };
    let fingerprint = canonicalize(&script).fingerprint;
    let line = forward_line(req, &inner.node);

    for backend_idx in inner.ring.candidates(fingerprint) {
        let backend = &inner.backends[backend_idx];
        if !backend.usable() {
            continue;
        }
        match try_backend(inner, backend, &line) {
            Ok(reply) => {
                backend.mark_up();
                inner.forwarded.fetch_add(1, Ordering::Relaxed);
                return reply;
            }
            Err(_) => {
                backend.mark_down(inner.config.retry_cooldown);
                inner.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    inner.errors.fetch_add(1, Ordering::Relaxed);
    protocol::error_reply(
        v,
        id,
        codes::NO_BACKEND,
        &format!(
            "all {} backends are down or cooling down",
            inner.backends.len()
        ),
    )
}

fn try_backend(inner: &Arc<RouterInner>, backend: &Backend, line: &str) -> io::Result<String> {
    let stream = backend.endpoint.connect()?;
    stream.set_read_timeout(Some(inner.config.backend_timeout))?;
    let mut conn = Connection::over(stream);
    conn.roundtrip(line)
}

fn health_reply(inner: &Arc<RouterInner>, v: u32, id: Option<&str>) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    out.push_str(&format!("\"v\":{v},"));
    out.push_str("\"id\":");
    match id {
        Some(id) => json::push_str_lit(&mut out, id),
        None => out.push_str("null"),
    }
    out.push_str(",\"status\":\"ok\",\"role\":\"router\",\"node\":");
    json::push_str_lit(&mut out, &inner.node);
    out.push_str(&format!(
        ",\"uptime_ms\":{:.0},\"forwarded\":{},\"failed\":{},\"errors\":{},\"draining\":{}",
        inner.started.elapsed().as_secs_f64() * 1e3,
        inner.forwarded.load(Ordering::Relaxed),
        inner.failed.load(Ordering::Relaxed),
        inner.errors.load(Ordering::Relaxed),
        inner.shutting_down(),
    ));
    out.push_str(",\"backends\":[");
    for (i, backend) in inner.backends.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"endpoint\":");
        json::push_str_lit(&mut out, &backend.endpoint.to_string());
        out.push_str(&format!(",\"up\":{}}}", backend.usable()));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::solve_request;
    use crate::server::{Server, ServerConfig};

    fn endpoints(n: usize) -> Vec<Endpoint> {
        (0..n)
            .map(|i| Endpoint::Tcp(format!("10.0.0.{i}:7227")))
            .collect()
    }

    #[test]
    fn ring_is_deterministic_and_covers_every_backend() {
        let ring = Ring::build(&endpoints(3), 64);
        let mut hits = [0usize; 3];
        for i in 0..3000u128 {
            let fp = i.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835);
            let order = ring.candidates(fp);
            assert_eq!(order, ring.candidates(fp), "lookup must be deterministic");
            assert_eq!(order.len(), 3, "failover order covers every backend");
            hits[order[0]] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                h > 300,
                "backend {i} got {h}/3000 keys — ring is badly unbalanced: {hits:?}"
            );
        }
    }

    #[test]
    fn adding_a_backend_remaps_only_part_of_the_keyspace() {
        let three = Ring::build(&endpoints(3), 64);
        let four = Ring::build(&endpoints(4), 64);
        let mut moved = 0usize;
        const KEYS: usize = 2000;
        for i in 0..KEYS as u128 {
            let fp = i.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835);
            if three.candidates(fp)[0] != four.candidates(fp)[0] {
                moved += 1;
            }
        }
        // Consistent hashing moves ~1/4 of keys; full rehashing would
        // move ~3/4. Assert we are much closer to the former.
        assert!(
            moved < KEYS / 2,
            "{moved}/{KEYS} keys moved — that is rehash-everything territory"
        );
    }

    #[test]
    fn sessions_are_refused_with_a_structured_error() {
        let inner = Arc::new(RouterInner {
            ring: Ring::build(&endpoints(1), 4),
            backends: vec![Backend {
                endpoint: endpoints(1).remove(0),
                down_until: Mutex::new(None),
            }],
            node: "route:test".into(),
            started: Instant::now(),
            local_shutdown: AtomicBool::new(false),
            forwarded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            config: RouteConfig {
                backends: endpoints(1),
                ..RouteConfig::default()
            },
        });
        let (reply, keep) = handle_line(&inner, r#"{"op":"session_open","v":2}"#);
        assert!(keep);
        assert!(reply.contains("bad-request"), "{reply}");
        assert!(reply.contains("backend directly"), "{reply}");
    }

    #[test]
    fn routes_solves_to_backends_and_stamps_the_hop_list() {
        let backend_config = |name: &str| {
            ServerConfig::new()
                .batch(staub_core::BatchConfig {
                    threads: 2,
                    steps: 200_000,
                    ..staub_core::BatchConfig::default()
                })
                .node_name(name)
        };
        let back0 = Server::launch(backend_config("serve:back0")).expect("backend 0");
        let back1 = Server::launch(backend_config("serve:back1")).expect("backend 1");
        let router = Router::launch(RouteConfig {
            backends: vec![
                Endpoint::Tcp(back0.local_addr().to_string()),
                Endpoint::Tcp(back1.local_addr().to_string()),
            ],
            node_name: Some("route:front".into()),
            ..RouteConfig::default()
        })
        .expect("router");

        let endpoint = Endpoint::Tcp(router.local_addr().to_string());
        let mut conn = Connection::connect(&endpoint).expect("dial router");
        let constraint = "(declare-fun x () Int)(assert (= (* x x) 49))(check-sat)";
        let reply = conn
            .roundtrip(&solve_request("r1", constraint, None, None, false))
            .expect("routed solve");
        assert!(reply.contains("\"verdict\":\"sat\""), "{reply}");
        assert!(
            reply.contains("\"route\":[\"route:front\",\"serve:back")
                && reply.contains("\"cache\":\"miss\""),
            "{reply}"
        );

        // The α-renamed repeat must shard to the same backend and hit
        // its cache — the whole point of fingerprint sharding.
        let renamed = "(declare-fun y () Int)(assert (= 49 (* y y)))(check-sat)";
        let repeat = conn
            .roundtrip(&solve_request("r2", renamed, None, None, false))
            .expect("routed repeat");
        assert!(repeat.contains("\"cache\":\"hit\""), "{repeat}");

        // Health names both backends as up.
        let health = conn
            .roundtrip(&crate::client::health_request())
            .expect("router health");
        assert!(health.contains("\"role\":\"router\""), "{health}");
        assert_eq!(health.matches("\"up\":true").count(), 2, "{health}");

        router.shutdown();
        router.join();
        back0.shutdown();
        back1.shutdown();
        back0.join();
        back1.join();
    }

    #[test]
    fn failover_skips_a_dead_backend_and_reports_no_backend_when_all_die() {
        // Backend 0 is a bound-then-dropped port: connects are refused.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let live = Server::launch(ServerConfig::new().batch(staub_core::BatchConfig {
            threads: 2,
            steps: 200_000,
            ..staub_core::BatchConfig::default()
        }))
        .expect("live backend");
        let router = Router::launch(RouteConfig {
            backends: vec![
                Endpoint::Tcp(dead),
                Endpoint::Tcp(live.local_addr().to_string()),
            ],
            ..RouteConfig::default()
        })
        .expect("router");

        let endpoint = Endpoint::Tcp(router.local_addr().to_string());
        let mut conn = Connection::connect(&endpoint).expect("dial router");
        // Several distinct constraints: some will home on the dead
        // backend and must fail over to the live one.
        for i in 2..10 {
            let constraint = format!(
                "(declare-fun x () Int)(assert (= (* x x) {}))(check-sat)",
                i * i
            );
            let reply = conn
                .roundtrip(&solve_request("f", &constraint, None, None, false))
                .expect("failover solve");
            assert!(reply.contains("\"verdict\":\"sat\""), "{reply}");
        }

        live.shutdown();
        live.join();
        // With the only live backend gone (and the other refusing), a
        // fresh constraint must come back `no-backend`, not hang.
        let reply = conn
            .roundtrip(&solve_request(
                "dead",
                "(declare-fun z () Int)(assert (> z 100))(check-sat)",
                None,
                None,
                false,
            ))
            .expect("no-backend reply");
        assert!(reply.contains("no-backend"), "{reply}");

        router.shutdown();
        router.join();
    }
}
