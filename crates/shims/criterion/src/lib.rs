//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! minimal wall-clock benchmark harness with the same surface the STAUB
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! There is no statistical analysis, warm-up phase, or HTML report: each
//! benchmark runs `sample_size` samples and prints the per-sample mean,
//! minimum, and maximum to stdout. That is enough to compare the paper's
//! configurations against each other on one machine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver; one per `criterion_group!` target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// A named benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id of the form `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples each benchmark in this group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |bencher| f(bencher));
        self
    }

    /// Benchmarks a closure over one borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |bencher| f(bencher, input));
        self
    }

    /// Ends the group. (Analysis happens eagerly, so this only exists for
    /// API compatibility.)
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        let total: Duration = samples.iter().sum();
        let mean = total / u32::try_from(samples.len()).unwrap_or(1);
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
            self.name,
            samples.len(),
        );
    }
}

/// Passed to each benchmark closure; times the measured routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one sample of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
