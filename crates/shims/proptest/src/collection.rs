//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec`s whose length is drawn from `len` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
