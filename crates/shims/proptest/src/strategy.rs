//! Value-generation strategies and their combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree: a strategy draws a
/// concrete value directly from the test RNG, and failures replay by seed
/// instead of shrinking.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and
    /// `recurse` wraps an inner strategy into a branch strategy. Recursion
    /// depth is bounded by `depth`; `_desired_size` and `_expected_branch`
    /// are accepted for API compatibility but unused, since generation
    /// (not shrinking) bounds the tree here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            let leaf = leaf.clone();
            // Take a branch 3/4 of the time so trees reach interesting
            // depths while still terminating early often enough.
            strat = BoxedStrategy::from_fn(move |rng| {
                if rng.gen_bool(0.75) {
                    branch.generate(rng)
                } else {
                    leaf.generate(rng)
                }
            });
        }
        strat
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice among several strategies of the same value type;
/// what `prop_oneof!` expands to.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.arms.len());
        self.arms[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy! {
    i8, i16, i32, i64, i128, isize,
    u8, u16, u32, u64, u128, usize,
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}
