//! `any::<T>()` — whole-domain strategies for primitive types.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy covering all of `A`'s domain.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Whole-domain integer strategy with a bias toward boundary values.
#[derive(Clone, Copy, Debug)]
pub struct AnyInt<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ident),* $(,)?) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // 1-in-8 cases draw from the edge set: overflow and
                // sign-boundary bugs live there, and a uniform draw over a
                // wide domain would almost never hit them.
                if rng.gen_bool(0.125) {
                    const EDGES: [$t; 5] = [$t::MIN, $t::MAX, 0, 1, $t::MAX - 1];
                    EDGES[rng.gen_range(0..EDGES.len())]
                } else {
                    rng.gen_range($t::MIN..=$t::MAX)
                }
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;

            fn arbitrary() -> AnyInt<$t> {
                AnyInt { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_int! {
    i8, i16, i32, i64, i128, isize,
    u8, u16, u32, u64, u128, usize,
}

/// Whole-domain `bool` strategy.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}
