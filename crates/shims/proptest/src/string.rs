//! String strategies from a small regex subset.
//!
//! A `&'static str` is itself a strategy (matching upstream proptest, where
//! string literals are regexes). The supported subset is what simple
//! whitespace/identifier patterns need: literal characters, escapes
//! (`\t`, `\n`, `\r`, `\\`, and escaped metacharacters), character classes
//! `[...]` with ranges, and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
//! (`*`/`+` capped at 8 repetitions). Anything else panics at generation
//! time with a message naming the unsupported construct.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

struct Atom {
    /// The alternatives this atom can produce, one drawn uniformly.
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        't' => '\t',
        'n' => '\n',
        'r' => '\r',
        // Escaped metacharacters (\\, \[, \-, ...) stand for themselves.
        other => other,
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in regex {pattern:?}"));
        match c {
            ']' => return out,
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                out.push(unescape(esc));
            }
            _ if chars.peek() == Some(&'-') => {
                chars.next();
                let hi = chars
                    .next()
                    .unwrap_or_else(|| panic!("unterminated range in regex {pattern:?}"));
                if hi == ']' {
                    // Trailing '-' is a literal.
                    out.push(c);
                    out.push('-');
                    return out;
                }
                assert!(c <= hi, "inverted range {c}-{hi} in regex {pattern:?}");
                out.extend(c..=hi);
            }
            _ => out.push(c),
        }
    }
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in regex {pattern:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => {
                    let n = parse(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alternatives = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                vec![unescape(esc)]
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("unsupported regex construct {c:?} in {pattern:?} (shim supports literals, classes, and quantifiers)")
            }
            _ => vec![c],
        };
        assert!(
            !alternatives.is_empty(),
            "empty character class in regex {pattern:?}"
        );
        let (min, max) = parse_quantifier(&mut chars, pattern);
        atoms.push(Atom {
            chars: alternatives,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(self) {
            let reps = rng.gen_range(atom.min..=atom.max);
            for _ in 0..reps {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn whitespace_pattern() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = "[ \t\n]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c == ' ' || c == '\t' || c == '\n'));
        }
    }

    #[test]
    fn literal_class_and_range() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let s = "x[a-c]+".generate(&mut rng);
            assert!(s.starts_with('x'));
            assert!(s.len() >= 2 && s.len() <= 9);
            assert!(s[1..].chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
