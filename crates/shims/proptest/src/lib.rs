//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! generation-based property-testing harness covering the API surface the
//! STAUB test suites use: the [`Strategy`] combinators (`prop_map`,
//! `prop_recursive`, `boxed`), range / tuple / [`any`] / regex-string
//! strategies, the [`proptest!`] test macro with `proptest_config`, the
//! `prop_assert*` / `prop_assume!` macros, and seed persistence compatible
//! with `*.proptest-regressions` files.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its seed and generated values;
//!   the seed is persisted and replayed on the next run, but not minimized.
//! * **Deterministic seeds.** Case seeds derive from the test name and case
//!   index (override the base with `PROPTEST_RNG_SEED`), so CI runs are
//!   reproducible by default.
//! * **Regression entries are 16-hex-digit RNG seeds.** The loader also
//!   accepts upstream's 64-hex-digit entries by reading their leading 16
//!   digits as a seed.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// The subset of `prop::` paths the suites use.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each function's arguments are drawn from the
/// given strategies for every test case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_property_test(
                ::core::file!(),
                ::core::stringify!($name),
                &__config,
                |__rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __case = ::std::format!(
                        ::core::concat!($(::core::stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    (__case, __outcome)
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!($($fmt)*)));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Discards the current test case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(::core::stringify!(
                $cond
            )));
        }
    };
}

/// A strategy choosing uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}
