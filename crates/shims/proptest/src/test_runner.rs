//! Case execution, seed derivation, and regression-file persistence.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies; one fresh instance per test case, so a
/// case is fully determined by its seed.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for the case with the given seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Per-test configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// The default configuration with a different case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not failed.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// FNV-1a, for deriving a stable per-test base seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn regression_path(file: &str) -> PathBuf {
    PathBuf::from(file).with_extension("proptest-regressions")
}

/// Persisted seeds: every `cc <hex>` line's leading 16 hex digits, read as
/// a `u64`. Upstream's 64-digit entries parse the same way.
fn load_regression_seeds(file: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(regression_path(file)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| line.trim().strip_prefix("cc "))
        .filter_map(|rest| {
            let hex: String = rest
                .trim()
                .chars()
                .take_while(char::is_ascii_hexdigit)
                .collect();
            (hex.len() >= 16).then(|| u64::from_str_radix(&hex[..16], 16).ok())?
        })
        .collect()
}

fn persist_failure(file: &str, test: &str, seed: u64, case: &str) {
    let path = regression_path(file);
    let mut entry = String::new();
    if !path.exists() {
        entry.push_str(
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases.\n",
        );
    }
    let mut summary: String = case.chars().take(160).collect();
    if summary.len() < case.len() {
        summary.push('…');
    }
    entry.push_str(&format!("cc {seed:016x} # {test}: {summary}\n"));
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, entry.as_bytes()));
    if written.is_err() {
        eprintln!(
            "proptest: could not persist failing seed to {}",
            path.display()
        );
    }
}

/// Runs one property over its persisted regression seeds, then
/// `config.cases` fresh seeded cases. Panics on the first failing case
/// after persisting its seed.
pub fn run_property_test<F>(file: &str, test: &str, config: &ProptestConfig, run_case: F)
where
    F: Fn(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let base = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| fnv1a(format!("{file}::{test}").as_bytes()));

    let replay = load_regression_seeds(file);
    let fresh = (0..u64::from(config.cases) * 8).map(|i| base.wrapping_add(i));
    let mut passed = 0u32;
    let mut rejected = 0u64;
    for (idx, seed) in replay.iter().copied().chain(fresh).enumerate() {
        let is_replay = idx < replay.len();
        if !is_replay && passed >= config.cases {
            break;
        }
        let mut rng = TestRng::from_seed(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| run_case(&mut rng)));
        let (case, result) = match outcome {
            Ok(pair) => pair,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                (
                    String::from("<panicked during generation or body>"),
                    Err(TestCaseError::fail(msg)),
                )
            }
        };
        match result {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                // With only rejections and no progress, give up rather
                // than loop forever on an unsatisfiable assumption.
                assert!(
                    rejected < u64::from(config.cases) * 8,
                    "{test}: too many prop_assume! rejections ({rejected}) — assumption may be unsatisfiable"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                if !is_replay {
                    persist_failure(file, test, seed, &case);
                }
                panic!(
                    "{test}: property failed (seed {seed:#018x}{replay_note})\n  case: {case}\n  {msg}",
                    replay_note = if is_replay { ", replayed from regression file" } else { "" },
                );
            }
        }
    }
    assert!(
        passed >= config.cases.min(1),
        "{test}: exhausted seed budget with only {passed} cases run"
    );
}
