//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small deterministic subset of the `rand` 0.8 API that STAUB actually
//! uses: seedable generators (`StdRng`, `SmallRng`), uniform integer ranges
//! (`Rng::gen_range`), and Bernoulli draws (`Rng::gen_bool`).
//!
//! The generator is xoshiro256++ seeded through splitmix64 — not the same
//! stream as upstream `StdRng` (ChaCha12), but everything in this workspace
//! only relies on determinism in the seed, never on a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a source of uniform `u32`/`u64` words.
pub trait RngCore {
    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seeds deterministically from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        // 53 uniform mantissa bits are ample for test distributions.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A uniform draw in `[0, span)`.
///
/// Spans up to `u64::MAX` use the Lemire multiply-shift reduction; wider
/// spans (128-bit sample domains) use a modulo reduction, whose bias of at
/// most `span / 2¹²⁸` is irrelevant for test data.
fn below_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if let Ok(span64) = u64::try_from(span) {
        ((u128::from(rng.next_u64()) * u128::from(span64)) >> 64) as u64 as u128
    } else {
        let draw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        draw % span
    }
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                let offset = below_u128(rng, span) as $u;
                (self.start as $u).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = ((end as $u).wrapping_sub(start as $u) as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain 128-bit range: any draw is uniform.
                    let draw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                    return draw as $u as $t;
                }
                let offset = below_u128(rng, span) as $u;
                (start as $u).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_sample_range! {
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
}

/// xoshiro256++ state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        // splitmix64 expansion, the reference seeding procedure.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's standard seedable generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast generator; identical to [`StdRng`] in this stand-in.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..=1000), b.gen_range(0i64..=1000));
        }
        let mut c = StdRng::seed_from_u64(42);
        let mut d = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| c.gen_range(0i64..=1000) == d.gen_range(0i64..=1000));
        assert!(!same, "different seeds give different streams");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-120i64..=120);
            assert!((-120..=120).contains(&v));
            let u = rng.gen_range(3usize..=6);
            assert!((3..=6).contains(&u));
            let w = rng.gen_range(0u8..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
