//! The while-language: single-loop integer programs with a conjunctive
//! linear guard and (possibly nonlinear) assignment bodies.

use std::error::Error;
use std::fmt;

/// An integer expression over program variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Variable reference (index into [`Program::vars`]).
    Var(usize),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product (nonlinear when both sides mention variables).
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Extracts the affine form `coeffs·x + k` if the expression is linear.
    pub fn affine(&self, n_vars: usize) -> Option<(Vec<i64>, i64)> {
        match self {
            Expr::Const(c) => Some((vec![0; n_vars], *c)),
            Expr::Var(i) => {
                let mut coeffs = vec![0; n_vars];
                coeffs[*i] = 1;
                Some((coeffs, 0))
            }
            Expr::Add(a, b) => {
                let (ca, ka) = a.affine(n_vars)?;
                let (cb, kb) = b.affine(n_vars)?;
                Some((ca.iter().zip(&cb).map(|(x, y)| x + y).collect(), ka + kb))
            }
            Expr::Sub(a, b) => {
                let (ca, ka) = a.affine(n_vars)?;
                let (cb, kb) = b.affine(n_vars)?;
                Some((ca.iter().zip(&cb).map(|(x, y)| x - y).collect(), ka - kb))
            }
            Expr::Mul(a, b) => {
                let (ca, ka) = a.affine(n_vars)?;
                let (cb, kb) = b.affine(n_vars)?;
                let a_const = ca.iter().all(|&c| c == 0);
                let b_const = cb.iter().all(|&c| c == 0);
                match (a_const, b_const) {
                    (true, _) => Some((cb.iter().map(|c| c * ka).collect(), kb * ka)),
                    (_, true) => Some((ca.iter().map(|c| c * kb).collect(), ka * kb)),
                    _ => None,
                }
            }
        }
    }

    /// `true` when [`Expr::affine`] succeeds.
    pub fn is_linear(&self, n_vars: usize) -> bool {
        self.affine(n_vars).is_some()
    }

    /// Evaluates under a concrete state.
    pub fn eval(&self, state: &[i64]) -> i64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(i) => state[*i],
            Expr::Add(a, b) => a.eval(state).wrapping_add(b.eval(state)),
            Expr::Sub(a, b) => a.eval(state).wrapping_sub(b.eval(state)),
            Expr::Mul(a, b) => a.eval(state).wrapping_mul(b.eval(state)),
        }
    }
}

/// Comparison operators in guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
}

/// One conjunct of the loop guard: `lhs cmp rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    /// Left side.
    pub lhs: Expr,
    /// Operator.
    pub cmp: Cmp,
    /// Right side.
    pub rhs: Expr,
}

impl Cond {
    /// Normal form `expr >= 0` for linear conditions; equalities expand to
    /// two rows, and `!=`/nonlinear conditions return `None`.
    pub fn ge_zero_rows(&self, n_vars: usize) -> Option<Vec<(Vec<i64>, i64)>> {
        let (cl, kl) = self.lhs.affine(n_vars)?;
        let (cr, kr) = self.rhs.affine(n_vars)?;
        let diff: Vec<i64> = cl.iter().zip(&cr).map(|(a, b)| a - b).collect();
        let k = kl - kr;
        let neg = |v: &[i64]| v.iter().map(|c| -c).collect::<Vec<i64>>();
        Some(match self.cmp {
            // lhs > rhs  <=>  diff - 1 >= 0 (integers).
            Cmp::Gt => vec![(diff, k - 1)],
            Cmp::Ge => vec![(diff, k)],
            Cmp::Lt => vec![(neg(&diff), -k - 1)],
            Cmp::Le => vec![(neg(&diff), -k)],
            Cmp::Eq => vec![(diff.clone(), k), (neg(&diff), -k)],
            Cmp::Ne => return None,
        })
    }

    /// Evaluates under a concrete state.
    pub fn eval(&self, state: &[i64]) -> bool {
        let l = self.lhs.eval(state);
        let r = self.rhs.eval(state);
        match self.cmp {
            Cmp::Gt => l > r,
            Cmp::Ge => l >= r,
            Cmp::Lt => l < r,
            Cmp::Le => l <= r,
            Cmp::Eq => l == r,
            Cmp::Ne => l != r,
        }
    }
}

/// A single-loop program: `vars ...; while (guard) { simultaneous updates }`.
///
/// Updates are *simultaneous* (all right-hand sides read the pre-state), as
/// in transition-system semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// Variable names.
    pub vars: Vec<String>,
    /// Conjunctive loop guard.
    pub guard: Vec<Cond>,
    /// Per-variable update expressions, indexed like `vars` (identity when
    /// a variable is not assigned).
    pub updates: Vec<Expr>,
}

/// Parse error for the while-language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    message: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program parse error: {}", self.message)
    }
}

impl Error for ParseProgramError {}

impl Program {
    /// Builds a program from parts (used by the generated suite).
    pub fn new(
        name: impl Into<String>,
        vars: Vec<String>,
        guard: Vec<Cond>,
        updates: Vec<Expr>,
    ) -> Program {
        let p = Program {
            name: name.into(),
            vars,
            guard,
            updates,
        };
        assert_eq!(p.updates.len(), p.vars.len(), "one update per variable");
        p
    }

    /// Parses the concrete syntax:
    ///
    /// ```text
    /// vars x, y;
    /// while (x > 0 && y <= 10) {
    ///   x = x - 1;
    ///   y = y + 2;
    /// }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ParseProgramError`] on malformed input or references to
    /// undeclared variables.
    pub fn parse(name: &str, src: &str) -> Result<Program, ParseProgramError> {
        parse_program(name, src)
    }

    /// `true` when the guard and every update are linear (so Farkas-based
    /// ranking synthesis applies).
    pub fn is_linear(&self) -> bool {
        let n = self.vars.len();
        self.guard.iter().all(|c| c.ge_zero_rows(n).is_some())
            && self.updates.iter().all(|u| u.is_linear(n))
    }

    /// Guard rows in `G·x + h >= 0` form; `None` if the guard is nonlinear
    /// or contains `!=`.
    pub fn guard_rows(&self) -> Option<Vec<(Vec<i64>, i64)>> {
        let n = self.vars.len();
        let mut rows = Vec::new();
        for c in &self.guard {
            rows.extend(c.ge_zero_rows(n)?);
        }
        Some(rows)
    }

    /// Runs the loop concretely from `state` for at most `fuel` iterations;
    /// returns the number of iterations executed, or `None` if the fuel ran
    /// out (possible nontermination).
    pub fn run(&self, mut state: Vec<i64>, fuel: usize) -> Option<usize> {
        for step in 0..=fuel {
            if !self.guard.iter().all(|c| c.eval(&state)) {
                return Some(step);
            }
            if step == fuel {
                break;
            }
            let next: Vec<i64> = self.updates.iter().map(|u| u.eval(&state)).collect();
            state = next;
        }
        None
    }

    /// Index of a variable by name.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct P<'a> {
    src: &'a [u8],
    pos: usize,
    vars: Vec<String>,
}

fn parse_program(name: &str, src: &str) -> Result<Program, ParseProgramError> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
        vars: Vec::new(),
    };
    p.keyword("vars")?;
    loop {
        let v = p.ident()?;
        if p.vars.contains(&v) {
            return Err(p.error(format!("duplicate variable `{v}`")));
        }
        p.vars.push(v);
        if !p.eat(b",") {
            break;
        }
    }
    p.expect(b";")?;
    p.keyword("while")?;
    p.expect(b"(")?;
    let mut guard = vec![p.cond()?];
    while p.eat(b"&&") {
        guard.push(p.cond()?);
    }
    p.expect(b")")?;
    p.expect(b"{")?;
    let mut updates: Vec<Expr> = (0..p.vars.len()).map(Expr::Var).collect();
    let mut assigned = vec![false; p.vars.len()];
    while !p.peek(b"}") {
        let v = p.ident()?;
        let idx = p
            .vars
            .iter()
            .position(|x| *x == v)
            .ok_or_else(|| p.error(format!("undeclared variable `{v}`")))?;
        if assigned[idx] {
            return Err(p.error(format!("variable `{v}` assigned twice")));
        }
        p.expect(b"=")?;
        updates[idx] = p.expr()?;
        assigned[idx] = true;
        p.expect(b";")?;
    }
    p.expect(b"}")?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.error("trailing input after program"));
    }
    Ok(Program {
        name: name.to_string(),
        vars: p.vars,
        guard,
        updates,
    })
}

impl<'a> P<'a> {
    fn error(&self, message: impl Into<String>) -> ParseProgramError {
        ParseProgramError {
            message: format!("{} (at byte {})", message.into(), self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && (self.src[self.pos] as char).is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self, tok: &[u8]) -> bool {
        self.skip_ws();
        self.src[self.pos..].starts_with(tok)
    }

    fn eat(&mut self, tok: &[u8]) -> bool {
        if self.peek(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &[u8]) -> Result<(), ParseProgramError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", String::from_utf8_lossy(tok))))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseProgramError> {
        if self.eat(kw.as_bytes()) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword `{kw}`")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseProgramError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && ((self.src[self.pos] as char).is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start || (self.src[start] as char).is_ascii_digit() {
            return Err(self.error("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn cond(&mut self) -> Result<Cond, ParseProgramError> {
        let lhs = self.expr()?;
        self.skip_ws();
        let cmp = if self.eat(b">=") {
            Cmp::Ge
        } else if self.eat(b"<=") {
            Cmp::Le
        } else if self.eat(b"==") {
            Cmp::Eq
        } else if self.eat(b"!=") {
            Cmp::Ne
        } else if self.eat(b">") {
            Cmp::Gt
        } else if self.eat(b"<") {
            Cmp::Lt
        } else {
            return Err(self.error("expected comparison operator"));
        };
        let rhs = self.expr()?;
        Ok(Cond { lhs, cmp, rhs })
    }

    fn expr(&mut self) -> Result<Expr, ParseProgramError> {
        let mut acc = self.term()?;
        loop {
            if self.peek(b"+") {
                self.eat(b"+");
                acc = Expr::Add(Box::new(acc), Box::new(self.term()?));
            } else if self.peek(b"-") {
                self.eat(b"-");
                acc = Expr::Sub(Box::new(acc), Box::new(self.term()?));
            } else {
                return Ok(acc);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseProgramError> {
        let mut acc = self.factor()?;
        while self.peek(b"*") {
            self.eat(b"*");
            acc = Expr::Mul(Box::new(acc), Box::new(self.factor()?));
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Expr, ParseProgramError> {
        self.skip_ws();
        if self.eat(b"(") {
            let e = self.expr()?;
            self.expect(b")")?;
            return Ok(e);
        }
        if self.pos < self.src.len() && self.src[self.pos] == b'-' {
            self.pos += 1;
            let inner = self.factor()?;
            return Ok(Expr::Sub(Box::new(Expr::Const(0)), Box::new(inner)));
        }
        if self.pos < self.src.len() && (self.src[self.pos] as char).is_ascii_digit() {
            let start = self.pos;
            while self.pos < self.src.len() && (self.src[self.pos] as char).is_ascii_digit() {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits");
            return text
                .parse::<i64>()
                .map(Expr::Const)
                .map_err(|_| self.error("integer literal out of range"));
        }
        let name = self.ident()?;
        match self.vars.iter().position(|v| *v == name) {
            Some(i) => Ok(Expr::Var(i)),
            None => Err(self.error(format!("undeclared variable `{name}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn countdown() -> Program {
        Program::parse("countdown", "vars x; while (x > 0) { x = x - 1; }").unwrap()
    }

    #[test]
    fn parse_basic() {
        let p = countdown();
        assert_eq!(p.vars, vec!["x"]);
        assert_eq!(p.guard.len(), 1);
        assert!(p.is_linear());
    }

    #[test]
    fn parse_multivar() {
        let p = Program::parse(
            "two",
            "vars x, y;\nwhile (x > 0 && y <= 10) {\n  x = x - 1;\n  y = y + 2;\n}",
        )
        .unwrap();
        assert_eq!(p.vars.len(), 2);
        assert_eq!(p.guard.len(), 2);
        // y's update is y + 2, x's is x - 1; unassigned vars default to id.
        assert!(p.is_linear());
    }

    #[test]
    fn parse_nonlinear() {
        let p = Program::parse("sqgrow", "vars x, y; while (x < 100) { x = x * y; }").unwrap();
        assert!(!p.is_linear());
        assert!(p.updates[0].affine(2).is_none());
        assert!(
            p.updates[1].affine(2).is_some(),
            "identity update is linear"
        );
    }

    #[test]
    fn parse_errors() {
        assert!(Program::parse("e", "while (x > 0) {}").is_err());
        assert!(Program::parse("e", "vars x; while (x > 0) { y = 1; }").is_err());
        assert!(Program::parse("e", "vars x, x; while (x > 0) {}").is_err());
        assert!(Program::parse("e", "vars x; while (x ~ 0) { }").is_err());
        assert!(Program::parse("e", "vars x; while (x > 0) { x = x - 1; } extra").is_err());
        assert!(Program::parse("e", "vars x; while (x > 0) { x = x - 1; x = 0; }").is_err());
    }

    #[test]
    fn affine_extraction() {
        let p = Program::parse("a", "vars x, y; while (x + 2*y - 3 > y) { x = x - 1; }").unwrap();
        let rows = p.guard_rows().unwrap();
        // x + 2y - 3 > y  =>  x + y - 4 >= 0.
        assert_eq!(rows, vec![(vec![1, 1], -4)]);
    }

    #[test]
    fn equality_gives_two_rows() {
        let p = Program::parse("eq", "vars x; while (x == 5) { x = x + 1; }").unwrap();
        assert_eq!(p.guard_rows().unwrap().len(), 2);
    }

    #[test]
    fn disequality_blocks_rows() {
        let p = Program::parse("ne", "vars x; while (x != 0) { x = x - 1; }").unwrap();
        assert!(p.guard_rows().is_none());
        assert!(!p.is_linear());
    }

    #[test]
    fn concrete_execution() {
        let p = countdown();
        assert_eq!(p.run(vec![5], 100), Some(5));
        assert_eq!(p.run(vec![0], 100), Some(0));
        assert_eq!(p.run(vec![-3], 100), Some(0));
        let diverging = Program::parse("up", "vars x; while (x > 0) { x = x + 1; }").unwrap();
        assert_eq!(diverging.run(vec![1], 50), None);
    }

    #[test]
    fn simultaneous_updates() {
        let p =
            Program::parse("swapish", "vars x, y; while (x > 0) { x = y; y = x - 1; }").unwrap();
        // From (2, 1): x' = y = 1, y' = x - 1 = 1 (reads pre-state x).
        let mut state = vec![2i64, 1];
        let next: Vec<i64> = p.updates.iter().map(|u| u.eval(&state)).collect();
        state = next;
        assert_eq!(state, vec![1, 1]);
    }

    #[test]
    fn unary_minus_and_parens() {
        let p = Program::parse("neg", "vars x; while (x > -5) { x = -(x + 1); }").unwrap();
        assert_eq!(p.updates[0].eval(&[3]), -4);
        assert!(p.is_linear());
    }
}
