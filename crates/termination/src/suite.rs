//! The 97-program evaluation suite (the SV-COMP termination stand-in).
//!
//! The paper's RQ3 runs Ultimate Automizer on the 97 SV-COMP termination
//! tasks for which it emits array-free constraints. This suite mirrors that
//! population: deterministic families of counting loops, coupled linear
//! loops, bounded-window loops, nonlinear growth loops, and diverging loops
//! (for which every proof attempt fails, keeping the constraint mix
//! unsat-heavy).

use crate::lang::Program;

/// A suite entry: a program plus its ground-truth termination status
/// (`None` when divergence depends on the initial state in a way the suite
/// does not document).
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// The program.
    pub program: Program,
    /// Whether the loop terminates from **every** initial state.
    pub terminates: Option<bool>,
}

/// Builds the full 97-program suite. Deterministic: no randomness, so
/// reports are reproducible.
pub fn suite_97() -> Vec<SuiteEntry> {
    let mut out = Vec::with_capacity(97);
    let mut push = |src: String, name: String, terminates: Option<bool>| {
        let program = Program::parse(&name, &src)
            .unwrap_or_else(|e| panic!("suite program {name} fails to parse: {e}\n{src}"));
        out.push(SuiteEntry {
            program,
            terminates,
        });
    };

    // Family 1: countdown loops with varied strides (terminating). 20.
    for stride in 1..=20i64 {
        push(
            format!("vars x; while (x > 0) {{ x = x - {stride}; }}"),
            format!("countdown-stride-{stride}"),
            Some(true),
        );
    }

    // Family 2: coupled two-variable linear loops (terminating: x+y or x
    // decreases). 16.
    for i in 0..16i64 {
        let a = 1 + i % 4;
        let b = 1 + i / 4;
        push(
            format!("vars x, y; while (x + y > 0) {{ x = x - {a}; y = y - {b}; }}"),
            format!("coupled-{i:02}"),
            Some(true),
        );
    }

    // Family 3: bounded windows (terminating, provable by unrolling). 15.
    for width in 1..=15i64 {
        push(
            format!(
                "vars i; while (i > 0 && i < {}) {{ i = i + 1; }}",
                width + 1
            ),
            format!("window-{width:02}"),
            Some(true),
        );
    }

    // Family 4: nonlinear growth under a cap (terminating; QF_NIA
    // unrollings). 12.
    for cap_log in 2..=13i64 {
        let cap = 1i64 << cap_log;
        push(
            format!("vars x, y; while (x < {cap} && x > 1 && y == 2) {{ x = x * y; }}"),
            format!("double-under-{cap}"),
            Some(true),
        );
    }

    // Family 5: diverging counters (nonterminating: every proof attempt
    // fails — the pessimistic population). 14.
    for i in 0..14i64 {
        let step = 1 + i % 5;
        push(
            format!("vars x; while (x > 0) {{ x = x + {step}; }}"),
            format!("diverge-up-{i:02}"),
            Some(false),
        );
    }

    // Family 6: oscillators (nonterminating from some states). 10.
    for i in 0..10i64 {
        let k = 1 + i;
        push(
            format!("vars x, y; while (x > 0) {{ x = y; y = x + {k}; }}"),
            format!("oscillator-{i:02}"),
            None,
        );
    }

    // Family 7: lexicographic-style loops (terminating but needing a
    // non-obvious linear combination). 10.
    for i in 0..10i64 {
        let outer = 2 + i % 3;
        push(
            format!("vars x, y; while (x > 0 && y > 0) {{ x = x - 1; y = y + {outer}; }}"),
            format!("lexico-{i:02}"),
            Some(true),
        );
    }
    debug_assert_eq!(out.len(), 20 + 16 + 15 + 12 + 14 + 10 + 10);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prover::{TerminationProver, Verdict};

    #[test]
    fn suite_has_97_programs() {
        let suite = suite_97();
        assert_eq!(suite.len(), 97);
        let mut names: Vec<&str> = suite.iter().map(|e| e.program.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 97, "names unique");
    }

    #[test]
    fn deterministic() {
        let a = suite_97();
        let b = suite_97();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.program, y.program);
        }
    }

    #[test]
    fn ground_truth_spot_checks_by_execution() {
        for entry in suite_97() {
            match entry.terminates {
                Some(true) => {
                    // Run from several states; must always terminate.
                    for start in [-2i64, 0, 3, 17] {
                        let state = vec![start; entry.program.vars.len()];
                        assert!(
                            entry.program.run(state, 100_000).is_some(),
                            "{} should terminate from {start}",
                            entry.program.name
                        );
                    }
                }
                Some(false) => {
                    // Diverges from at least one state.
                    let state = vec![1; entry.program.vars.len()];
                    assert!(
                        entry.program.run(state, 10_000).is_none(),
                        "{} should diverge from all-ones",
                        entry.program.name
                    );
                }
                None => {}
            }
        }
    }

    #[test]
    fn prover_never_claims_termination_of_diverging_programs() {
        let prover = TerminationProver::default();
        for entry in suite_97()
            .into_iter()
            .filter(|e| e.terminates == Some(false))
            .take(4)
        {
            let outcome = prover.prove(&entry.program);
            assert_eq!(
                outcome.verdict,
                Verdict::Unknown,
                "{} must not be proven terminating",
                entry.program.name
            );
        }
    }

    #[test]
    fn prover_handles_a_sample_of_each_family() {
        let suite = suite_97();
        let prover = TerminationProver::default();
        for idx in [0usize, 20, 36, 51, 63, 77, 87] {
            let entry = &suite[idx];
            let outcome = prover.prove(&entry.program);
            if entry.terminates == Some(false) {
                assert_ne!(
                    outcome.verdict,
                    Verdict::Terminating,
                    "{}",
                    entry.program.name
                );
            }
            // Terminating entries may still be Unknown under tight budgets;
            // soundness is what matters here.
        }
    }
}
